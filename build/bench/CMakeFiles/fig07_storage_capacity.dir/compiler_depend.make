# Empty compiler generated dependencies file for fig07_storage_capacity.
# This may be replaced when dependencies are built.
