file(REMOVE_RECURSE
  "CMakeFiles/fig07_storage_capacity.dir/fig07_storage_capacity.cpp.o"
  "CMakeFiles/fig07_storage_capacity.dir/fig07_storage_capacity.cpp.o.d"
  "fig07_storage_capacity"
  "fig07_storage_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_storage_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
