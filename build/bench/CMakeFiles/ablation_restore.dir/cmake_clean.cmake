file(REMOVE_RECURSE
  "CMakeFiles/ablation_restore.dir/ablation_restore.cpp.o"
  "CMakeFiles/ablation_restore.dir/ablation_restore.cpp.o.d"
  "ablation_restore"
  "ablation_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
