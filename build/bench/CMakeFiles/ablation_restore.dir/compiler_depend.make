# Empty compiler generated dependencies file for ablation_restore.
# This may be replaced when dependencies are built.
