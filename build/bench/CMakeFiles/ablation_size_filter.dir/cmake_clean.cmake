file(REMOVE_RECURSE
  "CMakeFiles/ablation_size_filter.dir/ablation_size_filter.cpp.o"
  "CMakeFiles/ablation_size_filter.dir/ablation_size_filter.cpp.o.d"
  "ablation_size_filter"
  "ablation_size_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_size_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
