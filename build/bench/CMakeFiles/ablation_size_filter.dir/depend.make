# Empty dependencies file for ablation_size_filter.
# This may be replaced when dependencies are built.
