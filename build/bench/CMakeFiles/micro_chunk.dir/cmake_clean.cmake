file(REMOVE_RECURSE
  "CMakeFiles/micro_chunk.dir/micro_chunk.cpp.o"
  "CMakeFiles/micro_chunk.dir/micro_chunk.cpp.o.d"
  "micro_chunk"
  "micro_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
