# Empty dependencies file for micro_chunk.
# This may be replaced when dependencies are built.
