file(REMOVE_RECURSE
  "libaad_bench_common.a"
)
