# Empty dependencies file for aad_bench_common.
# This may be replaced when dependencies are built.
