file(REMOVE_RECURSE
  "CMakeFiles/aad_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/aad_bench_common.dir/bench_common.cpp.o.d"
  "libaad_bench_common.a"
  "libaad_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
