file(REMOVE_RECURSE
  "CMakeFiles/fig03_hash_overhead.dir/fig03_hash_overhead.cpp.o"
  "CMakeFiles/fig03_hash_overhead.dir/fig03_hash_overhead.cpp.o.d"
  "fig03_hash_overhead"
  "fig03_hash_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_hash_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
