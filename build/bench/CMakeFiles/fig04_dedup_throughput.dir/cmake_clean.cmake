file(REMOVE_RECURSE
  "CMakeFiles/fig04_dedup_throughput.dir/fig04_dedup_throughput.cpp.o"
  "CMakeFiles/fig04_dedup_throughput.dir/fig04_dedup_throughput.cpp.o.d"
  "fig04_dedup_throughput"
  "fig04_dedup_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dedup_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
