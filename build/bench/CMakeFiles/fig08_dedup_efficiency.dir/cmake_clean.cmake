file(REMOVE_RECURSE
  "CMakeFiles/fig08_dedup_efficiency.dir/fig08_dedup_efficiency.cpp.o"
  "CMakeFiles/fig08_dedup_efficiency.dir/fig08_dedup_efficiency.cpp.o.d"
  "fig08_dedup_efficiency"
  "fig08_dedup_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dedup_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
