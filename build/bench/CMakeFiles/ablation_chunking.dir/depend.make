# Empty dependencies file for ablation_chunking.
# This may be replaced when dependencies are built.
