# Empty compiler generated dependencies file for micro_container.
# This may be replaced when dependencies are built.
