file(REMOVE_RECURSE
  "CMakeFiles/micro_container.dir/micro_container.cpp.o"
  "CMakeFiles/micro_container.dir/micro_container.cpp.o.d"
  "micro_container"
  "micro_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
