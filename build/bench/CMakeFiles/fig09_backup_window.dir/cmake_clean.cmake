file(REMOVE_RECURSE
  "CMakeFiles/fig09_backup_window.dir/fig09_backup_window.cpp.o"
  "CMakeFiles/fig09_backup_window.dir/fig09_backup_window.cpp.o.d"
  "fig09_backup_window"
  "fig09_backup_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_backup_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
