# Empty dependencies file for fig09_backup_window.
# This may be replaced when dependencies are built.
