# Empty compiler generated dependencies file for fig01_02_dataset_stats.
# This may be replaced when dependencies are built.
