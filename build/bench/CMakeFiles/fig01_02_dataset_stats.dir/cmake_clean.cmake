file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_dataset_stats.dir/fig01_02_dataset_stats.cpp.o"
  "CMakeFiles/fig01_02_dataset_stats.dir/fig01_02_dataset_stats.cpp.o.d"
  "fig01_02_dataset_stats"
  "fig01_02_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
