# Empty compiler generated dependencies file for test_policy_config.
# This may be replaced when dependencies are built.
