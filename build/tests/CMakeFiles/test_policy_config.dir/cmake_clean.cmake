file(REMOVE_RECURSE
  "CMakeFiles/test_policy_config.dir/test_policy_config.cpp.o"
  "CMakeFiles/test_policy_config.dir/test_policy_config.cpp.o.d"
  "test_policy_config"
  "test_policy_config.pdb"
  "test_policy_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
