# Empty compiler generated dependencies file for test_point_in_time.
# This may be replaced when dependencies are built.
