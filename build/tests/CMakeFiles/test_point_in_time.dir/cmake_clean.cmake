file(REMOVE_RECURSE
  "CMakeFiles/test_point_in_time.dir/test_point_in_time.cpp.o"
  "CMakeFiles/test_point_in_time.dir/test_point_in_time.cpp.o.d"
  "test_point_in_time"
  "test_point_in_time.pdb"
  "test_point_in_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_point_in_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
