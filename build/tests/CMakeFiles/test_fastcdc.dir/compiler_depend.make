# Empty compiler generated dependencies file for test_fastcdc.
# This may be replaced when dependencies are built.
