file(REMOVE_RECURSE
  "CMakeFiles/test_fastcdc.dir/test_fastcdc.cpp.o"
  "CMakeFiles/test_fastcdc.dir/test_fastcdc.cpp.o.d"
  "test_fastcdc"
  "test_fastcdc.pdb"
  "test_fastcdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastcdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
