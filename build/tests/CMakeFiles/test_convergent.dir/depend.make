# Empty dependencies file for test_convergent.
# This may be replaced when dependencies are built.
