# Empty dependencies file for test_aa_dedupe.
# This may be replaced when dependencies are built.
