file(REMOVE_RECURSE
  "CMakeFiles/test_aa_dedupe.dir/test_aa_dedupe.cpp.o"
  "CMakeFiles/test_aa_dedupe.dir/test_aa_dedupe.cpp.o.d"
  "test_aa_dedupe"
  "test_aa_dedupe.pdb"
  "test_aa_dedupe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aa_dedupe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
