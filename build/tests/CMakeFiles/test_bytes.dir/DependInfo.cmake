
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_bytes.dir/test_bytes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/aad_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/aad_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aad_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/aad_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aad_container.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/aad_index.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/aad_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/aad_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/aad_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
