# Empty dependencies file for test_application_stats.
# This may be replaced when dependencies are built.
