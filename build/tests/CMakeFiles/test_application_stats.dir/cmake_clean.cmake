file(REMOVE_RECURSE
  "CMakeFiles/test_application_stats.dir/test_application_stats.cpp.o"
  "CMakeFiles/test_application_stats.dir/test_application_stats.cpp.o.d"
  "test_application_stats"
  "test_application_stats.pdb"
  "test_application_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_application_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
