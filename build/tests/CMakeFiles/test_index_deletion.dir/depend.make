# Empty dependencies file for test_index_deletion.
# This may be replaced when dependencies are built.
