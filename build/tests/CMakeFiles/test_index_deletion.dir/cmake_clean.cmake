file(REMOVE_RECURSE
  "CMakeFiles/test_index_deletion.dir/test_index_deletion.cpp.o"
  "CMakeFiles/test_index_deletion.dir/test_index_deletion.cpp.o.d"
  "test_index_deletion"
  "test_index_deletion.pdb"
  "test_index_deletion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
