# Empty dependencies file for test_index_persistent.
# This may be replaced when dependencies are built.
