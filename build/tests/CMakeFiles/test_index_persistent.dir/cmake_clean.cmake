file(REMOVE_RECURSE
  "CMakeFiles/test_index_persistent.dir/test_index_persistent.cpp.o"
  "CMakeFiles/test_index_persistent.dir/test_index_persistent.cpp.o.d"
  "test_index_persistent"
  "test_index_persistent.pdb"
  "test_index_persistent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_persistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
