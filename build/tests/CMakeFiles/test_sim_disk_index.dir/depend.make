# Empty dependencies file for test_sim_disk_index.
# This may be replaced when dependencies are built.
