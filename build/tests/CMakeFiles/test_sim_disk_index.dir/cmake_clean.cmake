file(REMOVE_RECURSE
  "CMakeFiles/test_sim_disk_index.dir/test_sim_disk_index.cpp.o"
  "CMakeFiles/test_sim_disk_index.dir/test_sim_disk_index.cpp.o.d"
  "test_sim_disk_index"
  "test_sim_disk_index.pdb"
  "test_sim_disk_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_disk_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
