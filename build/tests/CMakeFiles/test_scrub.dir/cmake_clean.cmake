file(REMOVE_RECURSE
  "CMakeFiles/test_scrub.dir/test_scrub.cpp.o"
  "CMakeFiles/test_scrub.dir/test_scrub.cpp.o.d"
  "test_scrub"
  "test_scrub.pdb"
  "test_scrub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
