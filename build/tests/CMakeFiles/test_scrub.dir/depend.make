# Empty dependencies file for test_scrub.
# This may be replaced when dependencies are built.
