# Empty compiler generated dependencies file for test_fs_snapshot.
# This may be replaced when dependencies are built.
