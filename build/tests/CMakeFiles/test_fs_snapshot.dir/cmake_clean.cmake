file(REMOVE_RECURSE
  "CMakeFiles/test_fs_snapshot.dir/test_fs_snapshot.cpp.o"
  "CMakeFiles/test_fs_snapshot.dir/test_fs_snapshot.cpp.o.d"
  "test_fs_snapshot"
  "test_fs_snapshot.pdb"
  "test_fs_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
