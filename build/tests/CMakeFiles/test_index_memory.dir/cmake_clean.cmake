file(REMOVE_RECURSE
  "CMakeFiles/test_index_memory.dir/test_index_memory.cpp.o"
  "CMakeFiles/test_index_memory.dir/test_index_memory.cpp.o.d"
  "test_index_memory"
  "test_index_memory.pdb"
  "test_index_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
