file(REMOVE_RECURSE
  "CMakeFiles/test_state_persistence.dir/test_state_persistence.cpp.o"
  "CMakeFiles/test_state_persistence.dir/test_state_persistence.cpp.o.d"
  "test_state_persistence"
  "test_state_persistence.pdb"
  "test_state_persistence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
