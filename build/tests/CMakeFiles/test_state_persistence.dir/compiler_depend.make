# Empty compiler generated dependencies file for test_state_persistence.
# This may be replaced when dependencies are built.
