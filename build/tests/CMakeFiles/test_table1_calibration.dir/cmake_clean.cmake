file(REMOVE_RECURSE
  "CMakeFiles/test_table1_calibration.dir/test_table1_calibration.cpp.o"
  "CMakeFiles/test_table1_calibration.dir/test_table1_calibration.cpp.o.d"
  "test_table1_calibration"
  "test_table1_calibration.pdb"
  "test_table1_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
