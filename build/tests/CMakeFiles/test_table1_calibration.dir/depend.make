# Empty dependencies file for test_table1_calibration.
# This may be replaced when dependencies are built.
