file(REMOVE_RECURSE
  "CMakeFiles/test_rabin.dir/test_rabin.cpp.o"
  "CMakeFiles/test_rabin.dir/test_rabin.cpp.o.d"
  "test_rabin"
  "test_rabin.pdb"
  "test_rabin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rabin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
