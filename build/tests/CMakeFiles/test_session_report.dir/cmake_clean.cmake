file(REMOVE_RECURSE
  "CMakeFiles/test_session_report.dir/test_session_report.cpp.o"
  "CMakeFiles/test_session_report.dir/test_session_report.cpp.o.d"
  "test_session_report"
  "test_session_report.pdb"
  "test_session_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
