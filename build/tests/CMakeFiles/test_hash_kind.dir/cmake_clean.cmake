file(REMOVE_RECURSE
  "CMakeFiles/test_hash_kind.dir/test_hash_kind.cpp.o"
  "CMakeFiles/test_hash_kind.dir/test_hash_kind.cpp.o.d"
  "test_hash_kind"
  "test_hash_kind.pdb"
  "test_hash_kind[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
