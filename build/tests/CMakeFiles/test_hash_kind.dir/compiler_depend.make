# Empty compiler generated dependencies file for test_hash_kind.
# This may be replaced when dependencies are built.
