file(REMOVE_RECURSE
  "CMakeFiles/test_index_partitioned.dir/test_index_partitioned.cpp.o"
  "CMakeFiles/test_index_partitioned.dir/test_index_partitioned.cpp.o.d"
  "test_index_partitioned"
  "test_index_partitioned.pdb"
  "test_index_partitioned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
