# Empty compiler generated dependencies file for test_index_partitioned.
# This may be replaced when dependencies are built.
