file(REMOVE_RECURSE
  "CMakeFiles/test_upload_pipeline.dir/test_upload_pipeline.cpp.o"
  "CMakeFiles/test_upload_pipeline.dir/test_upload_pipeline.cpp.o.d"
  "test_upload_pipeline"
  "test_upload_pipeline.pdb"
  "test_upload_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upload_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
