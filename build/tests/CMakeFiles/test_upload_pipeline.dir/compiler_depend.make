# Empty compiler generated dependencies file for test_upload_pipeline.
# This may be replaced when dependencies are built.
