file(REMOVE_RECURSE
  "CMakeFiles/test_chunkers.dir/test_chunkers.cpp.o"
  "CMakeFiles/test_chunkers.dir/test_chunkers.cpp.o.d"
  "test_chunkers"
  "test_chunkers.pdb"
  "test_chunkers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
