# Empty dependencies file for test_chunkers.
# This may be replaced when dependencies are built.
