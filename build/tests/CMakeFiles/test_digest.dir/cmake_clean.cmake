file(REMOVE_RECURSE
  "CMakeFiles/test_digest.dir/test_digest.cpp.o"
  "CMakeFiles/test_digest.dir/test_digest.cpp.o.d"
  "test_digest"
  "test_digest.pdb"
  "test_digest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
