file(REMOVE_RECURSE
  "CMakeFiles/test_container_manager.dir/test_container_manager.cpp.o"
  "CMakeFiles/test_container_manager.dir/test_container_manager.cpp.o.d"
  "test_container_manager"
  "test_container_manager.pdb"
  "test_container_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
