file(REMOVE_RECURSE
  "CMakeFiles/test_garbage_collection.dir/test_garbage_collection.cpp.o"
  "CMakeFiles/test_garbage_collection.dir/test_garbage_collection.cpp.o.d"
  "test_garbage_collection"
  "test_garbage_collection.pdb"
  "test_garbage_collection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_garbage_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
