# Empty dependencies file for test_garbage_collection.
# This may be replaced when dependencies are built.
