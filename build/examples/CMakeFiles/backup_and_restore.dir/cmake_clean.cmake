file(REMOVE_RECURSE
  "CMakeFiles/backup_and_restore.dir/backup_and_restore.cpp.o"
  "CMakeFiles/backup_and_restore.dir/backup_and_restore.cpp.o.d"
  "backup_and_restore"
  "backup_and_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_and_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
