# Empty dependencies file for backup_and_restore.
# This may be replaced when dependencies are built.
