# Empty dependencies file for dedup_toolkit.
# This may be replaced when dependencies are built.
