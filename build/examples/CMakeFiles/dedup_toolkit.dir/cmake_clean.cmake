file(REMOVE_RECURSE
  "CMakeFiles/dedup_toolkit.dir/dedup_toolkit.cpp.o"
  "CMakeFiles/dedup_toolkit.dir/dedup_toolkit.cpp.o.d"
  "dedup_toolkit"
  "dedup_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
