file(REMOVE_RECURSE
  "CMakeFiles/trace_backup.dir/trace_backup.cpp.o"
  "CMakeFiles/trace_backup.dir/trace_backup.cpp.o.d"
  "trace_backup"
  "trace_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
