# Empty dependencies file for trace_backup.
# This may be replaced when dependencies are built.
