file(REMOVE_RECURSE
  "libaad_hash.a"
)
