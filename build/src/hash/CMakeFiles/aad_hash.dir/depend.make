# Empty dependencies file for aad_hash.
# This may be replaced when dependencies are built.
