file(REMOVE_RECURSE
  "CMakeFiles/aad_hash.dir/md5.cpp.o"
  "CMakeFiles/aad_hash.dir/md5.cpp.o.d"
  "CMakeFiles/aad_hash.dir/rabin.cpp.o"
  "CMakeFiles/aad_hash.dir/rabin.cpp.o.d"
  "CMakeFiles/aad_hash.dir/sha1.cpp.o"
  "CMakeFiles/aad_hash.dir/sha1.cpp.o.d"
  "libaad_hash.a"
  "libaad_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
