file(REMOVE_RECURSE
  "CMakeFiles/aad_container.dir/container.cpp.o"
  "CMakeFiles/aad_container.dir/container.cpp.o.d"
  "CMakeFiles/aad_container.dir/container_manager.cpp.o"
  "CMakeFiles/aad_container.dir/container_manager.cpp.o.d"
  "CMakeFiles/aad_container.dir/recipe.cpp.o"
  "CMakeFiles/aad_container.dir/recipe.cpp.o.d"
  "libaad_container.a"
  "libaad_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
