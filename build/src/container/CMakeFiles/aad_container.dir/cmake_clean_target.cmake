file(REMOVE_RECURSE
  "libaad_container.a"
)
