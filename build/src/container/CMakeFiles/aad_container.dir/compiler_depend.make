# Empty compiler generated dependencies file for aad_container.
# This may be replaced when dependencies are built.
