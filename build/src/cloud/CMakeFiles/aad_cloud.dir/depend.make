# Empty dependencies file for aad_cloud.
# This may be replaced when dependencies are built.
