file(REMOVE_RECURSE
  "libaad_cloud.a"
)
