file(REMOVE_RECURSE
  "CMakeFiles/aad_cloud.dir/object_store.cpp.o"
  "CMakeFiles/aad_cloud.dir/object_store.cpp.o.d"
  "libaad_cloud.a"
  "libaad_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
