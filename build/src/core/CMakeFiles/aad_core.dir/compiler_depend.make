# Empty compiler generated dependencies file for aad_core.
# This may be replaced when dependencies are built.
