file(REMOVE_RECURSE
  "libaad_core.a"
)
