file(REMOVE_RECURSE
  "CMakeFiles/aad_core.dir/aa_dedupe.cpp.o"
  "CMakeFiles/aad_core.dir/aa_dedupe.cpp.o.d"
  "libaad_core.a"
  "libaad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
