
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/chunk_level.cpp" "src/backup/CMakeFiles/aad_backup.dir/chunk_level.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/chunk_level.cpp.o.d"
  "/root/repo/src/backup/file_level.cpp" "src/backup/CMakeFiles/aad_backup.dir/file_level.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/file_level.cpp.o.d"
  "/root/repo/src/backup/full_backup.cpp" "src/backup/CMakeFiles/aad_backup.dir/full_backup.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/full_backup.cpp.o.d"
  "/root/repo/src/backup/incremental.cpp" "src/backup/CMakeFiles/aad_backup.dir/incremental.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/incremental.cpp.o.d"
  "/root/repo/src/backup/sam.cpp" "src/backup/CMakeFiles/aad_backup.dir/sam.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/sam.cpp.o.d"
  "/root/repo/src/backup/scheme.cpp" "src/backup/CMakeFiles/aad_backup.dir/scheme.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/scheme.cpp.o.d"
  "/root/repo/src/backup/target_dedupe.cpp" "src/backup/CMakeFiles/aad_backup.dir/target_dedupe.cpp.o" "gcc" "src/backup/CMakeFiles/aad_backup.dir/target_dedupe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aad_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/aad_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/aad_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/aad_index.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aad_container.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/aad_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/aad_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aad_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
