# Empty dependencies file for aad_backup.
# This may be replaced when dependencies are built.
