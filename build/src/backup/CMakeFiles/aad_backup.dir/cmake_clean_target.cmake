file(REMOVE_RECURSE
  "libaad_backup.a"
)
