file(REMOVE_RECURSE
  "CMakeFiles/aad_backup.dir/chunk_level.cpp.o"
  "CMakeFiles/aad_backup.dir/chunk_level.cpp.o.d"
  "CMakeFiles/aad_backup.dir/file_level.cpp.o"
  "CMakeFiles/aad_backup.dir/file_level.cpp.o.d"
  "CMakeFiles/aad_backup.dir/full_backup.cpp.o"
  "CMakeFiles/aad_backup.dir/full_backup.cpp.o.d"
  "CMakeFiles/aad_backup.dir/incremental.cpp.o"
  "CMakeFiles/aad_backup.dir/incremental.cpp.o.d"
  "CMakeFiles/aad_backup.dir/sam.cpp.o"
  "CMakeFiles/aad_backup.dir/sam.cpp.o.d"
  "CMakeFiles/aad_backup.dir/scheme.cpp.o"
  "CMakeFiles/aad_backup.dir/scheme.cpp.o.d"
  "CMakeFiles/aad_backup.dir/target_dedupe.cpp.o"
  "CMakeFiles/aad_backup.dir/target_dedupe.cpp.o.d"
  "libaad_backup.a"
  "libaad_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
