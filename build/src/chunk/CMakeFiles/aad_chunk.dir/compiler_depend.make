# Empty compiler generated dependencies file for aad_chunk.
# This may be replaced when dependencies are built.
