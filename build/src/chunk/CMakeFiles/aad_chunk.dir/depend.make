# Empty dependencies file for aad_chunk.
# This may be replaced when dependencies are built.
