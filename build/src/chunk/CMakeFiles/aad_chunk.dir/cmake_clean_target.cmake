file(REMOVE_RECURSE
  "libaad_chunk.a"
)
