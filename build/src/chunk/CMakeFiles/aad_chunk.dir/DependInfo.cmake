
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunk/cdc_chunker.cpp" "src/chunk/CMakeFiles/aad_chunk.dir/cdc_chunker.cpp.o" "gcc" "src/chunk/CMakeFiles/aad_chunk.dir/cdc_chunker.cpp.o.d"
  "/root/repo/src/chunk/chunker.cpp" "src/chunk/CMakeFiles/aad_chunk.dir/chunker.cpp.o" "gcc" "src/chunk/CMakeFiles/aad_chunk.dir/chunker.cpp.o.d"
  "/root/repo/src/chunk/fastcdc_chunker.cpp" "src/chunk/CMakeFiles/aad_chunk.dir/fastcdc_chunker.cpp.o" "gcc" "src/chunk/CMakeFiles/aad_chunk.dir/fastcdc_chunker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aad_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/aad_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
