file(REMOVE_RECURSE
  "CMakeFiles/aad_chunk.dir/cdc_chunker.cpp.o"
  "CMakeFiles/aad_chunk.dir/cdc_chunker.cpp.o.d"
  "CMakeFiles/aad_chunk.dir/chunker.cpp.o"
  "CMakeFiles/aad_chunk.dir/chunker.cpp.o.d"
  "CMakeFiles/aad_chunk.dir/fastcdc_chunker.cpp.o"
  "CMakeFiles/aad_chunk.dir/fastcdc_chunker.cpp.o.d"
  "libaad_chunk.a"
  "libaad_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
