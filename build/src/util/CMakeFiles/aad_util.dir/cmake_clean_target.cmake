file(REMOVE_RECURSE
  "libaad_util.a"
)
