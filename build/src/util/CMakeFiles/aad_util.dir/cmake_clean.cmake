file(REMOVE_RECURSE
  "CMakeFiles/aad_util.dir/bytes.cpp.o"
  "CMakeFiles/aad_util.dir/bytes.cpp.o.d"
  "CMakeFiles/aad_util.dir/rng.cpp.o"
  "CMakeFiles/aad_util.dir/rng.cpp.o.d"
  "CMakeFiles/aad_util.dir/thread_pool.cpp.o"
  "CMakeFiles/aad_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/aad_util.dir/units.cpp.o"
  "CMakeFiles/aad_util.dir/units.cpp.o.d"
  "libaad_util.a"
  "libaad_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
