# Empty compiler generated dependencies file for aad_util.
# This may be replaced when dependencies are built.
