file(REMOVE_RECURSE
  "CMakeFiles/aad_dataset.dir/content.cpp.o"
  "CMakeFiles/aad_dataset.dir/content.cpp.o.d"
  "CMakeFiles/aad_dataset.dir/file_kind.cpp.o"
  "CMakeFiles/aad_dataset.dir/file_kind.cpp.o.d"
  "CMakeFiles/aad_dataset.dir/fs_snapshot.cpp.o"
  "CMakeFiles/aad_dataset.dir/fs_snapshot.cpp.o.d"
  "CMakeFiles/aad_dataset.dir/generator.cpp.o"
  "CMakeFiles/aad_dataset.dir/generator.cpp.o.d"
  "CMakeFiles/aad_dataset.dir/trace.cpp.o"
  "CMakeFiles/aad_dataset.dir/trace.cpp.o.d"
  "libaad_dataset.a"
  "libaad_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
