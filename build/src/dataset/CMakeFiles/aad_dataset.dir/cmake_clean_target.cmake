file(REMOVE_RECURSE
  "libaad_dataset.a"
)
