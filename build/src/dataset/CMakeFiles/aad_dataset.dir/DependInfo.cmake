
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/content.cpp" "src/dataset/CMakeFiles/aad_dataset.dir/content.cpp.o" "gcc" "src/dataset/CMakeFiles/aad_dataset.dir/content.cpp.o.d"
  "/root/repo/src/dataset/file_kind.cpp" "src/dataset/CMakeFiles/aad_dataset.dir/file_kind.cpp.o" "gcc" "src/dataset/CMakeFiles/aad_dataset.dir/file_kind.cpp.o.d"
  "/root/repo/src/dataset/fs_snapshot.cpp" "src/dataset/CMakeFiles/aad_dataset.dir/fs_snapshot.cpp.o" "gcc" "src/dataset/CMakeFiles/aad_dataset.dir/fs_snapshot.cpp.o.d"
  "/root/repo/src/dataset/generator.cpp" "src/dataset/CMakeFiles/aad_dataset.dir/generator.cpp.o" "gcc" "src/dataset/CMakeFiles/aad_dataset.dir/generator.cpp.o.d"
  "/root/repo/src/dataset/trace.cpp" "src/dataset/CMakeFiles/aad_dataset.dir/trace.cpp.o" "gcc" "src/dataset/CMakeFiles/aad_dataset.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
