# Empty compiler generated dependencies file for aad_dataset.
# This may be replaced when dependencies are built.
