file(REMOVE_RECURSE
  "CMakeFiles/aad_index.dir/memory_index.cpp.o"
  "CMakeFiles/aad_index.dir/memory_index.cpp.o.d"
  "CMakeFiles/aad_index.dir/partitioned_index.cpp.o"
  "CMakeFiles/aad_index.dir/partitioned_index.cpp.o.d"
  "CMakeFiles/aad_index.dir/persistent_index.cpp.o"
  "CMakeFiles/aad_index.dir/persistent_index.cpp.o.d"
  "CMakeFiles/aad_index.dir/sim_disk_index.cpp.o"
  "CMakeFiles/aad_index.dir/sim_disk_index.cpp.o.d"
  "libaad_index.a"
  "libaad_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
