# Empty compiler generated dependencies file for aad_index.
# This may be replaced when dependencies are built.
