
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/memory_index.cpp" "src/index/CMakeFiles/aad_index.dir/memory_index.cpp.o" "gcc" "src/index/CMakeFiles/aad_index.dir/memory_index.cpp.o.d"
  "/root/repo/src/index/partitioned_index.cpp" "src/index/CMakeFiles/aad_index.dir/partitioned_index.cpp.o" "gcc" "src/index/CMakeFiles/aad_index.dir/partitioned_index.cpp.o.d"
  "/root/repo/src/index/persistent_index.cpp" "src/index/CMakeFiles/aad_index.dir/persistent_index.cpp.o" "gcc" "src/index/CMakeFiles/aad_index.dir/persistent_index.cpp.o.d"
  "/root/repo/src/index/sim_disk_index.cpp" "src/index/CMakeFiles/aad_index.dir/sim_disk_index.cpp.o" "gcc" "src/index/CMakeFiles/aad_index.dir/sim_disk_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aad_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/aad_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
