file(REMOVE_RECURSE
  "libaad_index.a"
)
