file(REMOVE_RECURSE
  "CMakeFiles/aad_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/aad_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/aad_crypto.dir/convergent.cpp.o"
  "CMakeFiles/aad_crypto.dir/convergent.cpp.o.d"
  "libaad_crypto.a"
  "libaad_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
