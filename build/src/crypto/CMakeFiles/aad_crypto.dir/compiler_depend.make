# Empty compiler generated dependencies file for aad_crypto.
# This may be replaced when dependencies are built.
