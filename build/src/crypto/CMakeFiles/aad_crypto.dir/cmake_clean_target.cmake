file(REMOVE_RECURSE
  "libaad_crypto.a"
)
