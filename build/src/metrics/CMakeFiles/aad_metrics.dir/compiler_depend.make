# Empty compiler generated dependencies file for aad_metrics.
# This may be replaced when dependencies are built.
