file(REMOVE_RECURSE
  "libaad_metrics.a"
)
