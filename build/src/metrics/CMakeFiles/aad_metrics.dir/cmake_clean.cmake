file(REMOVE_RECURSE
  "CMakeFiles/aad_metrics.dir/table_writer.cpp.o"
  "CMakeFiles/aad_metrics.dir/table_writer.cpp.o.d"
  "libaad_metrics.a"
  "libaad_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aad_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
