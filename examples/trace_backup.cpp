// trace_backup — run the full scheme comparison on YOUR file listing.
//
// Feed a trace CSV (one row per file per weekly scan):
//     session,path,ext,size_bytes,version
// Content is synthesized deterministically per (path, version) with the
// calibrated per-type redundancy model (see src/dataset/trace.hpp), so a
// plain metadata listing — which users can actually share — is enough to
// reproduce the paper's whole evaluation on a real directory structure.
//
// Usage:  ./trace_backup <trace.csv>
//         ./trace_backup --demo            (built-in 2-session sample)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "backup/chunk_level.hpp"
#include "backup/file_level.hpp"
#include "backup/incremental.hpp"
#include "backup/sam.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/trace.hpp"
#include "metrics/table_writer.hpp"
#include "telemetry/log.hpp"
#include "util/units.hpp"

namespace {

std::string demo_trace() {
  // A small two-week listing: documents (one edited), photos (two added
  // in week 2), a VM image with weekly block churn, music (one duplicate
  // pair via equal size+kind is NOT dedup — the duplicate comes from the
  // unchanged version across weeks).
  std::string csv = "session,path,ext,size_bytes,version\n";
  for (int week = 0; week < 2; ++week) {
    for (int i = 0; i < 6; ++i) {
      csv += std::to_string(week) + ",docs/report" + std::to_string(i) +
             ".doc,doc,90000," + ((week == 1 && i < 2) ? "1" : "0") + "\n";
    }
    const int photos = week == 0 ? 4 : 6;
    for (int i = 0; i < photos; ++i) {
      csv += std::to_string(week) + ",photos/img" + std::to_string(i) +
             ".jpg,jpg,250000,0\n";
    }
    csv += std::to_string(week) + ",vm/dev.vmdk,vmdk,3000000," +
           std::to_string(week) + "\n";
    csv += std::to_string(week) + ",music/song.mp3,mp3,900000,0\n";
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aadedupe;

  if (argc < 2) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "usage: %s <trace.csv> | --demo", argv[0]);
    return 2;
  }
  std::string csv;
  if (std::string(argv[1]) == "--demo") {
    csv = demo_trace();
    std::printf("using the built-in demo trace\n");
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      AAD_LOG(&telemetry::stderr_logger(), kError, "session",
              "cannot read %s", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    csv = buf.str();
  }

  std::vector<dataset::Snapshot> sessions;
  try {
    sessions = dataset::sessions_from_trace(dataset::parse_trace_csv(csv));
  } catch (const std::exception& e) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session", "trace error: %s",
            e.what());
    return 1;
  }
  if (sessions.empty()) {
    std::printf("trace is empty\n");
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& s : sessions) total += s.total_bytes();
  std::printf("trace: %zu sessions, %s total\n\n", sessions.size(),
              format_bytes(total).c_str());

  metrics::TableWriter table({"scheme", "shipped", "stored", "requests",
                              "sum BWS (s)", "avg DE"});
  const auto run = [&](auto&& make) {
    cloud::CloudTarget target;
    auto scheme = make(target);
    std::uint64_t shipped = 0, requests = 0;
    double window = 0, de = 0;
    for (const auto& snapshot : sessions) {
      const auto report = scheme->backup(snapshot);
      shipped += report.transferred_bytes;
      requests += report.upload_requests;
      window += report.backup_window_seconds();
      de += report.bytes_saved_per_second();
    }
    table.add_row({std::string(scheme->name()), format_bytes(shipped),
                   format_bytes(target.store().stored_bytes()),
                   metrics::TableWriter::integer(requests),
                   metrics::TableWriter::num(window, 1),
                   format_rate(de / static_cast<double>(sessions.size()))});
  };
  run([](cloud::CloudTarget& t) {
    return std::make_unique<backup::IncrementalScheme>(t);
  });
  run([](cloud::CloudTarget& t) {
    return std::make_unique<backup::FileLevelScheme>(t);
  });
  run([](cloud::CloudTarget& t) {
    return std::make_unique<backup::ChunkLevelScheme>(t);
  });
  run([](cloud::CloudTarget& t) {
    return std::make_unique<backup::SamScheme>(t);
  });
  run([](cloud::CloudTarget& t) {
    return std::make_unique<core::AaDedupeScheme>(t);
  });
  table.print();
  return 0;
}
