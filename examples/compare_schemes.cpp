// Compare the five cloud backup schemes of the paper's evaluation on the
// same multi-session workload: Jungle Disk-style incremental, BackupPC-
// style file-level dedup, Avamar-style chunk-level dedup, SAM-style hybrid
// dedup, and AA-Dedupe. Prints a per-scheme summary resembling the
// aggregate view of Figs. 7-10.
//
// Run:  ./compare_schemes [sessions] [mib_per_session]
//
// AAD_RUN_REPORT / AAD_TRACE_OUT / AAD_FLIGHT_OUT apply to the AA-Dedupe
// run (the instrumented scheme) via the shared Observability env wiring.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "backup/chunk_level.hpp"
#include "bench_common.hpp"
#include "backup/file_level.hpp"
#include "backup/full_backup.hpp"
#include "backup/incremental.hpp"
#include "backup/sam.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "metrics/table_writer.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace aadedupe;

  const std::uint32_t sessions =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::uint64_t session_mib =
      argc > 2 ? static_cast<std::uint64_t>(std::atoi(argv[2])) : 32;

  dataset::DatasetConfig config;
  config.seed = 99;
  config.session_bytes = session_mib * 1024 * 1024;
  dataset::DatasetGenerator generator(config);
  const std::vector<dataset::Snapshot> snapshots =
      generator.sessions(sessions);

  struct Row {
    std::string name;
    std::uint64_t stored = 0;
    std::uint64_t shipped = 0;
    std::uint64_t requests = 0;
    double window = 0;
    double efficiency = 0;
    double cost = 0;
  };
  std::vector<Row> rows;

  auto run = [&](std::unique_ptr<backup::BackupScheme> scheme,
                 cloud::CloudTarget& target) {
    Row row;
    row.name = scheme->name();
    double efficiency_sum = 0;
    for (const auto& snapshot : snapshots) {
      const auto report = scheme->backup(snapshot);
      row.shipped += report.transferred_bytes;
      row.requests += report.upload_requests;
      row.window += report.backup_window_seconds();
      efficiency_sum += report.bytes_saved_per_second();
    }
    row.stored = target.store().stored_bytes();
    row.efficiency = efficiency_sum / sessions;
    row.cost = target.monthly_cost();
    rows.push_back(row);
    std::printf("  %-11s done\n", row.name.c_str());
  };

  std::printf("running %u sessions x %llu MiB for 6 schemes...\n", sessions,
              static_cast<unsigned long long>(session_mib));
  {
    cloud::CloudTarget t;
    run(std::make_unique<backup::FullBackupScheme>(t), t);
  }
  {
    cloud::CloudTarget t;
    run(std::make_unique<backup::IncrementalScheme>(t), t);
  }
  {
    cloud::CloudTarget t;
    run(std::make_unique<backup::FileLevelScheme>(t), t);
  }
  {
    cloud::CloudTarget t;
    run(std::make_unique<backup::ChunkLevelScheme>(t), t);
  }
  {
    cloud::CloudTarget t;
    run(std::make_unique<backup::SamScheme>(t), t);
  }
  bench::Observability obs;
  {
    cloud::CloudTarget t;
    core::AaDedupeOptions options;
    options.telemetry = &obs.telemetry();
    run(std::make_unique<core::AaDedupeScheme>(t, options), t);

    metrics::TableWriter table({"scheme", "cloud stored", "shipped",
                                "requests", "sum BWS (s)", "avg DE",
                                "monthly $"});
    for (const Row& row : rows) {
      table.add_row({row.name, format_bytes(row.stored),
                     format_bytes(row.shipped),
                     metrics::TableWriter::integer(row.requests),
                     metrics::TableWriter::num(row.window, 1),
                     format_rate(row.efficiency),
                     metrics::TableWriter::num(row.cost, 4)});
    }
    std::printf("\n");
    table.print();

    obs.finish([&](telemetry::RunReport& report) {
      t.fill_run_report(report);
      table.fill_json(report.section("comparison")["rows"]);
    });
  }
  return 0;
}
