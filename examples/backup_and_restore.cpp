// Disaster-recovery walkthrough: run several weekly AA-Dedupe backups,
// then "lose the laptop" and restore every file of the latest session from
// the cloud, verifying byte-exact integrity — including the application-
// aware index image synced per session.
//
// Run:  ./backup_and_restore [sessions]
//
// AAD_RUN_REPORT / AAD_TRACE_OUT / AAD_FLIGHT_OUT write the usual
// observability artifacts via the shared Observability env wiring.
#include <cstdio>
#include <cstdlib>

#include "backup/keys.hpp"
#include "bench_common.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "index/checkpoint.hpp"
#include "index/partitioned_index.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace aadedupe;

  const std::uint32_t sessions =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;

  bench::Observability obs;
  cloud::CloudTarget cloud_target;
  core::AaDedupeOptions scheme_options;
  scheme_options.telemetry = &obs.telemetry();
  core::AaDedupeScheme scheme(cloud_target, scheme_options);

  dataset::DatasetConfig config;
  config.seed = 4242;
  config.session_bytes = 24ull * 1024 * 1024;
  dataset::DatasetGenerator generator(config);
  const auto snapshots = generator.sessions(sessions);

  for (const auto& snapshot : snapshots) {
    const auto report = scheme.backup(snapshot);
    std::printf(
        "session %u: %zu files, %s logical -> %s shipped (DR %.2f), "
        "window %.1f s\n",
        snapshot.session, snapshot.files.size(),
        format_bytes(report.dataset_bytes).c_str(),
        format_bytes(report.transferred_bytes).c_str(),
        report.dedupe_ratio(), report.backup_window_seconds());
  }

  // --- disaster strikes; everything below uses only the cloud ---

  const dataset::Snapshot& latest = snapshots.back();
  std::printf("\nrestoring %zu files from the cloud...\n",
              latest.files.size());
  std::size_t verified = 0;
  std::uint64_t restored_bytes = 0;
  for (const auto& file : latest.files) {
    const ByteBuffer restored = scheme.restore_file(file.path);
    const ByteBuffer original = dataset::materialize(file.content);
    if (restored != original) {
      std::printf("INTEGRITY FAILURE: %s\n", file.path.c_str());
      return 1;
    }
    ++verified;
    restored_bytes += restored.size();
  }
  std::printf("restored and verified %zu files (%s) byte-exactly\n", verified,
              format_bytes(restored_bytes).c_str());

  // The synced application-aware index can be reloaded from the cloud —
  // this is what a replacement machine would bootstrap from. The first
  // session ships a full checkpoint base and every later session a small
  // delta, so recovery replays the whole chain in session order.
  index::PartitionedIndex recovered;
  for (const auto& snapshot : snapshots) {
    const auto image = cloud_target.store().get(backup::keys::session_meta(
        "AA-Dedupe", snapshot.session, "index"));
    if (!image) {
      std::printf("missing index sync object for session %u!\n",
                  snapshot.session);
      return 1;
    }
    if (index::is_checkpoint_stream(*image)) {
      index::BufferCheckpointSource source(*image);
      recovered.restore(source);
    } else {
      recovered.deserialize(*image);  // pre-checkpoint legacy image
    }
  }
  std::printf("recovered application-aware index: %llu chunks in %zu "
              "per-application shards\n",
              static_cast<unsigned long long>(recovered.total_size()),
              recovered.partitions().size());

  const std::string report_path =
      obs.finish([&](telemetry::RunReport& report) {
        scheme.fill_run_report(report);
        cloud_target.fill_run_report(report);
      });
  if (!report_path.empty()) {
    std::printf("wrote run report to %s\n", report_path.c_str());
  }
  return 0;
}
