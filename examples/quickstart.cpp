// Quickstart: back up a simulated PC to a simulated cloud with AA-Dedupe.
//
// Demonstrates the three core public-API steps:
//   1. build (or bring your own) a workload snapshot,
//   2. run AaDedupeScheme::backup() against a CloudTarget,
//   3. read the session report and restore a file byte-exactly.
//
// Run:  ./quickstart
//
// Set AAD_RUN_REPORT=<path> to also write a structured telemetry run
// report (metrics, per-stage span times, per-application dedup ratios,
// transport counters) as JSON.
#include <cstdio>
#include <cstdlib>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  // A simulated cloud behind the paper's WAN (500 KB/s up, 1 MB/s down)
  // priced like April-2011 Amazon S3.
  cloud::CloudTarget cloud_target;

  // A week-0 snapshot of a simulated PC user directory: 12 application
  // types, ~64 MiB, with realistic size skew and per-type redundancy.
  dataset::DatasetConfig config;
  config.seed = 2026;
  config.session_bytes = 64ull * 1024 * 1024;
  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot snapshot = generator.initial();
  std::printf("snapshot: %zu files, %s\n", snapshot.files.size(),
              format_bytes(snapshot.total_bytes()).c_str());

  // Back it up with AA-Dedupe, with the telemetry layer attached.
  telemetry::Telemetry telemetry;
  core::AaDedupeOptions options;
  options.telemetry = &telemetry;
  core::AaDedupeScheme scheme(cloud_target, options);
  const backup::SessionReport report = scheme.backup(snapshot);

  std::printf("\n-- session report --------------------------------\n");
  std::printf("dataset size (DS)        : %s\n",
              format_bytes(report.dataset_bytes).c_str());
  std::printf("shipped to cloud         : %s in %llu requests\n",
              format_bytes(report.transferred_bytes).c_str(),
              static_cast<unsigned long long>(report.upload_requests));
  std::printf("dedupe ratio (DR)        : %.2f\n", report.dedupe_ratio());
  std::printf("dedupe throughput (DT)   : %s\n",
              format_rate(report.dedupe_throughput()).c_str());
  std::printf("bytes saved per second   : %s\n",
              format_rate(report.bytes_saved_per_second()).c_str());
  std::printf("backup window (BWS)      : %.1f s (dedupe %.1f s, WAN %.1f s)\n",
              report.backup_window_seconds(), report.dedupe_seconds,
              report.transfer_seconds);
  std::printf("monthly cloud cost       : $%.4f\n",
              cloud_target.monthly_cost());

  // The application-aware view: per-file-type policy and index state.
  std::printf("\n-- application-aware breakdown -------------------\n");
  std::printf("%-6s %-4s %-8s %8s %9s %8s %8s\n", "app", "chnk", "hash",
              "files", "bytes", "chunks", "index");
  for (const auto& row : scheme.application_stats()) {
    std::printf("%-6s %-4s %-8s %8llu %9s %8llu %8llu\n",
                row.partition.c_str(), row.chunker.c_str(), row.hash.c_str(),
                static_cast<unsigned long long>(row.session_files),
                format_bytes(row.session_bytes).c_str(),
                static_cast<unsigned long long>(row.session_chunks),
                static_cast<unsigned long long>(row.index_entries));
  }

  // Optional structured artifact: everything above (plus live metrics and
  // per-stage span times) as one JSON run report.
  if (const char* path = std::getenv("AAD_RUN_REPORT");
      path != nullptr && *path != '\0') {
    telemetry::RunReport run_report;
    run_report.add_telemetry(telemetry);
    scheme.fill_run_report(run_report);
    cloud_target.fill_run_report(run_report);
    backup::fill_run_report(report, run_report);
    run_report.write_file(path);
    std::printf("\nwrote run report to %s\n", path);
  }

  // Restore one file and verify it round-tripped byte-exactly.
  const dataset::FileEntry& sample = snapshot.files.front();
  const ByteBuffer restored = scheme.restore_file(sample.path);
  const ByteBuffer original = dataset::materialize(sample.content);
  std::printf("\nrestore check (%s): %s\n", sample.path.c_str(),
              restored == original ? "OK, byte-exact" : "MISMATCH");
  return restored == original ? 0 : 1;
}
