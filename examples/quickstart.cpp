// Quickstart: back up a simulated PC to a simulated cloud with AA-Dedupe.
//
// Demonstrates the three core public-API steps:
//   1. build (or bring your own) a workload snapshot,
//   2. run AaDedupeScheme::backup() against a CloudTarget,
//   3. read the session report and restore a file byte-exactly.
//
// Run:  ./quickstart
//
// Observability (all optional, via bench::Observability):
//   AAD_RUN_REPORT=<path>  structured telemetry run report (metrics,
//                          per-stage spans, timeline curves) as JSON
//   AAD_TRACE_OUT=<path>   Chrome-trace/Perfetto trace.json — open it at
//                          ui.perfetto.dev
//   AAD_FLIGHT_OUT=<path>  flight-recorder crash artifact path
//   AAD_LOG_LEVEL=info     show the structured log stream on stderr
// Demo knobs:
//   AAD_FAULT_RATE=0.05    inject transport faults (fraction of requests)
//   AAD_CRASH_DEMO=1       force an invariant failure after the backup to
//                          demonstrate the flight-recorder dump
#include <cstdio>

#include "backup/scheme.hpp"
#include "bench_common.hpp"
#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  // Telemetry context + artifact wiring from the environment (null-cost
  // when no AAD_* variables are set beyond the context itself).
  bench::Observability obs;

  // A simulated cloud behind the paper's WAN (500 KB/s up, 1 MB/s down)
  // priced like April-2011 Amazon S3.
  cloud::CloudTarget cloud_target;
  const double fault_rate = bench::env_double("AAD_FAULT_RATE", 0.0);
  if (fault_rate > 0.0) {
    cloud::FaultProfile faults;
    faults.put_transient_p = fault_rate;
    cloud_target.inject_faults(faults, /*seed=*/2026);
    std::printf("injecting transport faults: %.1f%% of puts\n",
                fault_rate * 100.0);
  }

  // A week-0 snapshot of a simulated PC user directory: 12 application
  // types, ~64 MiB, with realistic size skew and per-type redundancy.
  dataset::DatasetConfig config;
  config.seed = 2026;
  config.session_bytes = 64ull * 1024 * 1024;
  dataset::DatasetGenerator generator(config);
  const dataset::Snapshot snapshot = generator.initial();
  std::printf("snapshot: %zu files, %s\n", snapshot.files.size(),
              format_bytes(snapshot.total_bytes()).c_str());

  // Back it up with AA-Dedupe, with the telemetry layer attached.
  core::AaDedupeOptions options;
  options.telemetry = &obs.telemetry();
  core::AaDedupeScheme scheme(cloud_target, options);
  const backup::SessionReport report = scheme.backup(snapshot);

  std::printf("\n-- session report --------------------------------\n");
  std::printf("dataset size (DS)        : %s\n",
              format_bytes(report.dataset_bytes).c_str());
  std::printf("shipped to cloud         : %s in %llu requests\n",
              format_bytes(report.transferred_bytes).c_str(),
              static_cast<unsigned long long>(report.upload_requests));
  std::printf("dedupe ratio (DR)        : %.2f\n", report.dedupe_ratio());
  std::printf("dedupe throughput (DT)   : %s\n",
              format_rate(report.dedupe_throughput()).c_str());
  std::printf("bytes saved per second   : %s\n",
              format_rate(report.bytes_saved_per_second()).c_str());
  std::printf("backup window (BWS)      : %.1f s (dedupe %.1f s, WAN %.1f s)\n",
              report.backup_window_seconds(), report.dedupe_seconds,
              report.transfer_seconds);
  std::printf("monthly cloud cost       : $%.4f\n",
              cloud_target.monthly_cost());

  // The application-aware view: per-file-type policy and index state.
  std::printf("\n-- application-aware breakdown -------------------\n");
  std::printf("%-6s %-4s %-8s %8s %9s %8s %8s\n", "app", "chnk", "hash",
              "files", "bytes", "chunks", "index");
  for (const auto& row : scheme.application_stats()) {
    std::printf("%-6s %-4s %-8s %8llu %9s %8llu %8llu\n",
                row.partition.c_str(), row.chunker.c_str(), row.hash.c_str(),
                static_cast<unsigned long long>(row.session_files),
                format_bytes(row.session_bytes).c_str(),
                static_cast<unsigned long long>(row.session_chunks),
                static_cast<unsigned long long>(row.index_entries));
  }

  // Optional structured artifacts: the run report (everything above plus
  // live metrics, stage spans, and timeline curves) and the Perfetto
  // trace, both via the Observability env wiring.
  const std::string report_path =
      obs.finish([&](telemetry::RunReport& run_report) {
        scheme.fill_run_report(run_report);
        cloud_target.fill_run_report(run_report);
        backup::fill_run_report(report, run_report);
      });
  if (!report_path.empty()) {
    std::printf("\nwrote run report to %s\n", report_path.c_str());
  }

  // Forced post-mortem: trip an invariant so the failure hook dumps the
  // flight recorder (set AAD_FLIGHT_OUT for the artifact path). Exits
  // nonzero by design.
  if (bench::env_u64("AAD_CRASH_DEMO", 0) != 0) {
    std::printf("\nAAD_CRASH_DEMO: forcing an invariant failure\n");
    AAD_ENSURES(report.transferred_bytes == 0);  // deliberately false
  }

  // Restore one file and verify it round-tripped byte-exactly.
  const dataset::FileEntry& sample = snapshot.files.front();
  const ByteBuffer restored = scheme.restore_file(sample.path);
  const ByteBuffer original = dataset::materialize(sample.content);
  std::printf("\nrestore check (%s): %s\n", sample.path.c_str(),
              restored == original ? "OK, byte-exact" : "MISMATCH");
  return restored == original ? 0 : 1;
}
