// Using the library as a deduplication toolkit, below the backup-scheme
// level: chunk a buffer three ways, fingerprint with the three hash
// families, and drive the application-aware partitioned index directly.
// This is the API a downstream system would embed.
//
// Run:  ./dedup_toolkit
#include <cstdio>

#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "hash/hash_kind.hpp"
#include "index/partitioned_index.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

int main() {
  using namespace aadedupe;

  // Build a 4 MiB buffer: random content with an embedded repeated region.
  ByteBuffer data(4ull << 20);
  Xoshiro256 rng(1);
  rng.fill(data);
  std::copy(data.begin(), data.begin() + (64 << 10),
            data.begin() + (2 << 20));  // plant a 64 KiB duplicate region

  // 1. Chunk it three ways.
  chunk::WholeFileChunker wfc;
  chunk::StaticChunker sc;     // 8 KB fixed
  chunk::CdcChunker cdc;       // Rabin, 8 KB expected, 2-16 KB
  for (const chunk::Chunker* chunker :
       {static_cast<const chunk::Chunker*>(&wfc),
        static_cast<const chunk::Chunker*>(&sc),
        static_cast<const chunk::Chunker*>(&cdc)}) {
    const auto chunks = chunker->split(data);
    std::printf("%-4s -> %6zu chunks, avg %s\n",
                std::string(chunker->name()).c_str(), chunks.size(),
                format_bytes(data.size() / chunks.size()).c_str());
  }

  // 2. Fingerprint one chunk with each hash family.
  const ConstByteSpan chunk_bytes = ConstByteSpan{data}.subspan(0, 8192);
  for (const hash::HashKind kind :
       {hash::HashKind::kRabin96, hash::HashKind::kMd5,
        hash::HashKind::kSha1}) {
    const hash::Digest digest = hash::compute_digest(kind, chunk_bytes);
    std::printf("%-8s (%2zu bytes): %s\n",
                std::string(hash::to_string(kind)).c_str(), digest.size(),
                digest.hex().c_str());
  }

  // 3. Deduplicate the CDC chunks into a partitioned index, routing by a
  // made-up application tag, and count what a backup would actually ship.
  index::PartitionedIndex index;
  std::uint64_t unique_bytes = 0, dup_bytes = 0;
  for (const chunk::ChunkRef& ref : cdc.split(data)) {
    const auto bytes = ConstByteSpan{data}.subspan(ref.offset, ref.length);
    const hash::Digest digest = hash::Sha1::hash(bytes);
    index::ChunkIndex& shard = index.shard("demo-app");
    if (shard.lookup(digest)) {
      dup_bytes += ref.length;
    } else {
      shard.insert(digest, index::ChunkLocation{0, 0, ref.length});
      unique_bytes += ref.length;
    }
  }
  std::printf("\nCDC dedup over the buffer: %s unique, %s duplicate "
              "(the planted 64 KiB region)\n",
              format_bytes(unique_bytes).c_str(),
              format_bytes(dup_bytes).c_str());

  const auto stats = index.total_stats();
  std::printf("index: %llu entries, %llu lookups, %llu hits\n",
              static_cast<unsigned long long>(index.total_size()),
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.hits));
  return 0;
}
