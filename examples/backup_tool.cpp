// backup_tool — a stateful AA-Dedupe backup client for REAL directories.
//
// The cloud (object store) and client state (application-aware index,
// session recipes, container counter, wrapped keys) persist in a state
// directory, so repeated runs deduplicate against everything already
// backed up — incremental weekly backups, exactly as the paper models.
//
// Usage:
//   backup_tool backup  <source-dir> <state-dir>
//   backup_tool restore <state-dir>  <output-dir> [session]
//   backup_tool gc      <state-dir>  <keep-sessions>
//   backup_tool sessions <state-dir>
//   backup_tool stats    <state-dir>      (per-application breakdown)
//   backup_tool scrub    <state-dir>      (verify every chunk fingerprint)
//
// Set AAD_PASSPHRASE to enable convergent encryption (must be set
// consistently across runs against the same state directory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "backup/keys.hpp"
#include "telemetry/env.hpp"
#include "telemetry/log.hpp"
#include "cloud/cloud_target.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/fs_snapshot.hpp"
#include "util/units.hpp"

namespace fs = std::filesystem;
using namespace aadedupe;

namespace {

struct Client {
  cloud::CloudTarget cloud;
  std::unique_ptr<core::AaDedupeScheme> scheme;
  fs::path state_dir;

  fs::path store_path() const { return state_dir / "cloud.bin"; }
  fs::path state_path() const { return state_dir / "client.bin"; }
};

void open_client(Client& client, const fs::path& state_dir) {
  client.state_dir = state_dir;
  fs::create_directories(state_dir);

  core::AaDedupeOptions options;
  // env_secret, not env_str: the passphrase must never reach a log line
  // or report artifact.
  if (const std::string pw = telemetry::env_secret("AAD_PASSPHRASE");
      !pw.empty()) {
    options.convergent_encryption = true;
    options.passphrase = pw;
  }
  client.scheme =
      std::make_unique<core::AaDedupeScheme>(client.cloud, options);

  if (fs::exists(client.store_path())) {
    client.cloud.store().load_from_file(client.store_path().string());
  }
  if (fs::exists(client.state_path())) {
    std::ifstream in(client.state_path(), std::ios::binary);
    const std::string raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    client.scheme->import_state(as_bytes(raw));
  }
}

void save_client(const Client& client) {
  client.cloud.store().save_to_file(client.store_path().string());
  const ByteBuffer state = client.scheme->export_state();
  std::ofstream out(client.state_path(), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(state.data()),
            static_cast<std::streamsize>(state.size()));
}

int cmd_backup(const fs::path& source, const fs::path& state_dir) {
  Client client;
  open_client(client, state_dir);
  dataset::Snapshot snapshot = dataset::snapshot_from_directory(source);
  const auto sessions = client.scheme->restorable_sessions();
  snapshot.session =
      sessions.empty() ? 0 : sessions.back() + 1;

  std::printf("session %u: %zu files, %s\n", snapshot.session,
              snapshot.files.size(),
              format_bytes(snapshot.total_bytes()).c_str());
  const auto report = client.scheme->backup(snapshot);
  std::printf("shipped %s in %llu requests (DR %.2f, window %.1f s @ "
              "500 KB/s)\n",
              format_bytes(report.transferred_bytes).c_str(),
              static_cast<unsigned long long>(report.upload_requests),
              report.dedupe_ratio(), report.backup_window_seconds());
  save_client(client);
  std::printf("cloud: %s in %llu objects; monthly cost $%.4f\n",
              format_bytes(client.cloud.store().stored_bytes()).c_str(),
              static_cast<unsigned long long>(
                  client.cloud.store().object_count()),
              client.cloud.monthly_cost());
  return 0;
}

int cmd_restore(const fs::path& state_dir, const fs::path& output,
                const char* session_arg) {
  Client client;
  open_client(client, state_dir);
  const auto sessions = client.scheme->restorable_sessions();
  if (sessions.empty()) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "no sessions backed up yet");
    return 1;
  }
  const std::uint32_t session =
      session_arg ? static_cast<std::uint32_t>(std::atoi(session_arg))
                  : sessions.back();

  std::size_t restored = 0;
  std::uint64_t bytes = 0;
  // Restore every path recorded in the chosen session's recipes.
  const auto image = client.cloud.store().get(
      backup::keys::session_meta("AA-Dedupe", session, "recipes"));
  if (!image) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "session %u not found in cloud", session);
    return 1;
  }
  const auto recipes = container::RecipeStore::deserialize(*image);
  for (const std::string& path : recipes.paths()) {
    const ByteBuffer content =
        client.scheme->restore_file_at(path, session);
    const fs::path out_path = output / path;
    fs::create_directories(out_path.parent_path());
    std::ofstream out(out_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
    ++restored;
    bytes += content.size();
  }
  std::printf("restored session %u: %zu files, %s -> %s\n", session,
              restored, format_bytes(bytes).c_str(), output.c_str());
  return 0;
}

int cmd_gc(const fs::path& state_dir, const char* keep_arg) {
  Client client;
  open_client(client, state_dir);
  const auto keep = static_cast<std::uint32_t>(std::atoi(keep_arg));
  const auto report = client.scheme->collect_garbage(keep);
  save_client(client);
  std::printf("gc: kept %u sessions, expired %u; deleted %llu and rewrote "
              "%llu of %llu containers; reclaimed %s\n",
              report.sessions_retained, report.sessions_expired,
              static_cast<unsigned long long>(report.containers_deleted),
              static_cast<unsigned long long>(report.containers_rewritten),
              static_cast<unsigned long long>(report.containers_scanned),
              format_bytes(report.bytes_reclaimed).c_str());
  return 0;
}

int cmd_sessions(const fs::path& state_dir) {
  Client client;
  open_client(client, state_dir);
  for (const std::uint32_t s : client.scheme->restorable_sessions()) {
    std::printf("session %u\n", s);
  }
  return 0;
}

int cmd_stats(const fs::path& state_dir) {
  Client client;
  open_client(client, state_dir);
  std::printf("%-8s %-4s %-8s %8s %10s %8s %8s\n", "app", "chnk", "hash",
              "files", "bytes", "chunks", "index");
  for (const auto& row : client.scheme->application_stats()) {
    std::printf("%-8s %-4s %-8s %8llu %10s %8llu %8llu\n",
                row.partition.c_str(), row.chunker.c_str(), row.hash.c_str(),
                static_cast<unsigned long long>(row.session_files),
                format_bytes(row.session_bytes).c_str(),
                static_cast<unsigned long long>(row.session_chunks),
                static_cast<unsigned long long>(row.index_entries));
  }
  std::printf("cloud: %s in %llu objects\n",
              format_bytes(client.cloud.store().stored_bytes()).c_str(),
              static_cast<unsigned long long>(
                  client.cloud.store().object_count()));
  return 0;
}

int cmd_scrub(const fs::path& state_dir) {
  Client client;
  open_client(client, state_dir);
  const auto report = client.scheme->scrub();
  std::printf("scrub: %llu files, %llu chunks, %s checked\n",
              static_cast<unsigned long long>(report.files_checked),
              static_cast<unsigned long long>(report.chunks_checked),
              format_bytes(report.bytes_checked).c_str());
  if (report.clean()) {
    std::printf("backup is intact.\n");
    return 0;
  }
  std::printf("DAMAGE: %llu missing containers, %llu corrupt chunks, "
              "%llu missing keys\n",
              static_cast<unsigned long long>(report.missing_containers),
              static_cast<unsigned long long>(report.corrupt_chunks),
              static_cast<unsigned long long>(report.missing_keys));
  for (const auto& path : report.damaged_paths) {
    std::printf("  damaged: %s\n", path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session",
            "usage: %s backup <src> <state> | restore <state> <out> "
            "[session] | gc <state> <keep> | sessions|stats|scrub <state>",
            argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "backup" && argc >= 4) {
      return cmd_backup(argv[2], argv[3]);
    }
    if (command == "restore" && argc >= 4) {
      return cmd_restore(argv[2], argv[3], argc > 4 ? argv[4] : nullptr);
    }
    if (command == "gc" && argc >= 4) {
      return cmd_gc(argv[2], argv[3]);
    }
    if (command == "sessions") {
      return cmd_sessions(argv[2]);
    }
    if (command == "stats") {
      return cmd_stats(argv[2]);
    }
    if (command == "scrub") {
      return cmd_scrub(argv[2]);
    }
  } catch (const std::exception& e) {
    AAD_LOG(&telemetry::stderr_logger(), kError, "session", "error: %s",
            e.what());
    return 1;
  }
  AAD_LOG(&telemetry::stderr_logger(), kError, "session",
          "unknown command '%s'", command.c_str());
  return 2;
}
