// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Substrate for the secure-deduplication extension (the paper's stated
// future work, Section VI): chunks are encrypted with *convergent*
// encryption — the key is derived from the chunk's own content — so
// identical plaintext chunks produce identical ciphertext and
// deduplication still works across the encrypted store.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace aadedupe::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::byte, kChaChaKeySize>;
using ChaChaNonce = std::array<std::byte, kChaChaNonceSize>;

/// XOR `data` in place with the ChaCha20 keystream for (key, nonce,
/// initial_counter). Encryption and decryption are the same operation.
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteSpan data);

/// One 64-byte keystream block (RFC 8439 section 2.3) — exposed for tests.
std::array<std::byte, 64> chacha20_block(const ChaChaKey& key,
                                         const ChaChaNonce& nonce,
                                         std::uint32_t counter);

}  // namespace aadedupe::crypto
