// Convergent encryption for secure deduplication (paper Section VI's
// future work: "investigate the secure deduplication issue in cloud
// backup services").
//
// Convergent encryption derives each chunk's key from the chunk's own
// content, so equal plaintexts encrypt to equal ciphertexts and
// deduplication keeps working over the encrypted store, while the cloud
// provider never sees plaintext. The client keeps (and syncs) a KeyStore
// mapping chunk fingerprints to their content keys, wrapped under a
// passphrase-derived master key — without the passphrase the backup is
// unreadable.
//
// Inherent caveat (documented, not hidden): convergent encryption reveals
// *equality* of chunks to the store, and is brute-forceable for
// low-entropy plaintexts an attacker can guess. That is the classic
// trade-off of dedup-preserving encryption.
#pragma once

#include <map>
#include <optional>
#include <string_view>

#include "crypto/chacha20.hpp"
#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::crypto {

/// Derive a 256-bit content key from chunk plaintext (SHA-1 based
/// expansion: K = H(p) || H(H(p) || 0x01), truncated to 32 bytes).
ChaChaKey derive_content_key(ConstByteSpan plaintext);

/// Derive the master key from a passphrase (iterated SHA-1 stretching).
ChaChaKey derive_master_key(std::string_view passphrase,
                            std::uint32_t iterations = 10000);

/// Encrypt/decrypt a chunk in place with its content key (deterministic:
/// fixed zero nonce is safe because each key encrypts exactly one
/// plaintext — the plaintext it was derived from).
void convergent_encrypt(const ChaChaKey& content_key, ByteSpan chunk);
void convergent_decrypt(const ChaChaKey& content_key, ByteSpan chunk);

/// Client-side map: chunk fingerprint -> content key. Serialized with
/// every key wrapped (XOR with a ChaCha20 keystream keyed by the master
/// key and nonced by the fingerprint), so the image itself is safe to
/// sync to the cloud.
class KeyStore {
 public:
  void put(const hash::Digest& digest, const ChaChaKey& key);
  std::optional<ChaChaKey> get(const hash::Digest& digest) const;
  std::size_t size() const noexcept { return keys_.size(); }
  void clear() { keys_.clear(); }

  /// Wrapped serialization under the master key.
  ByteBuffer serialize(const ChaChaKey& master) const;

  /// Unwrap a serialized image. A wrong master key yields garbage keys —
  /// decryption of any chunk will then produce bytes whose fingerprint
  /// no longer matches, which restore verification catches.
  static KeyStore deserialize(ConstByteSpan image, const ChaChaKey& master);

 private:
  static ChaChaNonce nonce_for(const hash::Digest& digest);

  std::map<hash::Digest, ChaChaKey> keys_;
};

}  // namespace aadedupe::crypto
