#include "crypto/convergent.hpp"

#include <cstring>

#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::crypto {

ChaChaKey derive_content_key(ConstByteSpan plaintext) {
  const hash::Digest first = hash::Sha1::hash(plaintext);
  // Second half: H(H(p) || 0x01).
  hash::Sha1 h;
  h.update(first.bytes());
  const std::byte domain[1] = {std::byte{0x01}};
  h.update(ConstByteSpan{domain, 1});
  const hash::Digest second = h.finish();

  ChaChaKey key{};
  std::memcpy(key.data(), first.bytes().data(), 20);
  std::memcpy(key.data() + 20, second.bytes().data(), 12);
  return key;
}

ChaChaKey derive_master_key(std::string_view passphrase,
                            std::uint32_t iterations) {
  AAD_EXPECTS(iterations >= 1);
  // Iterated hash stretching with a fixed domain salt; not PBKDF2, but
  // the same shape (this library's threat model is the cloud provider,
  // not an offline GPU attack on weak passphrases).
  hash::Digest state = hash::Sha1::hash(as_bytes(passphrase));
  for (std::uint32_t i = 1; i < iterations; ++i) {
    hash::Sha1 h;
    h.update(state.bytes());
    h.update(as_bytes(passphrase));
    state = h.finish();
  }
  // Expand 20 -> 32 bytes with a second domain-separated hash.
  hash::Sha1 h2;
  h2.update(state.bytes());
  const std::byte domain[1] = {std::byte{0x02}};
  h2.update(ConstByteSpan{domain, 1});
  const hash::Digest tail = h2.finish();

  ChaChaKey key{};
  std::memcpy(key.data(), state.bytes().data(), 20);
  std::memcpy(key.data() + 20, tail.bytes().data(), 12);
  return key;
}

void convergent_encrypt(const ChaChaKey& content_key, ByteSpan chunk) {
  chacha20_xor(content_key, ChaChaNonce{}, /*initial_counter=*/0, chunk);
}

void convergent_decrypt(const ChaChaKey& content_key, ByteSpan chunk) {
  // Stream cipher: identical operation.
  chacha20_xor(content_key, ChaChaNonce{}, /*initial_counter=*/0, chunk);
}

void KeyStore::put(const hash::Digest& digest, const ChaChaKey& key) {
  AAD_EXPECTS(!digest.empty());
  keys_[digest] = key;
}

std::optional<ChaChaKey> KeyStore::get(const hash::Digest& digest) const {
  const auto it = keys_.find(digest);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

ChaChaNonce KeyStore::nonce_for(const hash::Digest& digest) {
  // Every real fingerprint is >= 12 bytes (Rabin-96 is the shortest).
  AAD_EXPECTS(digest.size() >= kChaChaNonceSize);
  ChaChaNonce nonce{};
  std::memcpy(nonce.data(), digest.bytes().data(), kChaChaNonceSize);
  return nonce;
}

ByteBuffer KeyStore::serialize(const ChaChaKey& master) const {
  ByteBuffer out;
  append_le32(out, static_cast<std::uint32_t>(keys_.size()));
  for (const auto& [digest, key] : keys_) {
    out.push_back(static_cast<std::byte>(digest.size()));
    append(out, digest.bytes());
    ChaChaKey wrapped = key;
    chacha20_xor(master, nonce_for(digest), 0,
                 ByteSpan{wrapped.data(), wrapped.size()});
    append(out, ConstByteSpan{wrapped.data(), wrapped.size()});
  }
  return out;
}

KeyStore KeyStore::deserialize(ConstByteSpan image, const ChaChaKey& master) {
  if (image.size() < 4) throw FormatError("keystore: missing header");
  const std::uint32_t count = load_le32(image.data());
  std::size_t pos = 4;
  KeyStore store;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos >= image.size()) throw FormatError("keystore: truncated entry");
    const auto digest_size = static_cast<std::size_t>(image[pos]);
    ++pos;
    if (digest_size < kChaChaNonceSize ||
        digest_size > hash::Digest::kMaxSize ||
        pos + digest_size + kChaChaKeySize > image.size()) {
      throw FormatError("keystore: bad entry");
    }
    const hash::Digest digest(image.subspan(pos, digest_size));
    pos += digest_size;
    ChaChaKey key{};
    std::memcpy(key.data(), image.data() + pos, kChaChaKeySize);
    pos += kChaChaKeySize;
    chacha20_xor(master, nonce_for(digest), 0,
                 ByteSpan{key.data(), key.size()});
    store.keys_.emplace(digest, key);
  }
  if (pos != image.size()) throw FormatError("keystore: trailing bytes");
  return store;
}

}  // namespace aadedupe::crypto
