#include "crypto/chacha20.hpp"

#include <cstring>

namespace aadedupe::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b,
                          std::uint32_t& c, std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void init_state(std::uint32_t state[16], const ChaChaKey& key,
                const ChaChaNonce& nonce, std::uint32_t counter) noexcept {
  // "expand 32-byte k"
  state[0] = 0x61707865u;
  state[1] = 0x3320646eu;
  state[2] = 0x79622d32u;
  state[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] =
        load_le32(key.data() + static_cast<std::size_t>(4 * i));
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] =
        load_le32(nonce.data() + static_cast<std::size_t>(4 * i));
  }
}

void block_to_bytes(const std::uint32_t working[16],
                    const std::uint32_t state[16],
                    std::byte out[64]) noexcept {
  for (int i = 0; i < 16; ++i) {
    store_le32(out + static_cast<std::size_t>(4 * i),
               working[i] + state[i]);
  }
}

void compute_block(const std::uint32_t state[16], std::byte out[64]) {
  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(working));
  for (int round = 0; round < 10; ++round) {  // 20 rounds = 10 double-rounds
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  block_to_bytes(working, state, out);
}

}  // namespace

std::array<std::byte, 64> chacha20_block(const ChaChaKey& key,
                                         const ChaChaNonce& nonce,
                                         std::uint32_t counter) {
  std::uint32_t state[16];
  init_state(state, key, nonce, counter);
  std::array<std::byte, 64> out;
  compute_block(state, out.data());
  return out;
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, ByteSpan data) {
  std::uint32_t state[16];
  init_state(state, key, nonce, initial_counter);

  std::byte keystream[64];
  std::size_t offset = 0;
  while (offset < data.size()) {
    compute_block(state, keystream);
    ++state[12];  // block counter
    const std::size_t take = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += take;
  }
}

}  // namespace aadedupe::crypto
