// Static Chunking (SC): fixed-size chunks (8 KB in all the paper's
// experiments), last chunk possibly short.
//
// Per paper Observation 3, SC matches or beats CDC on static application
// data and VM disk images (whose internal block structure is aligned), at
// a fraction of the chunking cost.
#pragma once

#include <algorithm>
#include <cstddef>

#include "chunk/chunker.hpp"
#include "util/check.hpp"

namespace aadedupe::chunk {

class StaticChunker final : public Chunker {
 public:
  static constexpr std::size_t kDefaultChunkSize = 8 * 1024;

  explicit StaticChunker(std::size_t chunk_size = kDefaultChunkSize)
      : chunk_size_(chunk_size) {
    AAD_EXPECTS(chunk_size >= 1 && chunk_size <= 0xffffffffull);
  }

  std::vector<ChunkRef> split(ConstByteSpan data) const override {
    std::vector<ChunkRef> out;
    out.reserve(data.size() / chunk_size_ + 1);
    std::uint64_t pos = 0;
    const std::uint64_t size = data.size();
    while (pos < size) {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_size_, size - pos));
      out.push_back(ChunkRef{pos, len});
      pos += len;
    }
    return out;
  }

  std::string_view name() const noexcept override { return "sc"; }

  std::size_t chunk_size() const noexcept { return chunk_size_; }

 private:
  std::size_t chunk_size_;
};

}  // namespace aadedupe::chunk
