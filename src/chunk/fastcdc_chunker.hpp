// FastCDC-style content-defined chunking (Xia et al., USENIX ATC'16) —
// a post-paper extension included for comparison with the Rabin CDC the
// paper evaluates.
//
// Differences from the classic Rabin scheme:
//  * the rolling "gear" hash is a single shift+add+table-lookup per byte
//    (no ring buffer, no removal table) — substantially cheaper;
//  * normalized chunking uses a stricter mask before the expected size
//    and a looser one after, tightening the chunk-size distribution and
//    reducing forced max-size cuts.
//
// Exposed through the same Chunker interface, so the ablation benches can
// swap it in anywhere Rabin CDC runs.
#pragma once

#include <array>
#include <cstdint>

#include "chunk/chunker.hpp"
#include "util/check.hpp"

namespace aadedupe::chunk {

struct FastCdcParams {
  /// Expected chunk size; must be a power of two.
  std::size_t expected_size = 8 * 1024;
  std::size_t min_size = 2 * 1024;
  std::size_t max_size = 16 * 1024;
  /// Normalization level: the small mask uses `expected << level` bits,
  /// the large mask `expected >> level` (level 0 = classic single mask).
  unsigned normalization = 1;

  bool valid() const noexcept {
    return expected_size >= 64 &&
           (expected_size & (expected_size - 1)) == 0 &&
           min_size >= 64 && min_size <= expected_size &&
           expected_size <= max_size && max_size <= 0xffffffffull &&
           normalization <= 4;
  }
};

class FastCdcChunker final : public Chunker {
 public:
  explicit FastCdcChunker(FastCdcParams params = {},
                          std::uint64_t gear_seed = 0x6AD2F38Cull);

  std::vector<ChunkRef> split(ConstByteSpan data) const override;

  std::string_view name() const noexcept override { return "fastcdc"; }

  const FastCdcParams& params() const noexcept { return params_; }

 private:
  FastCdcParams params_;
  std::uint64_t mask_small_;  // stricter: used before expected_size
  std::uint64_t mask_large_;  // looser: used after expected_size
  std::array<std::uint64_t, 256> gear_;
};

}  // namespace aadedupe::chunk
