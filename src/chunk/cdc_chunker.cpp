#include "chunk/cdc_chunker.hpp"

#include <algorithm>

namespace aadedupe::chunk {

namespace {
/// Capacity hint for the output vector: the expected chunk count with
/// headroom for moderately boundary-dense content, capped at the hard
/// upper bound (every cut at min_size) so short inputs reserve exactly
/// their bound and adversarial inputs trigger at most one regrowth.
std::size_t reserve_hint(std::uint64_t size, const CdcParams& params) {
  const auto hard_bound = static_cast<std::size_t>(size / params.min_size) + 1;
  const auto expected =
      static_cast<std::size_t>(size / params.expected_size) + 1;
  return std::min(hard_bound, expected * 2);
}
}  // namespace

std::vector<ChunkRef> CdcChunker::split(ConstByteSpan data) const {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  const std::uint64_t size = data.size();
  out.reserve(reserve_hint(size, params_));

  hash::RabinWindow window(table_);  // stack-only; shares the removal table
  const std::uint64_t w = params_.window_size;
  std::uint64_t start = 0;

  while (start < size) {
    const std::uint64_t remaining = size - start;
    if (remaining <= params_.min_size) {
      // No boundary may be declared before min_size bytes, so the tail is
      // one final chunk regardless of content.
      out.push_back(ChunkRef{start, static_cast<std::uint32_t>(remaining)});
      break;
    }
    // Min-skip: the fingerprint depends only on the last `w` bytes, so jump
    // straight to the first position where a cut is allowed and warm the
    // window with the preceding w-1 bytes via the slice-by-8 bulk path.
    // This skips min_size - w rolls (and their ring-buffer traffic) per
    // chunk while producing boundaries identical to split_reference().
    std::uint64_t pos = start + params_.min_size - 1;
    window.warm(data.subspan(pos - (w - 1), w - 1));
    const std::uint64_t limit =
        std::min<std::uint64_t>(start + params_.max_size, size);
    std::uint64_t cut = limit;  // default: max_size cut or end of input
    while (pos < limit) {
      const std::uint64_t fp = window.push(data[pos]);
      ++pos;
      if ((fp & mask_) == (kMagic & mask_)) {
        cut = pos;
        break;
      }
    }
    out.push_back(ChunkRef{start, static_cast<std::uint32_t>(cut - start)});
    start = cut;
  }
  return out;
}

std::vector<ChunkRef> CdcChunker::split_reference(ConstByteSpan data) const {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  out.reserve(reserve_hint(data.size(), params_));

  hash::RabinWindow window(table_);
  const std::uint64_t size = data.size();
  std::uint64_t start = 0;
  std::uint64_t pos = 0;

  while (pos < size) {
    const std::uint64_t fp = window.push(data[pos]);
    ++pos;
    const std::uint64_t len = pos - start;
    const bool at_boundary =
        len >= params_.min_size && (fp & mask_) == (kMagic & mask_);
    if (at_boundary || len >= params_.max_size || pos == size) {
      out.push_back(ChunkRef{start, static_cast<std::uint32_t>(len)});
      start = pos;
      window.reset();  // boundaries depend only on bytes since the last cut
    }
  }
  return out;
}

}  // namespace aadedupe::chunk
