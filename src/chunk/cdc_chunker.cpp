#include "chunk/cdc_chunker.hpp"

namespace aadedupe::chunk {

std::vector<ChunkRef> CdcChunker::split(ConstByteSpan data) const {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  out.reserve(data.size() / params_.expected_size + 1);

  hash::RabinWindow window = prototype_;  // fresh zero-filled window
  const std::uint64_t size = data.size();
  std::uint64_t start = 0;
  std::uint64_t pos = 0;

  while (pos < size) {
    const std::uint64_t fp = window.push(data[pos]);
    ++pos;
    const std::uint64_t len = pos - start;
    const bool at_boundary =
        len >= params_.min_size && (fp & mask_) == (kMagic & mask_);
    if (at_boundary || len >= params_.max_size || pos == size) {
      out.push_back(ChunkRef{start, static_cast<std::uint32_t>(len)});
      start = pos;
      window.reset();  // boundaries depend only on bytes since the last cut
    }
  }
  return out;
}

}  // namespace aadedupe::chunk
