#include "chunk/fastcdc_chunker.hpp"

#include "util/rng.hpp"

namespace aadedupe::chunk {

namespace {
/// Spread mask bits across the word (FastCDC uses sparse masks so the
/// gear hash's well-mixed high bits decide boundaries).
std::uint64_t spread_mask(unsigned bits) {
  // Place `bits` ones on even positions from the top.
  std::uint64_t mask = 0;
  unsigned placed = 0;
  for (unsigned pos = 63; placed < bits && pos >= 1; pos -= 2) {
    mask |= (std::uint64_t{1} << pos);
    ++placed;
  }
  return mask;
}

unsigned log2_of_power_of_two(std::size_t v) {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < v) ++bits;
  return bits;
}
}  // namespace

FastCdcChunker::FastCdcChunker(FastCdcParams params, std::uint64_t gear_seed)
    : params_(params) {
  AAD_EXPECTS(params.valid());
  const unsigned bits = log2_of_power_of_two(params.expected_size);
  mask_small_ = spread_mask(bits + params.normalization);
  mask_large_ = spread_mask(bits - params.normalization);
  // Deterministic gear table (the published variant uses random constants;
  // ours derive from a fixed seed so chunking is reproducible everywhere).
  Xoshiro256 rng(gear_seed);
  for (auto& g : gear_) g = rng.next();
}

std::vector<ChunkRef> FastCdcChunker::split(ConstByteSpan data) const {
  std::vector<ChunkRef> out;
  if (data.empty()) return out;
  out.reserve(data.size() / params_.expected_size + 1);

  const std::uint64_t size = data.size();
  std::uint64_t start = 0;
  while (start < size) {
    const std::uint64_t remaining = size - start;
    if (remaining <= params_.min_size) {
      out.push_back(ChunkRef{start, static_cast<std::uint32_t>(remaining)});
      break;
    }
    const std::uint64_t normal_point =
        std::min<std::uint64_t>(params_.expected_size, remaining);
    const std::uint64_t max_point =
        std::min<std::uint64_t>(params_.max_size, remaining);

    std::uint64_t fp = 0;
    std::uint64_t cut = max_point;  // forced cut if no boundary found
    // Skip the minimum region entirely (FastCDC's "cut-point skipping").
    std::uint64_t i = params_.min_size;
    for (; i < normal_point; ++i) {
      fp = (fp << 1) + gear_[static_cast<std::uint8_t>(data[start + i])];
      if ((fp & mask_small_) == 0) {
        cut = i + 1;
        break;
      }
    }
    if (cut == max_point) {
      for (; i < max_point; ++i) {
        fp = (fp << 1) + gear_[static_cast<std::uint8_t>(data[start + i])];
        if ((fp & mask_large_) == 0) {
          cut = i + 1;
          break;
        }
      }
    }
    out.push_back(ChunkRef{start, static_cast<std::uint32_t>(cut)});
    start += cut;
  }
  return out;
}

}  // namespace aadedupe::chunk
