#include "chunk/chunker.hpp"

namespace aadedupe::chunk {

bool is_exact_cover(const std::vector<ChunkRef>& chunks, std::uint64_t size) {
  std::uint64_t pos = 0;
  for (const ChunkRef& c : chunks) {
    if (c.offset != pos || c.length == 0) return false;
    pos += c.length;
  }
  return pos == size;
}

}  // namespace aadedupe::chunk
