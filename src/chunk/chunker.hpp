// Chunking engine interface.
//
// A Chunker partitions a file's bytes into contiguous chunks. AA-Dedupe
// selects one of three engines per application category (paper Section
// III.C): WholeFileChunker for compressed files, StaticChunker (8 KB) for
// static uncompressed files, CdcChunker (Rabin, 8 KB expected) for dynamic
// uncompressed files.
//
// Implementations are immutable after construction and safe to use from
// multiple threads concurrently.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace aadedupe::chunk {

/// A chunk's position within its file.
struct ChunkRef {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  /// Partition `data` into chunks covering it exactly, in order, with no
  /// gaps or overlaps. An empty input yields no chunks.
  virtual std::vector<ChunkRef> split(ConstByteSpan data) const = 0;

  /// Short engine name for reports ("wfc", "sc", "cdc").
  virtual std::string_view name() const noexcept = 0;
};

/// Check the split() postcondition (exact, ordered, gap-free cover).
/// Used by tests and debug assertions.
bool is_exact_cover(const std::vector<ChunkRef>& chunks, std::uint64_t size);

}  // namespace aadedupe::chunk
