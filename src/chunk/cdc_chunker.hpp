// Content-Defined Chunking (CDC) via Rabin fingerprinting.
//
// Chunk boundaries are declared where the rolling fingerprint of the last
// `window` bytes hits a fixed pattern, so boundaries move with content and
// survive insertions/deletions (the boundary-shifting problem that defeats
// SC on edited files). Parameters follow the paper's evaluation setup
// exactly: 8 KB expected, 2 KB minimum, 16 KB maximum, 48-byte sliding
// window, 1-byte step.
#pragma once

#include <memory>

#include "chunk/chunker.hpp"
#include "hash/rabin.hpp"
#include "util/check.hpp"

namespace aadedupe::chunk {

struct CdcParams {
  /// Expected chunk size; must be a power of two (it defines the mask).
  std::size_t expected_size = 8 * 1024;
  std::size_t min_size = 2 * 1024;
  std::size_t max_size = 16 * 1024;
  std::size_t window_size = 48;

  bool valid() const noexcept {
    return expected_size >= 2 && (expected_size & (expected_size - 1)) == 0 &&
           window_size >= 1 && window_size <= hash::kMaxRabinWindowSize &&
           min_size >= window_size && min_size <= expected_size &&
           expected_size <= max_size && max_size <= 0xffffffffull;
  }
};

class CdcChunker final : public Chunker {
 public:
  explicit CdcChunker(CdcParams params = {},
                      std::uint64_t poly = hash::kRabinPolyA)
      : params_(params),
        poly_(poly),
        table_(poly_, params.window_size),
        mask_(params.expected_size - 1) {
    AAD_EXPECTS(params.valid());
  }

  // table_ holds a pointer to poly_; forbid copies/moves so it can never
  // dangle. Chunkers are shared via (smart) pointers.
  CdcChunker(const CdcChunker&) = delete;
  CdcChunker& operator=(const CdcChunker&) = delete;

  /// Optimized splitter: min-size cut-point skipping plus a bulk-path
  /// window warm-up. Allocation-free apart from the returned vector.
  std::vector<ChunkRef> split(ConstByteSpan data) const override;

  /// Reference splitter: byte-at-a-time rolling from every cut (the
  /// pre-optimization algorithm). Kept so differential tests and the
  /// perf-regression harness can prove split() emits identical boundaries
  /// and quantify the speedup.
  std::vector<ChunkRef> split_reference(ConstByteSpan data) const;

  std::string_view name() const noexcept override { return "cdc"; }

  const CdcParams& params() const noexcept { return params_; }

  /// Boundary pattern. Any fixed non-zero value works; non-zero avoids
  /// declaring a boundary at every byte of long zero runs.
  static constexpr std::uint64_t kMagic = ~std::uint64_t{0};

 private:
  CdcParams params_;
  hash::RabinPoly poly_;
  hash::RabinWindowTable table_;  // immutable; shared by every split() call
  std::uint64_t mask_;
};

}  // namespace aadedupe::chunk
