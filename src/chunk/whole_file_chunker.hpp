// Whole-File Chunking (WFC): the entire file is a single chunk.
//
// Per paper Observation 1 / Table I, compressed application data (AVI, MP3,
// ISO, DMG, RAR, JPG) has essentially no sub-file redundancy, so file-level
// duplicate detection loses nothing while slashing metadata and hash cost.
#pragma once

#include "chunk/chunker.hpp"
#include "util/check.hpp"

namespace aadedupe::chunk {

class WholeFileChunker final : public Chunker {
 public:
  std::vector<ChunkRef> split(ConstByteSpan data) const override {
    if (data.empty()) return {};
    AAD_EXPECTS(data.size() <= 0xffffffffull);
    return {ChunkRef{0, static_cast<std::uint32_t>(data.size())}};
  }

  std::string_view name() const noexcept override { return "wfc"; }
};

}  // namespace aadedupe::chunk
