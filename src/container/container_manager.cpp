#include "container/container_manager.hpp"

#include "util/check.hpp"

namespace aadedupe::container {

ContainerManager::ContainerManager(ContainerIdAllocator& ids,
                                   ContainerSink sink, std::size_t capacity,
                                   bool pad_on_flush,
                                   telemetry::Telemetry* telemetry,
                                   std::string category)
    : ids_(&ids),
      sink_(std::move(sink)),
      capacity_(capacity),
      pad_on_flush_(pad_on_flush),
      telemetry_(telemetry),
      category_(std::move(category)) {
  AAD_EXPECTS(sink_ != nullptr);
  if (telemetry_ != nullptr) {
    shipped_counter_ = telemetry_->metrics.counter("container.shipped");
    bytes_counter_ = telemetry_->metrics.counter("container.bytes");
    padding_counter_ = telemetry_->metrics.counter("container.padding_bytes");
    chunk_bytes_hist_ = telemetry_->metrics.histogram("container.chunk_bytes");
  }
  open_fresh();
}

ContainerManager::~ContainerManager() {
  // Deliberately no implicit flush: an unflushed manager at destruction
  // would silently lose data, which tests must be able to detect. Schemes
  // call flush() at end of session.
}

void ContainerManager::open_fresh() {
  open_ = std::make_unique<ContainerBuilder>(ids_->allocate(), capacity_);
}

void ContainerManager::ship(bool pad) {
  telemetry::TraceSpan span(
      telemetry_ != nullptr ? &telemetry_->trace : nullptr,
      telemetry::Stage::kContainerPack, category_);
  ByteBuffer serialized = open_->seal(pad);
  const std::size_t payload = open_->payload_size();
  bytes_stored_ += serialized.size();
  bytes_counter_.add(serialized.size());
  if (pad && payload < capacity_) {
    padding_bytes_ += capacity_ - payload;
    padding_counter_.add(capacity_ - payload);
  }
  ++shipped_;
  shipped_counter_.increment();
  if (telemetry_ != nullptr) {
    AAD_LOG(&telemetry_->log, kDebug, "container_pack",
            "shipped container %llu (%s): %zu payload bytes%s",
            static_cast<unsigned long long>(open_->id()), category_.c_str(),
            payload, pad ? ", padded" : "");
  }
  sink_(open_->id(), std::move(serialized));
  open_fresh();
}

index::ChunkLocation ContainerManager::store(const hash::Digest& digest,
                                             ConstByteSpan chunk) {
  chunk_bytes_hist_.observe(chunk.size());
  if (!open_->fits(chunk.size())) {
    ship(/*pad=*/false);  // full (or chunk oversized): seal at natural size
  }
  const std::uint32_t offset = open_->add(digest, chunk);
  index::ChunkLocation loc{open_->id(), offset,
                           static_cast<std::uint32_t>(chunk.size())};
  // An at-capacity container ships immediately so its chunks become
  // durable in order.
  if (open_->payload_size() >= capacity_) {
    ship(/*pad=*/false);
  }
  return loc;
}

void ContainerManager::flush() {
  if (open_->empty()) return;
  ship(pad_on_flush_);
}

}  // namespace aadedupe::container
