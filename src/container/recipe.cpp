#include "container/recipe.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace aadedupe::container {

void RecipeStore::put(FileRecipe recipe) {
  AAD_EXPECTS(!recipe.path.empty());
  std::uint64_t total = 0;
  for (const RecipeEntry& e : recipe.entries) total += e.location.length;
  AAD_EXPECTS(total == recipe.file_size);
  recipes_[recipe.path] = std::move(recipe);
}

const FileRecipe* RecipeStore::find(const std::string& path) const {
  const auto it = recipes_.find(path);
  return it == recipes_.end() ? nullptr : &it->second;
}

std::vector<std::string> RecipeStore::paths() const {
  std::vector<std::string> out;
  out.reserve(recipes_.size());
  for (const auto& [path, recipe] : recipes_) out.push_back(path);
  return out;
}

ByteBuffer RecipeStore::serialize() const {
  ByteBuffer out;
  append_le32(out, static_cast<std::uint32_t>(recipes_.size()));
  for (const auto& [path, recipe] : recipes_) {
    append_le32(out, static_cast<std::uint32_t>(path.size()));
    append(out, as_bytes(path));
    append_le64(out, recipe.file_size);
    append_le32(out, static_cast<std::uint32_t>(recipe.tag.size()));
    append(out, as_bytes(recipe.tag));
    append_le32(out, static_cast<std::uint32_t>(recipe.entries.size()));
    for (const RecipeEntry& e : recipe.entries) {
      out.push_back(static_cast<std::byte>(e.digest.size()));
      append(out, e.digest.bytes());
      append_le64(out, e.location.container_id);
      append_le32(out, e.location.offset);
      append_le32(out, e.location.length);
    }
  }
  return out;
}

RecipeStore RecipeStore::deserialize(ConstByteSpan image) {
  RecipeStore store;
  if (image.size() < 4) throw FormatError("recipe store: missing header");
  const std::uint32_t file_count = load_le32(image.data());
  std::size_t pos = 4;
  for (std::uint32_t f = 0; f < file_count; ++f) {
    if (pos + 4 > image.size()) throw FormatError("recipe store: truncated");
    const std::uint32_t path_len = load_le32(image.data() + pos);
    pos += 4;
    if (pos + path_len + 12 > image.size()) {
      throw FormatError("recipe store: truncated path");
    }
    FileRecipe recipe;
    recipe.path = to_string(image.subspan(pos, path_len));
    pos += path_len;
    recipe.file_size = load_le64(image.data() + pos);
    pos += 8;
    const std::uint32_t tag_len = load_le32(image.data() + pos);
    pos += 4;
    if (pos + tag_len + 4 > image.size()) {
      throw FormatError("recipe store: truncated tag");
    }
    recipe.tag = to_string(image.subspan(pos, tag_len));
    pos += tag_len;
    const std::uint32_t entry_count = load_le32(image.data() + pos);
    pos += 4;
    // Bound the reservation by what could possibly fit in the image — a
    // corrupted count must not trigger a huge allocation.
    recipe.entries.reserve(
        std::min<std::size_t>(entry_count, (image.size() - pos) / 17));
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      if (pos >= image.size()) throw FormatError("recipe store: truncated entry");
      const auto digest_size = static_cast<std::size_t>(image[pos]);
      ++pos;
      if (digest_size == 0 || digest_size > hash::Digest::kMaxSize ||
          pos + digest_size + 16 > image.size()) {
        throw FormatError("recipe store: bad entry");
      }
      RecipeEntry e;
      e.digest = hash::Digest(image.subspan(pos, digest_size));
      pos += digest_size;
      e.location.container_id = load_le64(image.data() + pos);
      pos += 8;
      e.location.offset = load_le32(image.data() + pos);
      pos += 4;
      e.location.length = load_le32(image.data() + pos);
      pos += 4;
      recipe.entries.push_back(std::move(e));
    }
    // Validate here (FormatError) rather than relying on put()'s
    // precondition check — this is untrusted external data.
    std::uint64_t entry_total = 0;
    for (const RecipeEntry& e : recipe.entries) {
      entry_total += e.location.length;
    }
    if (entry_total != recipe.file_size || recipe.path.empty()) {
      throw FormatError("recipe store: inconsistent recipe for '" +
                        recipe.path + "'");
    }
    store.put(std::move(recipe));
  }
  if (pos != image.size()) throw FormatError("recipe store: trailing bytes");
  return store;
}

}  // namespace aadedupe::container
