// File recipes: the per-file metadata that maps a backed-up file to the
// cloud locations of its chunks, in order. Restore walks the recipe,
// fetches each referenced container, and reassembles the file. Recipes are
// the "metadata for the file updated to point to the location of the
// existing chunk" in the paper's architecture (Section III.A).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hash/digest.hpp"
#include "index/chunk_index.hpp"
#include "util/bytes.hpp"

namespace aadedupe::container {

struct RecipeEntry {
  hash::Digest digest;
  index::ChunkLocation location;

  friend bool operator==(const RecipeEntry&, const RecipeEntry&) = default;
};

struct FileRecipe {
  std::string path;
  std::uint64_t file_size = 0;
  /// Application tag: the index-partition key this file's chunks were
  /// deduplicated under (empty for unindexed data, e.g. tiny files).
  /// Garbage collection uses it to rebuild the application-aware index
  /// from retained recipes.
  std::string tag;
  std::vector<RecipeEntry> entries;  // in file order; sum of lengths == size

  friend bool operator==(const FileRecipe&, const FileRecipe&) = default;
};

/// Recipes for one backup session (path -> recipe). Serializable so a
/// session's full metadata can itself be shipped to the cloud.
class RecipeStore {
 public:
  /// Insert or replace the recipe for recipe.path.
  void put(FileRecipe recipe);

  [[nodiscard]] const FileRecipe* find(const std::string& path) const;

  [[nodiscard]] std::size_t size() const noexcept { return recipes_.size(); }

  /// Paths in sorted order.
  [[nodiscard]] std::vector<std::string> paths() const;

  [[nodiscard]] ByteBuffer serialize() const;

  /// Throws FormatError on malformed input.
  [[nodiscard]] static RecipeStore deserialize(ConstByteSpan image);

 private:
  std::map<std::string, FileRecipe> recipes_;
};

}  // namespace aadedupe::container
