#include "container/container.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace aadedupe::container {

namespace {
constexpr char kMagic[8] = {'A', 'A', 'D', 'C', 'O', 'N', 'T', '1'};
constexpr std::size_t kFixedHeader = 8 + 8 + 4 + 4;
}  // namespace

ContainerBuilder::ContainerBuilder(std::uint64_t container_id,
                                   std::size_t capacity)
    : id_(container_id), capacity_(capacity) {
  AAD_EXPECTS(capacity >= 1024);
  payload_.reserve(capacity);
}

bool ContainerBuilder::fits(std::size_t size) const noexcept {
  if (descriptors_.empty()) return true;  // oversized-single-chunk rule
  return payload_.size() + size <= capacity_;
}

std::uint32_t ContainerBuilder::add(const hash::Digest& digest,
                                    ConstByteSpan chunk) {
  AAD_EXPECTS(!chunk.empty());
  AAD_EXPECTS(chunk.size() <= 0xffffffffull);
  AAD_EXPECTS(fits(chunk.size()));
  const auto offset = static_cast<std::uint32_t>(payload_.size());
  descriptors_.push_back(
      ChunkDescriptor{digest, offset, static_cast<std::uint32_t>(chunk.size())});
  append(payload_, chunk);
  return offset;
}

ByteBuffer ContainerBuilder::seal(bool pad) const {
  ByteBuffer out;
  const bool oversized = payload_.size() > capacity_;
  const std::size_t padded_payload =
      (pad && !oversized) ? capacity_ : payload_.size();
  out.reserve(kFixedHeader + descriptors_.size() * 29 + padded_payload);

  append(out, ConstByteSpan{reinterpret_cast<const std::byte*>(kMagic), 8});
  append_le64(out, id_);
  append_le32(out, static_cast<std::uint32_t>(descriptors_.size()));
  append_le32(out, static_cast<std::uint32_t>(payload_.size()));
  for (const ChunkDescriptor& d : descriptors_) {
    out.push_back(static_cast<std::byte>(d.digest.size()));
    append(out, d.digest.bytes());
    append_le32(out, d.offset);
    append_le32(out, d.length);
  }
  append(out, payload_);
  out.resize(out.size() + (padded_payload - payload_.size()), std::byte{0});
  return out;
}

ContainerReader::ContainerReader(ByteBuffer serialized)
    : raw_(std::move(serialized)) {
  if (raw_.size() < kFixedHeader) {
    throw FormatError("container: truncated header");
  }
  if (std::memcmp(raw_.data(), kMagic, 8) != 0) {
    throw FormatError("container: bad magic");
  }
  id_ = load_le64(raw_.data() + 8);
  const std::uint32_t descriptor_count = load_le32(raw_.data() + 16);
  payload_size_ = load_le32(raw_.data() + 20);

  std::size_t pos = kFixedHeader;
  // Bound by what could fit (>= 9 bytes per descriptor on the wire): a
  // corrupted count must not drive a huge allocation.
  descriptors_.reserve(std::min<std::size_t>(
      descriptor_count, (raw_.size() - kFixedHeader) / 9));
  for (std::uint32_t i = 0; i < descriptor_count; ++i) {
    if (pos >= raw_.size()) throw FormatError("container: truncated descriptor");
    const auto digest_size = static_cast<std::size_t>(raw_[pos]);
    ++pos;
    if (digest_size == 0 || digest_size > hash::Digest::kMaxSize ||
        pos + digest_size + 8 > raw_.size()) {
      throw FormatError("container: bad descriptor");
    }
    ChunkDescriptor d;
    d.digest = hash::Digest(ConstByteSpan{raw_.data() + pos, digest_size});
    pos += digest_size;
    d.offset = load_le32(raw_.data() + pos);
    pos += 4;
    d.length = load_le32(raw_.data() + pos);
    pos += 4;
    descriptors_.push_back(std::move(d));
  }
  payload_begin_ = pos;
  if (payload_begin_ + payload_size_ > raw_.size()) {
    throw FormatError("container: payload overruns object");
  }
  // Validate descriptors against the payload extent up front so chunk_at
  // callers cannot be lured out of bounds by a crafted descriptor table.
  for (const ChunkDescriptor& d : descriptors_) {
    if (static_cast<std::size_t>(d.offset) + d.length > payload_size_) {
      throw FormatError("container: descriptor outside payload");
    }
  }
}

ConstByteSpan ContainerReader::chunk_at(std::uint32_t offset,
                                        std::uint32_t length) const {
  if (static_cast<std::size_t>(offset) + length > payload_size_) {
    throw FormatError("container: chunk read out of bounds");
  }
  return ConstByteSpan{raw_.data() + payload_begin_ + offset, length};
}

std::optional<ChunkDescriptor> ContainerReader::find(
    const hash::Digest& digest) const {
  for (const ChunkDescriptor& d : descriptors_) {
    if (d.digest == digest) return d;
  }
  return std::nullopt;
}

}  // namespace aadedupe::container
