// Self-describing chunk containers (paper Section III.F).
//
// Deduplication turns large sequential writes into many small random ones;
// shipping each new chunk or tiny file as its own WAN transfer would drown
// in per-request overhead and S3 request fees. AA-Dedupe therefore appends
// new data to an open per-stream container and ships the container as one
// object when it reaches a fixed size (1 MB by default), padding it out if
// it must be flushed early. A container is self-describing: a metadata
// section holds the chunk descriptors for the stored chunks, so restore
// needs nothing but the container bytes.
//
// Serialized layout (little-endian):
//   magic "AADCONT1" | container_id u64 | descriptor_count u32 |
//   payload_size u32 |
//   descriptors: { digest_size u8 | digest bytes | offset u32 | length u32 }*
//   payload bytes | zero padding (only for early-flushed fixed containers)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::container {

/// Default sealed-container size target from the paper.
inline constexpr std::size_t kDefaultCapacity = 1024 * 1024;

/// Descriptor of one chunk stored in a container.
struct ChunkDescriptor {
  hash::Digest digest;
  std::uint32_t offset = 0;  // within the payload section
  std::uint32_t length = 0;

  friend bool operator==(const ChunkDescriptor&,
                         const ChunkDescriptor&) = default;
};

/// Accumulates chunks for one container object, then serializes it.
class ContainerBuilder {
 public:
  /// `capacity` bounds the payload size; a single chunk larger than the
  /// capacity is still accepted into an *empty* builder (it becomes an
  /// oversized single-chunk container, shipped unpadded).
  explicit ContainerBuilder(std::uint64_t container_id,
                            std::size_t capacity = kDefaultCapacity);

  /// Whether `size` more payload bytes still fit.
  [[nodiscard]] bool fits(std::size_t size) const noexcept;

  /// Append a chunk; returns its payload offset.
  /// Precondition: fits(chunk.size()) || (empty() && chunk oversized).
  std::uint32_t add(const hash::Digest& digest, ConstByteSpan chunk);

  [[nodiscard]] bool empty() const noexcept { return descriptors_.empty(); }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload_.size();
  }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::vector<ChunkDescriptor>& descriptors()
      const noexcept {
    return descriptors_;
  }

  /// Serialize. With `pad` the result is padded with zeros so that the
  /// *payload section* occupies exactly `capacity` bytes (the paper pads
  /// early-flushed containers to their full size); oversized containers
  /// are never padded.
  [[nodiscard]] ByteBuffer seal(bool pad) const;

 private:
  std::uint64_t id_;
  std::size_t capacity_;
  std::vector<ChunkDescriptor> descriptors_;
  ByteBuffer payload_;
};

/// Parses a serialized container and serves chunk reads.
class ContainerReader {
 public:
  /// Throws FormatError on malformed input.
  explicit ContainerReader(ByteBuffer serialized);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<ChunkDescriptor>& descriptors()
      const noexcept {
    return descriptors_;
  }

  /// Payload bytes for a descriptor range. Throws FormatError if out of
  /// bounds.
  [[nodiscard]] ConstByteSpan chunk_at(std::uint32_t offset,
                                       std::uint32_t length) const;

  /// Find a chunk by fingerprint (linear over descriptors — containers
  /// hold at most a few hundred chunks).
  [[nodiscard]] std::optional<ChunkDescriptor> find(
      const hash::Digest& digest) const;

 private:
  ByteBuffer raw_;
  std::uint64_t id_ = 0;
  std::vector<ChunkDescriptor> descriptors_;
  std::size_t payload_begin_ = 0;
  std::size_t payload_size_ = 0;
};

}  // namespace aadedupe::container
