// Open-container management: one open container per backup stream.
//
// New chunks (and packed tiny files) are appended to the stream's open
// container; when it fills to its fixed size it is sealed and handed to the
// sink (normally the cloud uploader) as a single object, and a fresh one is
// opened. flush() pads the current container out to its full size and ships
// it — the paper's "if a container is not full but needs to be written, it
// is padded out".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "container/container.hpp"
#include "hash/digest.hpp"
#include "index/chunk_index.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace aadedupe::container {

/// Receives sealed container objects, e.g. to upload them.
using ContainerSink = std::function<void(std::uint64_t container_id,
                                         ByteBuffer serialized)>;

/// Hands out globally unique container ids. Shared by every stream's
/// manager so ids never collide across applications/streams.
class ContainerIdAllocator {
 public:
  std::uint64_t allocate() noexcept {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Next id that allocate() would hand out (state persistence).
  std::uint64_t next_id() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Restore the counter from persisted state. `next` must be beyond any
  /// id already present in the cloud, or new containers would overwrite
  /// old ones.
  void reset(std::uint64_t next) noexcept {
    next_.store(next, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> next_{1};
};

class ContainerManager {
 public:
  /// `pad_on_flush`: whether an early-flushed container is padded out to
  /// its full fixed size before shipping. The paper pads containers when
  /// writing them to the *local* container store; for cloud shipping the
  /// default is unpadded, because at this reproduction's reduced dataset
  /// scale the per-stream flush padding (streams x capacity per session)
  /// would dominate transfer volume — a pure scale artifact (at the
  /// paper's 351 GB it is ~0.04% of traffic). The padded behaviour stays
  /// available for the container ablation bench.
  /// `telemetry` (nullable) receives container counters, a new-chunk size
  /// histogram, and kContainerPack trace rows under `category` (the
  /// owning stream's partition key).
  ContainerManager(ContainerIdAllocator& ids, ContainerSink sink,
                   std::size_t capacity = kDefaultCapacity,
                   bool pad_on_flush = false,
                   telemetry::Telemetry* telemetry = nullptr,
                   std::string category = {});
  ~ContainerManager();

  ContainerManager(const ContainerManager&) = delete;
  ContainerManager& operator=(const ContainerManager&) = delete;

  /// Append a chunk to the open container, sealing/shipping it first if the
  /// chunk does not fit. Returns where the chunk will live in the cloud.
  index::ChunkLocation store(const hash::Digest& digest, ConstByteSpan chunk);

  /// Seal and ship the open container even if not full (padded). No-op when
  /// the open container is empty.
  void flush();

  std::uint64_t containers_shipped() const noexcept { return shipped_; }
  std::uint64_t bytes_stored() const noexcept { return bytes_stored_; }
  std::uint64_t padding_bytes() const noexcept { return padding_bytes_; }

 private:
  void open_fresh();
  void ship(bool pad);

  ContainerIdAllocator* ids_;
  ContainerSink sink_;
  std::size_t capacity_;
  bool pad_on_flush_;
  telemetry::Telemetry* telemetry_;
  std::string category_;
  telemetry::Counter shipped_counter_;
  telemetry::Counter bytes_counter_;
  telemetry::Counter padding_counter_;
  telemetry::Histogram chunk_bytes_hist_;
  std::unique_ptr<ContainerBuilder> open_;
  std::uint64_t shipped_ = 0;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t padding_bytes_ = 0;
};

}  // namespace aadedupe::container
