// Wall-clock and CPU-time measurement used by the throughput/energy models.
#pragma once

#include <chrono>
#include <ctime>

namespace aadedupe {

/// Monotonic wall-clock stopwatch.
class StopWatch {
 public:
  StopWatch() noexcept { reset(); }

  void reset() noexcept { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU time in seconds (user + system). Feeds the energy model:
/// active energy is charged per CPU-second actually burned.
[[nodiscard]] inline double process_cpu_seconds() noexcept {
  std::timespec ts{};
  if (::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Calling thread's CPU time in seconds.
[[nodiscard]] inline double thread_cpu_seconds() noexcept {
  std::timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace aadedupe
