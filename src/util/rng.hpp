// Deterministic, fast pseudo-random generators for synthetic data.
//
// Everything the dataset generator emits must be reproducible from a seed,
// across platforms and standard-library versions, so we implement the
// generators ourselves instead of using <random> distributions (whose
// outputs are not portable).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"
#include "util/check.hpp"

namespace aadedupe {

/// SplitMix64 — tiny, high-quality 64-bit mixer. Used to seed Xoshiro and
/// to derive independent child seeds from a parent seed + stream id.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a child seed that is statistically independent of the parent for
/// distinct stream ids (hash of the pair via SplitMix64 mixing).
inline std::uint64_t derive_seed(std::uint64_t parent,
                                 std::uint64_t stream) noexcept {
  SplitMix64 mix(parent ^ (0x9e3779b97f4a7c15ull * (stream + 1)));
  mix.next();
  return mix.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mix(seed);
    for (auto& s : state_) s = mix.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. The modulo bias
  /// (< bound/2^64) is irrelevant for synthetic-data generation.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple & portable).
  double normal() noexcept;

  /// Log-normal sample with the given mu/sigma of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Fill a byte range with pseudo-random data.
  void fill(ByteSpan out) noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace aadedupe
