#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace aadedupe {

ThreadPool::ThreadPool(std::size_t threads) {
  AAD_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (count == 0) return;
  // Chunk the index space so tiny iterations don't pay per-task overhead;
  // an explicit grain overrides the heuristic (grain 1 = steal one index
  // at a time). One task per worker then drains the shared counter.
  const std::size_t chunks =
      grain == 0 ? std::min(count, thread_count() * 4)
                 : std::min((count + grain - 1) / grain, thread_count());
  const std::size_t per = grain == 0 ? (count + chunks - 1) / chunks : grain;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, per, count] {
      for (;;) {
        const std::size_t begin = next.fetch_add(per);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + per, count);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (const std::exception& e) {
            std::lock_guard lock(error_mutex);
            if (!first_error) {
              first_error = std::current_exception();
              // First failure only: give the flight recorder (or any other
              // installed hook) the worker's last words before the
              // exception is rethrown on the caller's thread.
              detail::notify_failure("worker_exception", e.what());
            }
            return;
          } catch (...) {
            std::lock_guard lock(error_mutex);
            if (!first_error) {
              first_error = std::current_exception();
              detail::notify_failure("worker_exception", "unknown exception");
            }
            return;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace aadedupe
