// Byte-size literals and human-readable formatting helpers.
#pragma once

#include <cstdint>
#include <string>

namespace aadedupe {

constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ull;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

/// "12.3 MiB"-style rendering for reports.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// "1.23 MB/s"-style rendering for reports.
[[nodiscard]] std::string format_rate(double bytes_per_second);

}  // namespace aadedupe
