// Lightweight precondition / invariant checks in the spirit of the C++
// Core Guidelines Expects()/Ensures(). Violations throw, carrying the
// failing expression and location, so tests can assert on misuse and
// production code fails loudly instead of corrupting data.
#pragma once

#include <stdexcept>
#include <string>

namespace aadedupe {

/// Thrown when a precondition (caller bug) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant (library bug or corrupted state) fails.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when externally-sourced data (disk/wire format) is malformed.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* expr, const char* file,
                                      int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr +
                          " at " + file + ":" + std::to_string(line));
}
[[noreturn]] inline void fail_ensures(const char* expr, const char* file,
                                      int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace aadedupe

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define AAD_EXPECTS(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::aadedupe::detail::fail_expects(#cond, __FILE__, __LINE__); \
    }                                                              \
  } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define AAD_ENSURES(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::aadedupe::detail::fail_ensures(#cond, __FILE__, __LINE__); \
    }                                                              \
  } while (false)
