// Lightweight precondition / invariant checks in the spirit of the C++
// Core Guidelines Expects()/Ensures(). Violations throw, carrying the
// failing expression and location, so tests can assert on misuse and
// production code fails loudly instead of corrupting data.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace aadedupe {

/// Thrown when a precondition (caller bug) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant (library bug or corrupted state) fails.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when externally-sourced data (disk/wire format) is malformed.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Observability hook invoked (before the throw) on every check failure,
/// and by other last-gasp paths (worker-thread exceptions). `kind` is a
/// short machine tag ("invariant", "worker_exception", ...), `what` the
/// human message. The hook must not throw; it typically dumps the
/// telemetry flight recorder (see telemetry/flight_recorder.hpp, which
/// installs itself here via install_global_flight_recorder). This header
/// only holds the function pointer so util stays dependency-free.
using FailureHook = void (*)(const char* kind, const char* what) noexcept;

namespace detail {
inline std::atomic<FailureHook>& failure_hook_slot() noexcept {
  static std::atomic<FailureHook> hook{nullptr};
  return hook;
}

inline void notify_failure(const char* kind, const char* what) noexcept {
  if (FailureHook hook =
          failure_hook_slot().load(std::memory_order_acquire)) {
    hook(kind, what);
  }
}

[[noreturn]] inline void fail_expects(const char* expr, const char* file,
                                      int line) {
  const std::string message = std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line);
  notify_failure("precondition", message.c_str());
  throw PreconditionError(message);
}
[[noreturn]] inline void fail_ensures(const char* expr, const char* file,
                                      int line) {
  const std::string message = std::string("invariant failed: ") + expr +
                              " at " + file + ":" + std::to_string(line);
  notify_failure("invariant", message.c_str());
  throw InvariantError(message);
}
}  // namespace detail

/// Install (or with nullptr, clear) the process-global failure hook.
inline void set_failure_hook(FailureHook hook) noexcept {
  detail::failure_hook_slot().store(hook, std::memory_order_release);
}

}  // namespace aadedupe

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define AAD_EXPECTS(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::aadedupe::detail::fail_expects(#cond, __FILE__, __LINE__); \
    }                                                              \
  } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define AAD_ENSURES(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::aadedupe::detail::fail_ensures(#cond, __FILE__, __LINE__); \
    }                                                              \
  } while (false)
