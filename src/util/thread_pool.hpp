// Fixed-size thread pool with futures and a blocking parallel_for.
//
// The pool backs (a) the application-aware index's concurrent shard lookups
// and (b) the per-application parallel deduplication streams that
// Observation 2 of the paper makes safe (no cross-application sharing).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace aadedupe {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submit a callable; returns a future for its result. Exceptions thrown
  /// by the callable propagate through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      AAD_EXPECTS(!stopping_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, count) across the pool; blocks until all done.
  /// Rethrows the first exception raised by any invocation.
  ///
  /// `grain` is the work-stealing granularity: how many consecutive
  /// indexes a worker claims per steal. 0 (the default) picks a coarse
  /// heuristic suited to uniform cheap iterations; pass 1 when iteration
  /// costs vary wildly (e.g. one task per file of very different sizes) so
  /// a single expensive index cannot strand a batch of work behind it.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  static std::size_t default_thread_count() noexcept {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 4 : hc;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace aadedupe
