// Bounded multi-producer / multi-consumer blocking queue.
//
// This is the backpressure primitive of the deduplication pipeline: each
// stage pulls work items from its input queue and pushes results downstream;
// a full queue blocks the producer so a slow stage (e.g. the WAN uploader)
// throttles the whole pipeline instead of buffering unbounded memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace aadedupe {

template <typename T>
class BoundedQueue {
 public:
  /// capacity must be >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    AAD_EXPECTS(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false (and drops the
  /// item) if the queue has been closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only after close() once all items are consumed.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (queue may still be open).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: producers' pushes fail, consumers drain then get
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aadedupe
