// Byte-buffer primitives shared by every subsystem.
//
// The whole library moves raw data around as `std::byte` ranges: owning
// buffers are `ByteBuffer` (a vector), non-owning views are `ConstByteSpan`
// / `ByteSpan`. Helpers here cover the conversions and the little/big-endian
// integer packing used by the on-disk/on-wire formats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aadedupe {

using ByteBuffer = std::vector<std::byte>;
using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// View a string's characters as bytes (no copy).
[[nodiscard]] inline ConstByteSpan as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Copy a string into an owning byte buffer.
// memcpy requires non-null pointers even for n == 0, and both an empty
// string_view's data() and an empty vector's data() may be null.
[[nodiscard]] inline ByteBuffer to_buffer(std::string_view s) {
  ByteBuffer out(s.size());
  if (!s.empty()) std::memcpy(out.data(), s.data(), s.size());
  return out;
}

/// Copy a byte span into a std::string (useful for tests and hex dumps).
[[nodiscard]] inline std::string to_string(ConstByteSpan bytes) {
  if (bytes.empty()) return {};
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Lower-case hex encoding of a byte range.
[[nodiscard]] std::string to_hex(ConstByteSpan bytes);

/// Parse a hex string (must have even length, [0-9a-fA-F] only).
/// Throws FormatError on malformed input.
[[nodiscard]] ByteBuffer from_hex(std::string_view hex);

// ---- Fixed-width little-endian packing (on-disk/on-wire formats). ----

inline void store_le32(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xffu);
  p[1] = static_cast<std::byte>((v >> 8) & 0xffu);
  p[2] = static_cast<std::byte>((v >> 16) & 0xffu);
  p[3] = static_cast<std::byte>((v >> 24) & 0xffu);
}

inline void store_le64(std::byte* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v & 0xffffffffu));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint32_t load_le32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] inline std::uint64_t load_le64(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_le32(p)) |
         (static_cast<std::uint64_t>(load_le32(p + 4)) << 32);
}

/// Append raw bytes to a growing buffer.
// resize+memcpy rather than vector::insert: the insert path trips GCC 12's
// -Wstringop-overflow false positive at -O3 when inlined into callers.
inline void append(ByteBuffer& out, ConstByteSpan bytes) {
  if (bytes.empty()) return;
  const std::size_t pos = out.size();
  out.resize(pos + bytes.size());
  std::memcpy(out.data() + pos, bytes.data(), bytes.size());
}

/// Append a little-endian u32 to a growing buffer.
inline void append_le32(ByteBuffer& out, std::uint32_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + 4);
  store_le32(out.data() + pos, v);
}

/// Append a little-endian u64 to a growing buffer.
inline void append_le64(ByteBuffer& out, std::uint64_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + 8);
  store_le64(out.data() + pos, v);
}

}  // namespace aadedupe
