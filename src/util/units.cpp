#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace aadedupe {

namespace {
std::string format_scaled(double value, const char* const* units,
                          std::size_t unit_count, double base) {
  std::size_t u = 0;
  while (value >= base && u + 1 < unit_count) {
    value /= base;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), value < 10 ? "%.2f %s" : "%.1f %s", value,
                units[u]);
  return buf;
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  return format_scaled(static_cast<double>(bytes), kUnits.data(),
                       kUnits.size(), 1024.0);
}

std::string format_rate(double bytes_per_second) {
  static constexpr std::array<const char*, 4> kUnits = {"B/s", "KB/s", "MB/s",
                                                        "GB/s"};
  return format_scaled(bytes_per_second, kUnits.data(), kUnits.size(),
                       1000.0);
}

}  // namespace aadedupe
