// Simulated clock for WAN-transfer and backup-window accounting.
//
// The evaluation reproduces the paper's 500 KB/s-uplink regime without a
// real network: data-transfer durations are *computed* from byte counts and
// advanced on this clock, while deduplication compute time is *measured*
// for real on the host. The backup window combines both via the paper's
// pipelined-overlap formula.
#pragma once

#include <algorithm>

#include "util/check.hpp"

namespace aadedupe {

class SimClock {
 public:
  /// Current simulated time in seconds since construction.
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// Advance the clock by `seconds` (>= 0).
  void advance(double seconds) {
    AAD_EXPECTS(seconds >= 0.0);
    now_s_ += seconds;
  }

  /// Advance the clock to at least `time_s` (no-op if already past).
  void advance_to(double time_s) { now_s_ = std::max(now_s_, time_s); }

  void reset() noexcept { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace aadedupe
