#include "util/rng.hpp"

#include <cmath>

namespace aadedupe {

double Xoshiro256::normal() noexcept {
  // Box–Muller; discard the second value to keep the generator stateless
  // with respect to distribution calls (simpler reproducibility story).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return r * std::cos(kTwoPi * u2);
}

double Xoshiro256::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

void Xoshiro256::fill(ByteSpan out) noexcept {
  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i + 8 <= n) {
    const std::uint64_t v = next();
    store_le64(out.data() + i, v);
    i += 8;
  }
  if (i < n) {
    std::uint64_t v = next();
    while (i < n) {
      out[i++] = static_cast<std::byte>(v & 0xff);
      v >>= 8;
    }
  }
}

}  // namespace aadedupe
