#include "util/bytes.hpp"

#include "util/check.hpp"

namespace aadedupe {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw FormatError("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(ConstByteSpan bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::byte b : bytes) {
    const auto v = static_cast<unsigned>(b);
    out.push_back(kHexDigits[v >> 4]);
    out.push_back(kHexDigits[v & 0xf]);
  }
  return out;
}

ByteBuffer from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw FormatError("from_hex: odd-length input");
  }
  ByteBuffer out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    out[i] = static_cast<std::byte>((hi << 4) | lo);
  }
  return out;
}

}  // namespace aadedupe
