#include "telemetry/trace_export.hpp"

#include <cstdio>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

void TraceExporter::attach(Tracer& tracer) {
  tracer.set_span_sink([this](const SpanEvent& event) { add_span(event); });
}

void TraceExporter::add_span(const SpanEvent& event) {
  std::lock_guard lock(mutex_);
  spans_.push_back(SpanRecord{event.stage, std::string(event.category),
                              event.start_s, event.wall_s, event.self_s,
                              event.sim_s, event.thread});
}

void TraceExporter::add_counter(std::string_view name, double t_s,
                                double value) {
  std::lock_guard lock(mutex_);
  counters_.push_back(CounterRecord{std::string(name), t_s, value});
}

std::size_t TraceExporter::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::size_t TraceExporter::counter_count() const {
  std::lock_guard lock(mutex_);
  return counters_.size();
}

void TraceExporter::fill_json(JsonValue& out) const {
  std::lock_guard lock(mutex_);
  JsonValue& events = out["traceEvents"].make_array();
  // Chrome-trace tids are best kept small and dense; assign an ordinal
  // per hashed thread id in order of first appearance (deterministic for
  // a deterministic span stream) and keep the original hash in an "M"
  // metadata event so traces can be matched with log/flight output.
  std::map<std::uint32_t, std::uint64_t> tid_by_thread;
  for (const SpanRecord& span : spans_) {
    if (tid_by_thread.count(span.thread) != 0) continue;
    const std::uint64_t tid = tid_by_thread.size() + 1;
    tid_by_thread[span.thread] = tid;
    JsonValue& meta = events.push_back(JsonValue{});
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = std::uint64_t{1};
    meta["tid"] = tid;
    char label[32];
    std::snprintf(label, sizeof label, "thread %04x", span.thread);
    meta["args"]["name"] = label;
  }
  for (const SpanRecord& span : spans_) {
    JsonValue& event = events.push_back(JsonValue{});
    event["name"] = to_string(span.stage);
    event["cat"] = span.category.empty() ? std::string("span")
                                         : span.category;
    event["ph"] = "X";
    event["ts"] = span.start_s * 1e6;   // microseconds
    event["dur"] = span.wall_s * 1e6;
    event["pid"] = std::uint64_t{1};
    event["tid"] = tid_by_thread[span.thread];
    event["args"]["self_s"] = span.self_s;
    event["args"]["sim_s"] = span.sim_s;
  }
  for (const CounterRecord& counter : counters_) {
    JsonValue& event = events.push_back(JsonValue{});
    event["name"] = counter.name;
    event["ph"] = "C";
    event["ts"] = counter.t_s * 1e6;
    event["pid"] = std::uint64_t{1};
    event["args"][counter.name] = counter.value;
  }
  out["displayTimeUnit"] = "ms";
}

void TraceExporter::write_file(const std::string& path) const {
  JsonValue doc;
  fill_json(doc);
  const std::string text = doc.dump(0);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw FormatError("trace_export: cannot open " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !newline_ok || !close_ok) {
    throw FormatError("trace_export: short write to " + path);
  }
}

}  // namespace aadedupe::telemetry
