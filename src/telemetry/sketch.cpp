#include "telemetry/sketch.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy) {
  AAD_EXPECTS(relative_accuracy > 0.0 && relative_accuracy < 1.0);
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::int32_t QuantileSketch::bucket_index(double value) const {
  // ceil(log_gamma(v)): the smallest i with gamma^i >= v, i.e. the bucket
  // whose value range (gamma^(i-1), gamma^i] contains v.
  return static_cast<std::int32_t>(std::ceil(std::log(value) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint of (gamma^(i-1), gamma^i] in the relative sense:
  // 2*gamma^i/(gamma+1) is within alpha of every value in the range.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value < kMinIndexable) {
    ++zero_count_;
    return;
  }
  ++buckets_[bucket_index(value)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  AAD_EXPECTS(alpha_ == other.alpha_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double QuantileSketch::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  if (clamped <= 0.0) return min();
  if (clamped >= 1.0) return max();
  // Rank of the target order statistic, 1-based.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  if (rank <= zero_count_) return std::clamp(0.0, min(), max());
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, n] : buckets_) {
    cumulative += n;
    if (cumulative >= rank) {
      return std::clamp(bucket_value(index), min(), max());
    }
  }
  return max();
}

bool QuantileSketch::same_distribution(const QuantileSketch& other) const {
  return alpha_ == other.alpha_ && count_ == other.count_ &&
         zero_count_ == other.zero_count_ && buckets_ == other.buckets_;
}

void QuantileSketch::fill_json(JsonValue& out) const {
  out.make_object();
  out["alpha"] = alpha_;
  out["count"] = count_;
  out["sum"] = sum_;
  out["min"] = min();
  out["max"] = max();
  out["mean"] = mean();
  out["p50"] = quantile(0.50);
  out["p90"] = quantile(0.90);
  out["p95"] = quantile(0.95);
  out["p99"] = quantile(0.99);
  out["zeros"] = zero_count_;
  JsonValue& idx = out["idx"].make_array();
  JsonValue& cnt = out["cnt"].make_array();
  for (const auto& [index, n] : buckets_) {
    idx.push_back(static_cast<std::int64_t>(index));
    cnt.push_back(n);
  }
}

}  // namespace aadedupe::telemetry
