#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

std::string_view to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kLog:
      return "log";
    case FlightEventKind::kSpanOpen:
      return "span_open";
    case FlightEventKind::kSpanClose:
      return "span_close";
    case FlightEventKind::kTrigger:
      return "trigger";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t next_recorder_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t this_thread_tag() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu;
}

FlightRecorder::Clock make_steady_clock() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

// Pack a string into a word array, one relaxed atomic store per word.
template <std::size_t Words>
void store_words(std::array<std::atomic<std::uint64_t>, Words>& out,
                 std::string_view text) noexcept {
  for (std::size_t w = 0; w < Words; ++w) {
    std::uint64_t word = 0;
    const std::size_t base = w * 8;
    if (base < text.size()) {
      char bytes[8] = {};
      std::memcpy(bytes, text.data() + base,
                  std::min<std::size_t>(8, text.size() - base));
      std::memcpy(&word, bytes, 8);
    }
    out[w].store(word, std::memory_order_relaxed);
  }
}

template <std::size_t Words>
std::string load_words(
    const std::array<std::atomic<std::uint64_t>, Words>& in,
    std::size_t length) noexcept {
  char bytes[Words * 8];
  for (std::size_t w = 0; w < Words; ++w) {
    const std::uint64_t word = in[w].load(std::memory_order_relaxed);
    std::memcpy(bytes + w * 8, &word, 8);
  }
  return std::string(bytes, std::min(length, sizeof bytes));
}

std::uint64_t pack_meta(FlightEventKind kind, LogLevel level,
                        std::size_t cat_len, std::size_t msg_len) noexcept {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(level) << 8) |
         (static_cast<std::uint64_t>(cat_len & 0xff) << 16) |
         (static_cast<std::uint64_t>(msg_len & 0xff) << 24);
}

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t per_thread_capacity)
    : capacity_(round_up_pow2(std::max<std::size_t>(per_thread_capacity, 8))),
      id_(next_recorder_id()),
      clock_(make_steady_clock()) {}

FlightRecorder::~FlightRecorder() {
  // Guard against a recorder dying while still installed globally: a later
  // check failure would call through a dangling pointer.
  if (global_flight_recorder() == this) {
    install_global_flight_recorder(nullptr);
  }
}

void FlightRecorder::set_clock(Clock clock) {
  AAD_EXPECTS(clock != nullptr);
  std::lock_guard lock(mutex_);
  clock_ = std::move(clock);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard lock(mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard lock(mutex_);
  return dump_path_;
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  // Same thread-shard pattern as Tracer/MetricsRegistry: a thread_local
  // cache keyed by the recorder's process-unique id, so each (thread,
  // recorder) pair pays the registration mutex exactly once.
  struct CacheEntry {
    std::uint64_t id = 0;
    Ring* ring = nullptr;
  };
  thread_local CacheEntry cache;
  if (cache.id == id_ && cache.ring != nullptr) return *cache.ring;
  std::lock_guard lock(mutex_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  rings_.back()->thread_tag = this_thread_tag();
  cache = CacheEntry{id_, rings_.back().get()};
  return *cache.ring;
}

void FlightRecorder::record(FlightEventKind kind, LogLevel level, double t_s,
                            std::string_view category,
                            std::string_view message) noexcept {
  category = category.substr(0, kCategoryBytes);
  message = message.substr(0, kMessageBytes);
  Ring& ring = local_ring();
  const std::uint64_t index = ring.cursor.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[index & (capacity_ - 1)];
  // Seqlock write: odd marks the slot torn, even = 2*index+2 marks it as
  // holding generation `index` intact. One writer per ring (it is
  // thread-local), so plain store ordering suffices on the writer side.
  slot.seq.store(2 * index + 1, std::memory_order_release);
  slot.time_bits.store(double_bits(t_s), std::memory_order_relaxed);
  slot.meta.store(pack_meta(kind, level, category.size(), message.size()),
                  std::memory_order_relaxed);
  store_words(slot.category, category);
  store_words(slot.message, message);
  slot.seq.store(2 * index + 2, std::memory_order_release);
  ring.cursor.store(index + 1, std::memory_order_release);
}

void FlightRecorder::trigger(std::string_view reason,
                             std::string_view detail) noexcept {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  std::string path;
  double t_s = 0.0;
  {
    std::lock_guard lock(mutex_);
    t_s = clock_ ? clock_() : 0.0;
    trigger_log_.push_back(
        TriggerRecord{t_s, std::string(reason), std::string(detail)});
    path = dump_path_;
  }
  record(FlightEventKind::kTrigger, LogLevel::kError, t_s, reason, detail);
  if (!path.empty()) {
    dump_to_file(path);
  }
}

void FlightRecorder::snapshot_ring(const Ring& ring, JsonValue& out) const {
  out["thread"] = ring.thread_tag;
  JsonValue& events = out["events"].make_array();
  const std::uint64_t cursor = ring.cursor.load(std::memory_order_acquire);
  const std::uint64_t count =
      std::min<std::uint64_t>(cursor, static_cast<std::uint64_t>(capacity_));
  for (std::uint64_t i = cursor - count; i < cursor; ++i) {
    const Slot& slot = ring.slots[i & (capacity_ - 1)];
    // Seqlock read: accept only slots stably holding generation `i`; a
    // concurrent writer re-marks seq odd first, so re-checking after the
    // payload reads rejects torn data. Skipped slots simply drop out of
    // the artifact — the dump is best-effort by design.
    const std::uint64_t expected = 2 * i + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
    const double t_s =
        bits_double(slot.time_bits.load(std::memory_order_relaxed));
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const std::string category =
        load_words(slot.category, (meta >> 16) & 0xff);
    const std::string message = load_words(slot.message, (meta >> 24) & 0xff);
#ifdef AAD_TSAN
    // GCC's TSan does not instrument atomic_thread_fence and rejects it
    // outright under -Werror=tsan. Every slot field is individually
    // atomic, so the TSan build substitutes an acquire re-check: formally
    // weaker ordering for the generation test, but race-free either way,
    // and the stress test still validates payload integrity.
    if (slot.seq.load(std::memory_order_acquire) != expected) continue;
#else
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expected) continue;
#endif
    JsonValue& event = events.push_back(JsonValue{});
    event["t_s"] = t_s;
    event["kind"] =
        to_string(static_cast<FlightEventKind>(meta & 0xff));
    event["level"] = to_string(static_cast<LogLevel>((meta >> 8) & 0xff));
    event["category"] = category;
    event["message"] = message;
  }
}

void FlightRecorder::fill_json(JsonValue& out) const {
  out["schema"] = "aadedupe-flight/v1";
  out["capacity_per_thread"] = static_cast<std::uint64_t>(capacity_);
  JsonValue& triggers = out["triggers"].make_array();
  JsonValue& threads = out["threads"].make_array();
  std::lock_guard lock(mutex_);
  for (const TriggerRecord& trig : trigger_log_) {
    JsonValue& entry = triggers.push_back(JsonValue{});
    entry["t_s"] = trig.t_s;
    entry["reason"] = trig.reason;
    entry["detail"] = trig.detail;
  }
  for (const auto& ring : rings_) {
    snapshot_ring(*ring, threads.push_back(JsonValue{}));
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const noexcept {
  try {
    JsonValue doc;
    fill_json(doc);
    const std::string text = doc.dump(2);
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
    const bool newline_ok = std::fputc('\n', file) != EOF;
    const bool close_ok = std::fclose(file) == 0;
    return written == text.size() && newline_ok && close_ok;
    // This IS the flight-recorder dump path: triggering from here would
    // recurse, and the bool return is the evidence the caller logs.
  } catch (...) {  // aad-analyzer-ignore(exception-discipline)
    return false;
  }
}

std::size_t FlightRecorder::thread_count() const {
  std::lock_guard lock(mutex_);
  return rings_.size();
}

namespace {

std::atomic<FlightRecorder*>& global_recorder_slot() noexcept {
  static std::atomic<FlightRecorder*> slot{nullptr};
  return slot;
}

void global_failure_hook(const char* kind, const char* what) noexcept {
  if (FlightRecorder* recorder =
          global_recorder_slot().load(std::memory_order_acquire)) {
    recorder->trigger(kind != nullptr ? kind : "failure",
                      what != nullptr ? what : "");
  }
}

}  // namespace

void install_global_flight_recorder(FlightRecorder* recorder) noexcept {
  global_recorder_slot().store(recorder, std::memory_order_release);
  set_failure_hook(recorder != nullptr ? &global_failure_hook : nullptr);
}

FlightRecorder* global_flight_recorder() noexcept {
  return global_recorder_slot().load(std::memory_order_acquire);
}

}  // namespace aadedupe::telemetry
