// OpsServer — the embedded introspection endpoint behind AAD_OPS_PORT.
//
// A deliberately small HTTP/1.0 server: one listener thread, loopback
// bind by default, one request handled at a time, bounded request
// parsing, and socket timeouts on both directions — a debugging port,
// not a web server. It exists so a live fleet run is not a black box:
// the artifacts the Observability wrapper writes *after* a run
// (/metrics exposition, the run report, flight dumps) are all available
// *during* it, plus the HealthMonitor's live verdict.
//
// Endpoints (all GET; anything else is 404/405):
//   /         tiny index listing the endpoints
//   /metrics  Prometheus text exposition of the live registry
//   /varz     JSON snapshot of the in-progress run report
//   /healthz  aggregated health verdict (200 ok / 503 degraded)
//   /tracez   most recent completed spans per stage
//   /flightz  on-demand flight-recorder dump (no file written)
//
// Isolation from the data path: handlers run on the listener thread
// only and read through the same snapshot interfaces every artifact
// writer uses (MetricsRegistry::snapshot, seqlock flight rings, atomic
// health state) — a curl can never block a worker, and an idle server
// costs the pipeline nothing but the port. The accept loop's poll
// timeout doubles as the watchdog tick, so stall detection needs no
// extra thread.
//
// This file is the one sanctioned home for raw socket(2) use
// (tools/lint.py no-raw-socket); tests and tools talk to the server
// through ops_http_get() below.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace aadedupe::telemetry {

class HealthMonitor;
struct Telemetry;

struct OpsServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port (read it via port()).
  std::uint16_t port = 0;
  /// Loopback by default — the ops plane is a local debugging surface,
  /// never an exposed service.
  std::string bind_address = "127.0.0.1";
  /// Per-socket receive/send timeout: a stuck client cannot hold the
  /// listener hostage for longer than this.
  double io_timeout_s = 2.0;
  /// Request-line bound; longer requests are rejected with 431.
  std::size_t max_request_bytes = 4096;
  /// Accept-poll timeout — also the tick() cadence (watchdog heartbeat).
  double tick_interval_s = 0.25;
};

struct OpsResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class OpsServer {
 public:
  using Handler = std::function<OpsResponse()>;

  explicit OpsServer(OpsServerOptions options = {});
  ~OpsServer();  // stops if running

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Route an exact path to a handler (replaces any previous handler).
  /// Handlers run on the listener thread; an exception becomes a 500.
  void set_handler(std::string path, Handler handler);

  /// Invoked roughly every tick_interval_s on the listener thread while
  /// the server runs — the HealthMonitor watchdog hook.
  void set_tick(std::function<void()> tick);

  /// Install the five standard endpoints against `telemetry`:
  /// /metrics, /varz, /healthz, /tracez, /flightz (and /). `varz_fill`,
  /// when set, adds layer sections to the /varz run report (same shape
  /// as Observability::finish's fill callback — takes the report root).
  /// When telemetry.health is attached, also wires the watchdog tick.
  void wire_telemetry(Telemetry& telemetry,
                      std::function<std::string()> varz = {});

  /// Bind + listen + start the listener thread. Throws FormatError when
  /// the port cannot be bound. Idempotent once running.
  void start();
  /// Stop the listener and close the socket (idempotent).
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (resolves port 0 to the ephemeral pick); 0 before
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void listen_loop();
  void serve_client(int client_fd);
  [[nodiscard]] OpsResponse dispatch(std::string_view method,
                                     std::string_view path);

  OpsServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::thread listener_;

  mutable std::mutex mutex_;  // guards handlers_ and tick_
  std::map<std::string, Handler, std::less<>> handlers_;
  std::function<void()> tick_;
};

/// Minimal loopback HTTP GET for tests and tools — the sanctioned way to
/// talk to an OpsServer without raw sockets at the call site. Returns
/// status 0 with an error message in `body` when the connection fails.
struct OpsHttpResult {
  int status = 0;
  std::string content_type;
  std::string body;
};
[[nodiscard]] OpsHttpResult ops_http_get(std::uint16_t port,
                                         const std::string& path,
                                         double timeout_s = 5.0);

/// Send a raw HTTP request verbatim (tests exercising the server's
/// error paths: non-GET methods, oversized request lines). ops_http_get
/// is this with a well-formed GET.
[[nodiscard]] OpsHttpResult ops_http_request(std::uint16_t port,
                                             const std::string& request,
                                             double timeout_s = 5.0);

}  // namespace aadedupe::telemetry
