// Chrome-trace / Perfetto export of the span event stream.
//
// A TraceExporter subscribes to a Tracer's span sink, buffers every
// completed span (plus any counter samples the caller feeds it), and
// serializes the Chrome Trace Event Format JSON that ui.perfetto.dev and
// chrome://tracing open directly:
//
//   { "traceEvents": [
//       {"name":"chunk","cat":"docs","ph":"X","ts":12.0,"dur":340.5,
//        "pid":1,"tid":2,"args":{"self_s":...,"sim_s":...}},
//       {"name":"queue_depth","ph":"C","ts":...,"pid":1,
//        "args":{"queue_depth":7}},
//       ... ],
//     "displayTimeUnit": "ms" }
//
// Spans become complete ("X") events: ts/dur are microseconds on the
// tracer clock, pid is always 1, and tid is a small stable ordinal
// assigned per hashed thread id in order of first appearance (thread
// metadata "M" events carry the original hash). Counter ("C") events plot
// queue depth and shipped bytes as stacked area charts under the tracks.
//
// Sessions enable it with AAD_TRACE_OUT=<path> (see bench/bench_common's
// Observability helper); the file is written on finish()/write_file.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.hpp"

namespace aadedupe::telemetry {

class JsonValue;

class TraceExporter {
 public:
  TraceExporter() = default;

  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Install this exporter as `tracer`'s span sink. The exporter must
  /// outlive the tracer's use of the sink (detach by passing the tracer a
  /// null sink, or destroy the tracer first).
  void attach(Tracer& tracer);

  /// Record one completed span (called by the sink; also usable directly
  /// in tests). Thread-safe.
  void add_span(const SpanEvent& event);

  /// Record a counter sample ("C" event) — e.g. queue depth over time.
  void add_counter(std::string_view name, double t_s, double value);

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t counter_count() const;

  /// Build {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void fill_json(JsonValue& out) const;

  /// Serialize to `path`. Throws FormatError when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

 private:
  struct SpanRecord {
    Stage stage;
    std::string category;
    double start_s, wall_s, self_s, sim_s;
    std::uint32_t thread;
  };
  struct CounterRecord {
    std::string name;
    double t_s;
    double value;
  };

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
};

}  // namespace aadedupe::telemetry
