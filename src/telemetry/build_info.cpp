#include "telemetry/build_info.hpp"

#include <cstdio>
#include <cstring>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "telemetry/json.hpp"

// The AAD_BUILD_* definitions are injected by src/telemetry/CMakeLists.txt
// for this translation unit only; default to "unknown" so the library
// still builds standalone (e.g. under an IDE's loose file mode).
#ifndef AAD_BUILD_COMPILER
#define AAD_BUILD_COMPILER "unknown"
#endif
#ifndef AAD_BUILD_FLAGS
#define AAD_BUILD_FLAGS "unknown"
#endif
#ifndef AAD_BUILD_TYPE
#define AAD_BUILD_TYPE "unknown"
#endif
#ifndef AAD_BUILD_SANITIZE
#define AAD_BUILD_SANITIZE "OFF"
#endif
#ifndef AAD_BUILD_PRESET
#define AAD_BUILD_PRESET "unknown"
#endif

namespace aadedupe::telemetry {

namespace {

/// Trim leading/trailing whitespace in place (brand strings pad with
/// spaces; /proc lines end in '\n').
std::string trimmed(const char* text) {
  std::string s(text);
  const std::size_t begin = s.find_first_not_of(" \t\n");
  if (begin == std::string::npos) return {};
  const std::size_t end = s.find_last_not_of(" \t\n");
  return s.substr(begin, end - begin + 1);
}

std::string detect_cpu_model() {
#if defined(__x86_64__) || defined(__i386__)
  // CPUID brand string: leaves 0x80000002..4 spell 48 bytes of model
  // name when the extended range reaches them.
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) != 0 &&
      eax >= 0x80000004u) {
    unsigned words[12] = {};
    for (unsigned leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &words[leaf * 4 + 0],
                  &words[leaf * 4 + 1], &words[leaf * 4 + 2],
                  &words[leaf * 4 + 3]);
    }
    char brand[sizeof words + 1] = {};
    std::memcpy(brand, words, sizeof words);
    const std::string model = trimmed(brand);
    if (!model.empty()) return model;
  }
#endif
  // Non-x86 (or a hypervisor hiding the brand leaves): first "model name"
  // line of /proc/cpuinfo.
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[256];
  std::string model = "unknown";
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      if (const char* colon = std::strchr(line, ':')) {
        model = trimmed(colon + 1);
        break;
      }
    }
  }
  std::fclose(f);
  return model;
}

}  // namespace

BuildInfo BuildInfo::current() {
  BuildInfo info;
  info.compiler = AAD_BUILD_COMPILER;
  info.flags = AAD_BUILD_FLAGS;
  info.build_type = AAD_BUILD_TYPE;
  info.sanitizer = AAD_BUILD_SANITIZE;
  info.preset = AAD_BUILD_PRESET;
  info.hardware_threads = std::thread::hardware_concurrency();
  info.cpu_model = detect_cpu_model();
  return info;
}

void BuildInfo::fill_json(JsonValue& out) const {
  out.make_object();
  out["compiler"] = compiler;
  out["flags"] = flags;
  out["build_type"] = build_type;
  out["sanitizer"] = sanitizer;
  out["preset"] = preset;
  out["hardware_threads"] = hardware_threads;
  out["cpu_model"] = cpu_model;
}

}  // namespace aadedupe::telemetry
