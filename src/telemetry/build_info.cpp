#include "telemetry/build_info.hpp"

#include <thread>

#include "telemetry/json.hpp"

// The AAD_BUILD_* definitions are injected by src/telemetry/CMakeLists.txt
// for this translation unit only; default to "unknown" so the library
// still builds standalone (e.g. under an IDE's loose file mode).
#ifndef AAD_BUILD_COMPILER
#define AAD_BUILD_COMPILER "unknown"
#endif
#ifndef AAD_BUILD_FLAGS
#define AAD_BUILD_FLAGS "unknown"
#endif
#ifndef AAD_BUILD_TYPE
#define AAD_BUILD_TYPE "unknown"
#endif
#ifndef AAD_BUILD_SANITIZE
#define AAD_BUILD_SANITIZE "OFF"
#endif
#ifndef AAD_BUILD_PRESET
#define AAD_BUILD_PRESET "unknown"
#endif

namespace aadedupe::telemetry {

BuildInfo BuildInfo::current() {
  BuildInfo info;
  info.compiler = AAD_BUILD_COMPILER;
  info.flags = AAD_BUILD_FLAGS;
  info.build_type = AAD_BUILD_TYPE;
  info.sanitizer = AAD_BUILD_SANITIZE;
  info.preset = AAD_BUILD_PRESET;
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

void BuildInfo::fill_json(JsonValue& out) const {
  out.make_object();
  out["compiler"] = compiler;
  out["flags"] = flags;
  out["build_type"] = build_type;
  out["sanitizer"] = sanitizer;
  out["preset"] = preset;
  out["hardware_threads"] = hardware_threads;
}

}  // namespace aadedupe::telemetry
