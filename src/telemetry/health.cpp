#include "telemetry/health.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

namespace {
std::uint64_t time_bits(double t_s) noexcept {
  return std::bit_cast<std::uint64_t>(t_s);
}
double bits_time(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

/// JSON-object key for a tenant ("" is the unlabeled single-PC regime).
std::string tenant_label(std::string_view tenant) {
  return tenant.empty() ? std::string("default") : std::string(tenant);
}
}  // namespace

HealthMonitor::HealthMonitor(Telemetry& telemetry, HealthMonitorOptions options)
    : telemetry_(telemetry), options_(options) {
  AAD_EXPECTS(options_.fast_window_s > 0.0);
  AAD_EXPECTS(options_.slow_window_s >= options_.fast_window_s);
  AAD_EXPECTS(options_.error_budget > 0.0);
  AAD_EXPECTS(options_.recent_spans_per_stage > 0);
  deadlines_.fill(options_.default_stall_deadline_s);
  for (StageRing& ring : rings_) {
    ring.slots.resize(options_.recent_spans_per_stage);
  }
  telemetry_.health = this;
  telemetry_.trace.set_health_monitor(this);
}

HealthMonitor::~HealthMonitor() {
  telemetry_.trace.set_health_monitor(nullptr);
  if (telemetry_.health == this) telemetry_.health = nullptr;
}

double HealthMonitor::now() const { return telemetry_.trace.now(); }

void HealthMonitor::touch(Stage stage, double now_s) noexcept {
  stages_[static_cast<std::size_t>(stage)].last_activity_bits.store(
      time_bits(now_s), std::memory_order_relaxed);
}

void HealthMonitor::on_span_open(Stage stage, double now_s) noexcept {
  StageWatch& watch = stages_[static_cast<std::size_t>(stage)];
  watch.live.fetch_add(1, std::memory_order_relaxed);
  watch.opened.fetch_add(1, std::memory_order_relaxed);
  touch(stage, now_s);
}

void HealthMonitor::on_span_close(Stage stage, std::string_view category,
                                  double start_s, double wall_s) noexcept {
  StageWatch& watch = stages_[static_cast<std::size_t>(stage)];
  // A span opened before the monitor attached may close through it;
  // never let the live count wrap.
  if (watch.live.fetch_sub(1, std::memory_order_relaxed) == 0) {
    watch.live.fetch_add(1, std::memory_order_relaxed);
  }
  watch.closed.fetch_add(1, std::memory_order_relaxed);
  touch(stage, start_s + wall_s);

  StageRing& ring = rings_[static_cast<std::size_t>(stage)];
  std::lock_guard lock(ring.mutex);
  RecentSpan& slot = ring.slots[ring.cursor % ring.slots.size()];
  slot.start_s = start_s;
  slot.wall_s = wall_s;
  const std::size_t n = std::min(category.size(), sizeof slot.category - 1);
  std::memcpy(slot.category, category.data(), n);
  slot.category[n] = '\0';
  ++ring.cursor;
}

void HealthMonitor::heartbeat(Stage stage) noexcept { touch(stage, now()); }

void HealthMonitor::set_stall_deadline(Stage stage, double seconds) {
  std::lock_guard lock(mutex_);
  deadlines_[static_cast<std::size_t>(stage)] =
      seconds > 0.0 ? seconds : options_.default_stall_deadline_s;
}

double HealthMonitor::deadline_for(std::size_t stage) const {
  std::lock_guard lock(mutex_);
  return deadlines_[stage];
}

void HealthMonitor::tick(double now_s) {
  std::array<double, kStageCount> deadlines{};
  {
    std::lock_guard lock(mutex_);
    deadlines = deadlines_;
  }
  for (std::size_t i = 0; i < kStageCount; ++i) {
    StageWatch& watch = stages_[i];
    const Stage stage = static_cast<Stage>(i);
    const bool has_live = watch.live.load(std::memory_order_relaxed) > 0;
    const double idle =
        now_s - bits_time(watch.last_activity_bits.load(
                    std::memory_order_relaxed));
    if (has_live && idle > deadlines[i]) {
      if (!watch.stalled.exchange(true, std::memory_order_relaxed)) {
        AAD_LOG(&telemetry_.log, kWarn, to_string(stage),
                "stage stalled: live span idle %.1fs past %.1fs deadline",
                idle, deadlines[i]);
        // One post-mortem artifact per stall burst: dump on the first
        // stall transition, then hold off for the rate-limit interval.
        const double last_dump =
            bits_time(last_dump_bits_.load(std::memory_order_relaxed));
        if (!ever_dumped_.load(std::memory_order_relaxed) ||
            now_s - last_dump >= options_.flight_dump_min_interval_s) {
          ever_dumped_.store(true, std::memory_order_relaxed);
          last_dump_bits_.store(time_bits(now_s), std::memory_order_relaxed);
          stall_dumps_.fetch_add(1, std::memory_order_relaxed);
          telemetry_.flight.trigger("stage_stall", to_string(stage));
        }
      }
    } else if (watch.stalled.load(std::memory_order_relaxed)) {
      watch.stalled.store(false, std::memory_order_relaxed);
      AAD_LOG(&telemetry_.log, kInfo, to_string(stage),
              "stage recovered from stall");
    }
  }
}

void HealthMonitor::set_objectives(std::string_view tenant, SloObjectives slo) {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), TenantSlo{}).first;
  }
  it->second.objectives = slo;
  it->second.has_override = true;
}

void HealthMonitor::record_session(std::string_view tenant,
                                   double backup_window_s,
                                   double bytes_saved_per_s) {
  const double now_s = now();
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), TenantSlo{}).first;
    it->second.objectives = options_.slo;
  }
  TenantSlo& state = it->second;
  const SloObjectives& slo = state.objectives;
  const bool violated =
      (slo.backup_window_s > 0.0 && backup_window_s > slo.backup_window_s) ||
      (slo.bytes_saved_per_s > 0.0 && bytes_saved_per_s < slo.bytes_saved_per_s);
  state.window.push_back(Observation{now_s, violated});
  ++state.sessions;
  if (violated) ++state.violations;
  while (!state.window.empty() &&
         now_s - state.window.front().t_s > options_.slow_window_s) {
    state.window.pop_front();
  }
}

HealthMonitor::BurnRates HealthMonitor::burn_rates_locked(
    const TenantSlo& tenant, double now_s) const {
  BurnRates rates;
  std::size_t fast_violations = 0;
  std::size_t slow_violations = 0;
  for (const Observation& obs : tenant.window) {
    if (now_s - obs.t_s > options_.slow_window_s) continue;
    ++rates.slow_n;
    if (obs.violated) ++slow_violations;
    if (now_s - obs.t_s <= options_.fast_window_s) {
      ++rates.fast_n;
      if (obs.violated) ++fast_violations;
    }
  }
  if (rates.fast_n > 0) {
    rates.fast = (static_cast<double>(fast_violations) /
                  static_cast<double>(rates.fast_n)) /
                 options_.error_budget;
  }
  if (rates.slow_n > 0) {
    rates.slow = (static_cast<double>(slow_violations) /
                  static_cast<double>(rates.slow_n)) /
                 options_.error_budget;
  }
  return rates;
}

bool HealthMonitor::any_stage_stalled() const noexcept {
  for (const StageWatch& watch : stages_) {
    if (watch.stalled.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

HealthMonitor::Verdict HealthMonitor::verdict() const {
  Verdict result;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stages_[i].stalled.load(std::memory_order_relaxed)) {
      result.reasons.push_back(
          "stage " + std::string(to_string(static_cast<Stage>(i))) +
          " stalled");
    }
  }
  const double now_s = now();
  std::lock_guard lock(mutex_);
  for (const auto& [name, tenant] : tenants_) {
    const BurnRates rates = burn_rates_locked(tenant, now_s);
    if (rates.fast_n > 0 && rates.fast >= options_.fast_burn_alert) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "tenant %s fast SLO burn %.2f >= %.2f",
                    tenant_label(name).c_str(), rates.fast,
                    options_.fast_burn_alert);
      result.reasons.emplace_back(buf);
    }
  }
  result.degraded = !result.reasons.empty();
  return result;
}

void HealthMonitor::fill_healthz_json(JsonValue& out) const {
  out.make_object();
  const Verdict v = verdict();
  out["status"] = v.degraded ? "degraded" : "ok";
  JsonValue& reasons = out["reasons"].make_array();
  for (const std::string& reason : v.reasons) reasons.push_back(reason);

  const double now_s = now();
  JsonValue& stages = out["stages"].make_object();
  std::array<double, kStageCount> deadlines{};
  {
    std::lock_guard lock(mutex_);
    deadlines = deadlines_;
  }
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageWatch& watch = stages_[i];
    const std::uint64_t opened = watch.opened.load(std::memory_order_relaxed);
    if (opened == 0) continue;  // never-used stages add noise, not signal
    JsonValue& stage = stages[to_string(static_cast<Stage>(i))];
    stage["live"] = watch.live.load(std::memory_order_relaxed);
    stage["opened"] = opened;
    stage["closed"] = watch.closed.load(std::memory_order_relaxed);
    stage["stalled"] = watch.stalled.load(std::memory_order_relaxed);
    stage["idle_s"] =
        now_s - bits_time(watch.last_activity_bits.load(
                    std::memory_order_relaxed));
    stage["deadline_s"] = deadlines[i];
  }

  JsonValue& slo = out["slo"].make_object();
  slo["fast_window_s"] = options_.fast_window_s;
  slo["slow_window_s"] = options_.slow_window_s;
  slo["error_budget"] = options_.error_budget;
  slo["fast_burn_alert"] = options_.fast_burn_alert;
  JsonValue& tenants = slo["tenants"].make_object();
  std::lock_guard lock(mutex_);
  for (const auto& [name, tenant] : tenants_) {
    const BurnRates rates = burn_rates_locked(tenant, now_s);
    JsonValue& entry = tenants[tenant_label(name)];
    entry["backup_window_s"] = tenant.objectives.backup_window_s;
    entry["bytes_saved_per_s"] = tenant.objectives.bytes_saved_per_s;
    entry["sessions"] = tenant.sessions;
    entry["violations"] = tenant.violations;
    entry["fast_burn"] = rates.fast;
    entry["slow_burn"] = rates.slow;
    entry["fast_n"] = static_cast<std::uint64_t>(rates.fast_n);
    entry["slow_n"] = static_cast<std::uint64_t>(rates.slow_n);
  }
}

void HealthMonitor::fill_tracez_json(JsonValue& out) const {
  out.make_object();
  JsonValue& stages = out["stages"].make_array();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    // Snapshot the ring under its mutex, format outside.
    std::vector<RecentSpan> recent;
    std::uint64_t completed = 0;
    {
      const StageRing& ring = rings_[i];
      std::lock_guard lock(ring.mutex);
      completed = ring.cursor;
      const std::size_t capacity = ring.slots.size();
      const std::size_t count =
          static_cast<std::size_t>(std::min<std::uint64_t>(ring.cursor,
                                                           capacity));
      recent.reserve(count);
      // Oldest retained first.
      for (std::size_t k = 0; k < count; ++k) {
        recent.push_back(ring.slots[(ring.cursor - count + k) % capacity]);
      }
    }
    if (completed == 0) continue;
    JsonValue entry;
    entry["stage"] = to_string(static_cast<Stage>(i));
    entry["completed"] = completed;
    JsonValue& spans = entry["recent"].make_array();
    for (const RecentSpan& span : recent) {
      JsonValue one;
      one["category"] = span.category;
      one["start_s"] = span.start_s;
      one["wall_s"] = span.wall_s;
      spans.push_back(std::move(one));
    }
    stages.push_back(std::move(entry));
  }
}

}  // namespace aadedupe::telemetry
