// Environment-variable parsing — the sanctioned home for std::getenv.
//
// Library and entry-point code reads its AAD_* knobs through these
// helpers (tools/lint.py's no-raw-getenv rule bans direct std::getenv
// elsewhere), so every knob shares one parsing discipline: empty counts
// as unset, numeric parses fall back instead of throwing, and boolean
// flags accept the same four spellings everywhere.
//
// env_secret is deliberately separate from env_str: it marks values that
// must never appear in logs, reports, or exposition output (passphrases,
// credentials). The helper itself cannot enforce that downstream, but the
// distinct name makes a grep for secret handling trivial and keeps
// secrets out of the knob-documentation habit of logging env_str values.
#pragma once

#include <cstdint>
#include <string>

namespace aadedupe::telemetry {

/// Value of `name`, or "" when unset or set to the empty string.
[[nodiscard]] std::string env_str(const char* name);

/// Unsigned integer knob; `fallback` when unset, empty, or unparseable.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Floating-point knob; `fallback` when unset, empty, or unparseable.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Boolean knob: "1", "true", "yes", "on" (ASCII case-insensitive) are
/// true; anything else — including unset — is false.
[[nodiscard]] bool env_flag(const char* name);

/// Same truth table as env_flag, applied to an already-fetched value
/// (nullptr is false). Exposed so call sites that must keep their own
/// getenv discipline (e.g. pre-main CPU dispatch) share the parser.
[[nodiscard]] bool parse_env_flag(const char* value) noexcept;

/// A sensitive value (passphrase, token): same fetch semantics as
/// env_str, but callers must treat the result as a secret — never log
/// it, never stamp it into a report or artifact.
[[nodiscard]] std::string env_secret(const char* name);

}  // namespace aadedupe::telemetry
