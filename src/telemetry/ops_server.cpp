#include "telemetry/ops_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "telemetry/exposition.hpp"
#include "telemetry/health.hpp"
#include "telemetry/json.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

namespace {

constexpr std::string_view kJsonType = "application/json; charset=utf-8";
// The exposition format version Prometheus scrapers expect.
constexpr std::string_view kPromType = "text/plain; version=0.0.4; charset=utf-8";

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void set_io_timeouts(int fd, double seconds) noexcept {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// send() the whole buffer; false on timeout/error. MSG_NOSIGNAL so a
/// client that hangs up mid-response cannot SIGPIPE the process.
bool send_all(int fd, std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

OpsServer::OpsServer(OpsServerOptions options) : options_(std::move(options)) {
  AAD_EXPECTS(options_.io_timeout_s > 0.0);
  AAD_EXPECTS(options_.tick_interval_s > 0.0);
  AAD_EXPECTS(options_.max_request_bytes >= 16);
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::set_handler(std::string path, Handler handler) {
  std::lock_guard lock(mutex_);
  handlers_[std::move(path)] = std::move(handler);
}

void OpsServer::set_tick(std::function<void()> tick) {
  std::lock_guard lock(mutex_);
  tick_ = std::move(tick);
}

void OpsServer::wire_telemetry(Telemetry& telemetry,
                               std::function<std::string()> varz) {
  Telemetry* t = &telemetry;
  set_handler("/", [] {
    OpsResponse response;
    response.body =
        "aadedupe ops plane\n"
        "  /metrics  Prometheus exposition (live registry)\n"
        "  /varz     run-report JSON snapshot\n"
        "  /healthz  health verdict (503 when degraded)\n"
        "  /tracez   recent completed spans per stage\n"
        "  /flightz  flight-recorder dump\n";
    return response;
  });
  set_handler("/metrics", [t] {
    OpsResponse response;
    response.content_type = std::string(kPromType);
    response.body = to_prometheus_text(t->metrics.snapshot());
    return response;
  });
  set_handler("/varz", [t, varz = std::move(varz)] {
    OpsResponse response;
    response.content_type = std::string(kJsonType);
    if (varz) {
      response.body = varz();
    } else {
      RunReport report;
      report.add_telemetry(*t);
      response.body = report.to_json();
    }
    return response;
  });
  set_handler("/healthz", [t] {
    OpsResponse response;
    response.content_type = std::string(kJsonType);
    JsonValue out;
    if (t->health != nullptr) {
      // Evaluate stalls against the current clock before answering, so a
      // curl sees a hang even between accept-loop ticks.
      t->health->tick(t->trace.now());
      t->health->fill_healthz_json(out);
      if (t->health->verdict().degraded) response.status = 503;
    } else {
      out.make_object();
      out["status"] = "ok";
      out["reasons"].make_array();
    }
    response.body = out.dump();
    return response;
  });
  set_handler("/tracez", [t] {
    OpsResponse response;
    response.content_type = std::string(kJsonType);
    JsonValue out;
    if (t->health != nullptr) {
      t->health->fill_tracez_json(out);
    } else {
      out.make_object();
      out["stages"].make_array();
    }
    response.body = out.dump();
    return response;
  });
  set_handler("/flightz", [t] {
    OpsResponse response;
    response.content_type = std::string(kJsonType);
    JsonValue out;
    t->flight.fill_json(out);
    response.body = out.dump();
    return response;
  });
  set_tick([t] {
    if (t->health != nullptr) t->health->tick(t->trace.now());
  });
}

void OpsServer::start() {
  if (running()) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw FormatError(std::string("ops server: socket() failed: ") +
                      std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw FormatError("ops server: bad bind address '" +
                      options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw FormatError("ops server: cannot bind " + options_.bind_address +
                      ":" + std::to_string(options_.port) + ": " +
                      std::strerror(err));
  }
  if (::listen(fd, 8) != 0) {
    const int err = errno;
    ::close(fd);
    throw FormatError(std::string("ops server: listen() failed: ") +
                      std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  } else {
    port_.store(options_.port, std::memory_order_release);
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { listen_loop(); });
}

void OpsServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (listener_.joinable()) listener_.join();
    return;
  }
  // The accept loop polls with a bounded timeout, so the thread notices
  // the flag within one tick; close the socket only after the join so
  // the loop never polls a dead fd.
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OpsServer::listen_loop() {
  const int timeout_ms =
      std::max(1, static_cast<int>(options_.tick_interval_s * 1000.0));
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    {
      // Copy under the lock, invoke outside it (the tick may be slow).
      std::function<void()> tick;
      {
        std::lock_guard lock(mutex_);
        tick = tick_;
      }
      if (tick) tick();
    }
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_client(client);
    ::close(client);
  }
}

void OpsServer::serve_client(int client_fd) {
  set_io_timeouts(client_fd, options_.io_timeout_s);

  // Read until the end of the request line; everything past it (headers,
  // body) is irrelevant to a GET-only debugging surface.
  std::string request;
  request.reserve(256);
  bool too_long = false;
  while (request.find('\n') == std::string::npos) {
    char buf[512];
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > options_.max_request_bytes) {
      too_long = true;
      break;
    }
  }

  OpsResponse response;
  if (too_long) {
    response.status = 431;
    response.body = "request too large\n";
  } else {
    const std::size_t eol = request.find_first_of("\r\n");
    std::string_view line(request.data(),
                          eol == std::string::npos ? request.size() : eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos
                                      : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos) {
      response.status = 404;
      response.body = "malformed request\n";
    } else {
      const std::string_view method = line.substr(0, sp1);
      std::string_view path =
          sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                        : line.substr(sp1 + 1, sp2 - sp1 - 1);
      // Queries are accepted and ignored (curl '...?foo' should work).
      if (const std::size_t q = path.find('?'); q != std::string_view::npos) {
        path = path.substr(0, q);
      }
      response = dispatch(method, path);
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string head;
  head.reserve(128);
  head += "HTTP/1.0 ";
  head += std::to_string(response.status);
  head += ' ';
  head += reason_phrase(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(response.body.size());
  head += "\r\nConnection: close\r\n\r\n";
  if (send_all(client_fd, head)) send_all(client_fd, response.body);
}

OpsResponse OpsServer::dispatch(std::string_view method,
                                std::string_view path) {
  OpsResponse response;
  if (method != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
    return response;
  }
  Handler handler;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = handlers_.find(path); it != handlers_.end()) {
      handler = it->second;
    }
  }
  if (!handler) {
    response.status = 404;
    response.body = "unknown endpoint; see /\n";
    return response;
  }
  try {
    return handler();
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = std::string("handler failed: ") + e.what() + "\n";
    return response;
  }
}

OpsHttpResult ops_http_request(std::uint16_t port, const std::string& request,
                               double timeout_s) {
  OpsHttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.body = std::string("socket() failed: ") + std::strerror(errno);
    return result;
  }
  set_io_timeouts(fd, timeout_s);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    result.body = std::string("connect() failed: ") + std::strerror(errno);
    ::close(fd);
    return result;
  }
  if (!send_all(fd, request)) {
    result.body = "send failed";
    ::close(fd);
    return result;
  }
  std::string raw;
  // A /varz of a large fleet run is big but bounded; cap defensively.
  constexpr std::size_t kMaxResponse = 64u << 20;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > kMaxResponse) break;
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    result.body = "malformed response";
    return result;
  }
  const std::string_view head(raw.data(), header_end);
  const std::size_t status_sp = head.find(' ');
  if (status_sp != std::string_view::npos) {
    result.status =
        std::atoi(std::string(head.substr(status_sp + 1, 3)).c_str());
  }
  // Content-Type, if present (case per our own server; tolerate any case).
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    constexpr std::string_view kPrefix = "content-type:";
    if (line.size() > kPrefix.size()) {
      std::string lowered(line.substr(0, kPrefix.size()));
      for (char& c : lowered) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
      if (lowered == kPrefix) {
        std::string_view value = line.substr(kPrefix.size());
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        result.content_type = std::string(value);
      }
    }
    pos = eol + 2;
  }
  result.body = raw.substr(header_end + 4);
  return result;
}

OpsHttpResult ops_http_get(std::uint16_t port, const std::string& path,
                           double timeout_s) {
  return ops_http_request(port,
                          "GET " + path +
                              " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n",
                          timeout_s);
}

}  // namespace aadedupe::telemetry
