// FlightRecorder — a lock-free per-thread ring buffer of recent events,
// dumped as `flight.json` when the process is about to die (or be wound
// down by an exception nobody planned for).
//
// Every thread that logs or opens spans gets its own fixed-size ring;
// writers append with relaxed atomics and never take a lock, so the
// recorder can sit under the fingerprinting hot path within the telemetry
// overhead budget. The dump side walks all rings concurrently with the
// writers using a per-slot sequence number (a seqlock over all-atomic
// fields): a slot overwritten mid-read is detected and skipped, never
// torn into the artifact, and the whole structure stays clean under
// ThreadSanitizer.
//
// Dump triggers (each records a kTrigger event and, when a dump path is
// configured, writes the artifact):
//   * check.hpp invariant/precondition failures, via the process-global
//     failure hook (install_global_flight_recorder),
//   * ThreadPool workers whose task threw (same hook),
//   * an exception captured on the upload pipeline's uploader thread,
//   * transport retry exhaustion parking an item in the UploadJournal.
//
// Event payloads are fixed-size (category/message truncate) so recording
// never allocates — safe from destructors and unwinding paths.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/log.hpp"

namespace aadedupe::telemetry {

class JsonValue;

enum class FlightEventKind : std::uint8_t {
  kLog,        // a Logger event
  kSpanOpen,   // TraceSpan construction
  kSpanClose,  // TraceSpan finish
  kTrigger,    // a dump trigger firing
};

[[nodiscard]] std::string_view to_string(FlightEventKind kind) noexcept;

class FlightRecorder {
 public:
  /// Events retained per thread (rounded up to a power of two).
  static constexpr std::size_t kDefaultCapacity = 128;
  /// Payload truncation bounds (bytes kept per event).
  static constexpr std::size_t kCategoryBytes = 24;
  static constexpr std::size_t kMessageBytes = 120;

  using Clock = std::function<double()>;

  explicit FlightRecorder(std::size_t per_thread_capacity = kDefaultCapacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Clock used to timestamp trigger records (event records carry the
  /// caller's timestamp). Default: steady clock from construction.
  void set_clock(Clock clock);

  /// Where trigger() writes the artifact; empty disables the write (the
  /// rings still record, and dump_to_file can be called manually).
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Append one event to the calling thread's ring. Lock-free after the
  /// thread's first event; truncates category/message; never throws.
  void record(FlightEventKind kind, LogLevel level, double t_s,
              std::string_view category, std::string_view message) noexcept;

  /// Record a kTrigger event and — when a dump path is configured — write
  /// the flight artifact. Safe during exception unwinding.
  void trigger(std::string_view reason, std::string_view detail) noexcept;

  [[nodiscard]] std::uint64_t trigger_count() const noexcept {
    return triggers_.load(std::memory_order_relaxed);
  }

  /// Snapshot every thread's recent events into a flight document:
  /// {"schema", "capacity_per_thread", "triggers", "threads": [...]}.
  void fill_json(JsonValue& out) const;

  /// Write fill_json() (plus build info) to `path`; false on I/O failure.
  bool dump_to_file(const std::string& path) const noexcept;

  [[nodiscard]] std::size_t capacity_per_thread() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t thread_count() const;

 private:
  // One ring slot, seqlock-guarded: seq is 2*index+1 while the writer is
  // mid-store and 2*index+2 once stable, so a reader knows both whether
  // the slot is torn and which generation it holds. Strings are packed
  // into uint64 words so every byte of the slot is an atomic.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> time_bits{0};  // bit_cast of the double
    std::atomic<std::uint64_t> meta{0};       // kind | level | lengths
    std::array<std::atomic<std::uint64_t>, kCategoryBytes / 8> category{};
    std::array<std::atomic<std::uint64_t>, kMessageBytes / 8> message{};
  };

  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::uint64_t thread_tag = 0;              // hashed thread id
    std::atomic<std::uint64_t> cursor{0};      // events written (monotonic)
    std::vector<Slot> slots;                   // fixed; never reallocates
  };

  Ring& local_ring();
  void snapshot_ring(const Ring& ring, JsonValue& out) const;

  const std::size_t capacity_;  // power of two
  const std::uint64_t id_;      // process-unique; keys the thread cache

  Clock clock_;
  std::atomic<std::uint64_t> triggers_{0};

  mutable std::mutex mutex_;  // guards rings_ list, dump_path_, trigger log
  std::vector<std::unique_ptr<Ring>> rings_;
  std::string dump_path_;
  struct TriggerRecord {
    double t_s;
    std::string reason;
    std::string detail;
  };
  std::vector<TriggerRecord> trigger_log_;
};

/// Install `recorder` as the process-global crash recorder: check.hpp
/// failures and ThreadPool worker exceptions route to recorder->trigger().
/// Pass nullptr to uninstall. The caller keeps ownership and must
/// uninstall before destroying the recorder.
void install_global_flight_recorder(FlightRecorder* recorder) noexcept;
[[nodiscard]] FlightRecorder* global_flight_recorder() noexcept;

}  // namespace aadedupe::telemetry
