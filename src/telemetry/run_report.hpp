// RunReport — the single structured artifact a backup session (or a whole
// bench suite) leaves behind.
//
// Layers contribute named sections (cloud transport, the AA-Dedupe
// application breakdown, per-scheme bench results); the telemetry
// substrate contributes the merged metrics and per-stage span table; the
// build metadata is stamped automatically. The report is written as JSON
// to a caller-supplied path or stream — never to stdout (tools/lint.py's
// no-stdout rule applies to this library like any other).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/json.hpp"

namespace aadedupe::telemetry {

class MetricsRegistry;
class Timeline;
class Tracer;
struct Telemetry;

class RunReport {
 public:
  /// Starts with {"schema": ..., "build": {...}}.
  RunReport();

  /// Top-level section (created as an object on first access). Layers use
  /// this to contribute their stats without RunReport knowing their types.
  JsonValue& section(std::string_view name);

  JsonValue& root() noexcept { return root_; }
  [[nodiscard]] const JsonValue& root() const noexcept { return root_; }
  [[nodiscard]] const JsonValue* find(std::string_view name) const {
    return root_.find(name);
  }

  /// Fold in a metrics snapshot ("metrics") / span table ("stages").
  void add_metrics(const MetricsRegistry& registry);
  void add_stages(const Tracer& tracer);
  /// Timeline samples as a "timeseries" section (columnar).
  void add_timeline(const Timeline& timeline);
  /// Fold in a Telemetry context: metrics, stages, and — when any samples
  /// were taken — the timeline.
  void add_telemetry(const Telemetry& telemetry);

  [[nodiscard]] std::string to_json(int indent = 2) const {
    return root_.dump(indent);
  }

  void write_stream(std::ostream& out) const;
  /// Throws FormatError when the path cannot be opened/written.
  void write_file(const std::string& path) const;

  static constexpr std::string_view kSchema = "aadedupe-run-report/v1";

 private:
  JsonValue root_;
};

}  // namespace aadedupe::telemetry
