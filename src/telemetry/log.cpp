#include "telemetry/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept {
  if (text == nullptr) return fallback;
  const std::string_view name(text);
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (name == to_string(level)) return level;
  }
  return fallback;
}

namespace {

std::uint32_t this_thread_tag() noexcept {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu);
}

Logger::Clock make_wall_clock() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

/// Human-readable stderr lines. stderr is the one terminal stream library
/// code may reach — and only through here (tools/lint.py bans raw
/// std::cerr/fprintf(stderr, ...) outside src/telemetry and tools).
class StderrSink final : public LogSink {
 public:
  void write(const LogEvent& event) override {
    char line[256];
    const int n = std::snprintf(
        line, sizeof line, "[%9.3f] %-5s %.*s: %.*s\n", event.t_s,
        std::string(to_string(event.level)).c_str(),
        static_cast<int>(event.category.size()), event.category.data(),
        static_cast<int>(event.message.size()), event.message.data());
    if (n > 0) {
      const std::size_t len =
          std::min(static_cast<std::size_t>(n), sizeof line - 1);
      std::fwrite(line, 1, len, stderr);
    }
  }
};

class JsonlFileSink final : public LogSink {
 public:
  explicit JsonlFileSink(const std::string& path)
      : file_(std::fopen(path.c_str(), "a")) {
    if (file_ == nullptr) {
      throw FormatError("log: cannot open JSONL sink path " + path);
    }
  }
  ~JsonlFileSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void write(const LogEvent& event) override {
    JsonValue line;
    line["t_s"] = event.t_s;
    line["level"] = to_string(event.level);
    line["category"] = event.category;
    line["message"] = event.message;
    line["thread"] = static_cast<std::uint64_t>(event.thread);
    const std::string text = line.dump(0);
    std::fwrite(text.data(), 1, text.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
};

class NullSink final : public LogSink {
 public:
  void write(const LogEvent&) override {}
};

}  // namespace

std::unique_ptr<LogSink> make_stderr_sink() {
  return std::make_unique<StderrSink>();
}

std::unique_ptr<LogSink> make_jsonl_file_sink(const std::string& path) {
  return std::make_unique<JsonlFileSink>(path);
}

std::unique_ptr<LogSink> make_null_sink() {
  return std::make_unique<NullSink>();
}

Logger::Logger() : Logger(make_wall_clock()) {}

Logger::Logger(Clock clock) : clock_(std::move(clock)) {
  AAD_EXPECTS(clock_ != nullptr);
}

Logger::~Logger() = default;

void Logger::set_clock(Clock clock) {
  AAD_EXPECTS(clock != nullptr);
  std::lock_guard lock(mutex_);
  clock_ = std::move(clock);
}

void Logger::add_sink(std::shared_ptr<LogSink> sink) {
  AAD_EXPECTS(sink != nullptr);
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::move(sink));
  has_sinks_.store(true, std::memory_order_relaxed);
}

void Logger::clear_sinks() {
  std::lock_guard lock(mutex_);
  sinks_.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

std::size_t Logger::sink_count() const {
  std::lock_guard lock(mutex_);
  return sinks_.size();
}

void Logger::log(LogLevel level, std::string_view category,
                 std::string_view message) {
  AAD_EXPECTS(level < LogLevel::kOff);
  const double t_s = now();
  // The flight recorder sees every event that reaches here (post
  // compile-time floor): crash artifacts want the detail the sinks skip.
  if (FlightRecorder* recorder =
          recorder_.load(std::memory_order_acquire)) {
    recorder->record(FlightEventKind::kLog, level, t_s, category, message);
  }
  if (!has_sinks_.load(std::memory_order_relaxed) ||
      level < level_.load(std::memory_order_relaxed)) {
    return;
  }
  LogEvent event;
  event.t_s = t_s;
  event.level = level;
  event.category = category;
  event.message = message;
  event.thread = this_thread_tag();
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) sink->write(event);
}

void Logger::logf(LogLevel level, std::string_view category,
                  const char* format, ...) {
  if (!enabled(level)) return;
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n < 0) return;
  log(level, category,
      std::string_view(buffer, std::min(static_cast<std::size_t>(n),
                                        sizeof buffer - 1)));
}

Logger& stderr_logger() {
  static Logger* logger = [] {
    auto* instance = new Logger();  // intentionally leaked: process-wide
    instance->add_sink(make_stderr_sink());
    instance->set_level(
        parse_log_level(std::getenv("AAD_LOG_LEVEL"), LogLevel::kInfo));
    return instance;
  }();
  return *logger;
}

}  // namespace aadedupe::telemetry
