// Build metadata stamped into every telemetry artifact (run reports and
// bench JSON), so a number is never read without knowing which compiler,
// flags, and preset produced it.
#pragma once

#include <string>

namespace aadedupe::telemetry {

class JsonValue;

struct BuildInfo {
  std::string compiler;    // "GNU 12.2.0"
  std::string flags;       // effective CXX flags for the active config
  std::string build_type;  // Release / RelWithDebInfo / ...
  std::string sanitizer;   // OFF / address / thread
  std::string preset;      // build-dir basename: build / build-tsan / ...
  // Host context, resolved at run time (not bake time) so a binary built
  // in CI but run elsewhere stamps the machine that produced the numbers.
  unsigned hardware_threads = 0;
  std::string cpu_model;   // CPUID brand string, or /proc/cpuinfo fallback

  /// The values baked in at compile time (hardware_threads and cpu_model
  /// at runtime).
  [[nodiscard]] static BuildInfo current();

  void fill_json(JsonValue& out) const;
};

}  // namespace aadedupe::telemetry
