#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace aadedupe::telemetry {

JsonValue& JsonValue::operator[](std::string_view key) {
  if (type_ == Type::kNull) make_object();
  AAD_EXPECTS(type_ == Type::kObject);
  for (auto& [name, value] : object_) {
    if (name == key) return value;
  }
  object_.emplace_back(std::string(key), JsonValue{});
  return object_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue& JsonValue::push_back(JsonValue element) {
  if (type_ == Type::kNull) make_array();
  AAD_EXPECTS(type_ == Type::kArray);
  array_.push_back(std::move(element));
  return array_.back();
}

bool JsonValue::as_bool() const {
  AAD_EXPECTS(type_ == Type::kBool);
  return bool_;
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ == Type::kInt && int_ >= 0) {
    return static_cast<std::uint64_t>(int_);
  }
  AAD_EXPECTS(type_ == Type::kUint);
  return uint_;
}

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kDouble:
      return double_;
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kInt:
      return static_cast<double>(int_);
    default:
      AAD_EXPECTS(false && "JsonValue::as_double on non-numeric value");
      return 0.0;
  }
}

const std::string& JsonValue::as_string() const {
  AAD_EXPECTS(type_ == Type::kString);
  return string_;
}

std::size_t JsonValue::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

JsonValue& JsonValue::make_object() {
  AAD_EXPECTS(type_ == Type::kNull || type_ == Type::kObject);
  type_ = Type::kObject;
  return *this;
}

JsonValue& JsonValue::make_array() {
  AAD_EXPECTS(type_ == Type::kNull || type_ == Type::kArray);
  type_ = Type::kArray;
  return *this;
}

void json_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no Inf/NaN; null keeps the document valid
    return;
  }
  char buf[40];
  // %.12g keeps seconds at nanosecond resolution without trailing noise.
  std::snprintf(buf, sizeof buf, "%.12g", value);
  out += buf;
  // Bare "1e+06" / "42" are valid JSON numbers; nothing more to do.
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    }
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble:
      append_double(out, double_);
      break;
    case Type::kString:
      out += '"';
      json_escape(out, string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        json_escape(out, object_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace aadedupe::telemetry
