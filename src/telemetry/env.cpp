#include "telemetry/env.hpp"

#include <cstdlib>
#include <string_view>

namespace aadedupe::telemetry {

std::string env_str(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value, &end, 10);
  return end == value ? fallback : parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

bool parse_env_flag(const char* value) noexcept {
  if (value == nullptr) return false;
  // Lowercase into a fixed buffer; anything longer than "false" cannot
  // be a recognized spelling.
  char lowered[8] = {};
  for (std::size_t i = 0; i < sizeof lowered - 1 && value[i] != '\0'; ++i) {
    char c = value[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    lowered[i] = c;
  }
  const std::string_view text(lowered);
  return text == "1" || text == "true" || text == "yes" || text == "on";
}

bool env_flag(const char* name) {
  return parse_env_flag(std::getenv(name));
}

std::string env_secret(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}

}  // namespace aadedupe::telemetry
