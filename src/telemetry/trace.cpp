#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/health.hpp"
#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kSession:
      return "session";
    case Stage::kClassify:
      return "classify";
    case Stage::kChunk:
      return "chunk";
    case Stage::kFingerprint:
      return "fingerprint";
    case Stage::kIndexLookup:
      return "index_lookup";
    case Stage::kContainerPack:
      return "container_pack";
    case Stage::kUpload:
      return "upload";
    case Stage::kRetryWait:
      return "retry_wait";
    case Stage::kJournalReplay:
      return "journal_replay";
    case Stage::kMetadataSync:
      return "metadata_sync";
  }
  return "unknown";
}

namespace {
std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Innermost live span on this thread (any tracer); the self-time anchor.
thread_local TraceSpan* t_current_span = nullptr;

/// Thread-local shard cache, same scheme as MetricsRegistry: ids are
/// process-unique, so entries of destroyed tracers are never matched.
struct ShardRef {
  std::uint64_t tracer_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_shard_cache;

std::uint32_t this_thread_tag() noexcept {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu);
}

Tracer::Clock make_wall_clock() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}
}  // namespace

Tracer::Tracer() : Tracer(make_wall_clock()) {}

Tracer::Tracer(Clock clock)
    : clock_(std::move(clock)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
  AAD_EXPECTS(clock_ != nullptr);
}

Tracer::~Tracer() = default;

void Tracer::set_event_sink(EventSink sink) {
  std::lock_guard lock(mutex_);
  event_sink_ = std::move(sink);
  events_enabled_.store(static_cast<bool>(event_sink_),
                        std::memory_order_relaxed);
}

void Tracer::set_span_sink(SpanSink sink) {
  std::lock_guard lock(mutex_);
  span_sink_ = std::move(sink);
  spans_enabled_.store(static_cast<bool>(span_sink_),
                       std::memory_order_relaxed);
}

void Tracer::emit_span(const SpanEvent& event) {
  std::lock_guard lock(mutex_);
  if (span_sink_) span_sink_(event);
}

Tracer::Shard& Tracer::local_shard() {
  for (const ShardRef& ref : t_shard_cache) {
    if (ref.tracer_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  std::lock_guard lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shard_cache.push_back(ShardRef{id_, shard});
  return *shard;
}

void Tracer::record_row(Stage stage, std::string_view category,
                        std::uint64_t count, double wall_s, double self_s,
                        double sim_s) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  StageRow& row = shard.rows[StageKey{stage, std::string(category)}];
  row.count += count;
  row.wall_s += wall_s;
  row.self_s += std::max(0.0, self_s);
  row.sim_s += sim_s;
}

void Tracer::record(Stage stage, std::string_view category, double wall_s,
                    std::uint64_t count) {
  record_row(stage, category, count, wall_s, wall_s, 0.0);
  // A direct record is a leaf child of the enclosing span: keep the
  // parent's self-time honest.
  if (t_current_span != nullptr && t_current_span->tracer_ == this) {
    t_current_span->child_wall_s_ += wall_s;
  }
}

void Tracer::record_sim(Stage stage, std::string_view category,
                        double sim_s) {
  record_row(stage, category, 0, 0.0, 0.0, sim_s);
}

void Tracer::emit_event(Stage stage, std::string_view category,
                        double start_s, double wall_s, double self_s,
                        double sim_s) {
  std::lock_guard lock(mutex_);
  if (!event_sink_) return;
  std::string line;
  line.reserve(160);
  line += "{\"stage\":\"";
  line += to_string(stage);
  line += "\",\"category\":\"";
  json_escape(line, category);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\",\"t_start_s\":%.9f,\"wall_s\":%.9f,\"self_s\":%.9f,"
                "\"sim_s\":%.9f,\"thread\":%llu}",
                start_s, wall_s, self_s, sim_s,
                static_cast<unsigned long long>(
                    std::hash<std::thread::id>{}(std::this_thread::get_id()) &
                    0xffffu));
  line += buf;
  event_sink_(line);
}

std::map<StageKey, StageRow> Tracer::snapshot() const {
  std::map<StageKey, StageRow> merged;
  std::lock_guard lock(mutex_);
  for (const auto& shard : shards_) {
    std::lock_guard shard_lock(shard->mutex);
    for (const auto& [key, row] : shard->rows) {
      StageRow& out = merged[key];
      out.count += row.count;
      out.wall_s += row.wall_s;
      out.self_s += row.self_s;
      out.sim_s += row.sim_s;
    }
  }
  return merged;
}

void Tracer::fill_json(JsonValue& out) const {
  out.make_array();
  for (const auto& [key, row] : snapshot()) {
    JsonValue entry;
    entry["stage"] = to_string(key.first);
    entry["category"] = key.second;
    entry["count"] = row.count;
    entry["wall_s"] = row.wall_s;
    entry["self_s"] = row.self_s;
    entry["sim_s"] = row.sim_s;
    out.push_back(std::move(entry));
  }
}

TraceSpan::TraceSpan(Tracer* tracer, Stage stage, std::string_view category)
    : tracer_(tracer), stage_(stage), category_(category) {
  if (tracer_ == nullptr) return;
  start_s_ = tracer_->now();
  parent_ = t_current_span;
  t_current_span = this;
  if (FlightRecorder* recorder =
          tracer_->recorder_.load(std::memory_order_acquire)) {
    recorder->record(FlightEventKind::kSpanOpen, LogLevel::kTrace, start_s_,
                     to_string(stage_), category_);
  }
  if (HealthMonitor* health =
          tracer_->health_.load(std::memory_order_acquire)) {
    health->on_span_open(stage_, start_s_);
  }
}

void TraceSpan::finish() {
  if (tracer_ == nullptr) return;
  const double wall = tracer_->now() - start_s_;
  const double self = wall - child_wall_s_;
  tracer_->record_row(stage_, category_, 1, wall, self, sim_s_);
  if (tracer_->events_enabled_.load(std::memory_order_relaxed)) {
    tracer_->emit_event(stage_, category_, start_s_, wall,
                        std::max(0.0, self), sim_s_);
  }
  if (tracer_->spans_enabled_.load(std::memory_order_relaxed)) {
    SpanEvent event;
    event.stage = stage_;
    event.category = category_;
    event.start_s = start_s_;
    event.wall_s = wall;
    event.self_s = std::max(0.0, self);
    event.sim_s = sim_s_;
    event.thread = this_thread_tag();
    tracer_->emit_span(event);
  }
  if (FlightRecorder* recorder =
          tracer_->recorder_.load(std::memory_order_acquire)) {
    recorder->record(FlightEventKind::kSpanClose, LogLevel::kTrace,
                     start_s_ + wall, to_string(stage_), category_);
  }
  if (HealthMonitor* health =
          tracer_->health_.load(std::memory_order_acquire)) {
    health->on_span_close(stage_, category_, start_s_, wall);
  }
  if (parent_ != nullptr && parent_->tracer_ == tracer_) {
    parent_->child_wall_s_ += wall;
  }
  t_current_span = parent_;
  tracer_ = nullptr;
}

TraceSpan::~TraceSpan() { finish(); }

const TraceSpan* current_thread_span() noexcept { return t_current_span; }

}  // namespace aadedupe::telemetry
