// Periodic time-series snapshots of a MetricsRegistry.
//
// Long sessions want *curves* — throughput, dedup ratio, shipped bytes
// over time — not just end-of-run totals. A Timeline samples the bound
// registry's counters and gauges (histograms are skipped; their per-point
// cost and size dwarf a scalar's) at a configurable interval on whatever
// clock the caller passes in: wall seconds inside a session, simulated
// seconds in a bench. Call maybe_sample(now) from any convenient
// heartbeat (per file batch, per stream); it self-rate-limits with one
// atomic compare, so over-calling is harmless.
//
// Memory is bounded: past ~1024 points the timeline thins itself by
// dropping every other sample and doubling the interval, preserving even
// coverage of an arbitrarily long run in fixed space.
//
// The run report embeds the result columnar ({"t_s":[...],
// "series":{name:[...]}}) — see tools/report.py `timeseries` for the
// terminal rendering.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace aadedupe::telemetry {

class JsonValue;
class MetricsRegistry;

class Timeline {
 public:
  static constexpr double kDefaultIntervalS = 1.0;
  static constexpr std::size_t kMaxSamples = 1024;

  explicit Timeline(MetricsRegistry* metrics = nullptr);

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  void bind(MetricsRegistry* metrics);

  /// Minimum seconds between samples (> 0). The effective interval can
  /// only grow from here (thinning doubles it).
  void set_interval(double seconds);
  [[nodiscard]] double interval() const;

  /// Take a sample iff none was taken yet or `now_s` is at least one
  /// interval past the previous sample. Returns true when it sampled.
  bool maybe_sample(double now_s);

  /// Take a sample unconditionally (session end wants the final point).
  void force_sample(double now_s);

  /// Invoked with the sample time after every successful sample, outside
  /// the timeline mutex (so the hook may snapshot the registry itself —
  /// bench::Observability uses this to refresh the Prometheus exposition
  /// file alongside each timeline point). Pass nullptr to clear.
  void set_sample_hook(std::function<void(double)> hook);

  [[nodiscard]] std::size_t sample_count() const;
  [[nodiscard]] bool empty() const { return sample_count() == 0; }

  /// Columnar JSON: {"interval_s": ..., "t_s": [...], "series": {name:
  /// [...]}}. Series are the union of names seen across samples; points
  /// predating a metric's first appearance read 0.
  void fill_json(JsonValue& out) const;

 private:
  struct Sample {
    double t_s;
    std::vector<std::pair<std::string, std::uint64_t>> values;
  };

  void sample_locked(double now_s);

  MetricsRegistry* metrics_;
  std::atomic<std::uint64_t> last_bits_;  // bit pattern of last sample time
  std::atomic<bool> has_samples_{false};

  mutable std::mutex mutex_;
  double interval_s_ = kDefaultIntervalS;
  std::vector<Sample> samples_;
  std::function<void(double)> sample_hook_;
};

}  // namespace aadedupe::telemetry
