// Prometheus text-format (0.0.4) exposition of a MetricsSnapshot.
//
// The run report is a one-shot end-of-session artifact; a scraping
// monitoring stack wants the *live* registry in the standard text
// format. This writer renders a snapshot as metric families:
//
//   counters/gauges  -> one sample per label set
//   log2 histograms  -> cumulative `le` buckets + _sum/_count
//   quantile sketches-> summary with quantile="0.5|0.9|0.95|0.99"
//                       labels + _sum/_count
//
// Metric names are sanitized to the Prometheus charset (dots become
// underscores, a configurable prefix namespaces the fleet) and labeled
// variants of the same base name are grouped under one # TYPE header, so
// per-tenant instruments expose as one family with a `tenant` label —
// exactly what fleet dashboards aggregate over.
//
// bench::Observability dumps this periodically through the Timeline
// sample hook (AAD_PROM_OUT), giving a scrape-file bridge without an
// HTTP listener in the library.
#pragma once

#include <string>
#include <string_view>

namespace aadedupe::telemetry {

struct MetricsSnapshot;

/// A metric/label name restricted to [a-zA-Z0-9_:] with a non-digit
/// first character (every other byte becomes '_').
[[nodiscard]] std::string prometheus_sanitize(std::string_view name);

/// Render the whole snapshot, `prefix` prepended to every family name.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snapshot,
                                             std::string_view prefix = "aad_");

}  // namespace aadedupe::telemetry
