// HealthMonitor — the live health verdict behind the ops plane.
//
// Three concerns, one object, because all three feed the same /healthz
// answer:
//
//   * Stage stall watchdog. The Tracer mirrors span open/close into
//     per-stage atomic state (live-span count + last-activity time);
//     layers whose spans legitimately sit open for a long time (the
//     upload retry loop) call heartbeat() to refresh activity without
//     closing the span. tick() — driven by the ops server's accept-loop
//     cadence and the Timeline sample hook — compares each stage's idle
//     time against its deadline: a stage with live spans and no activity
//     past the deadline is STALLED, which flips the verdict to degraded,
//     logs a warning, and fires one rate-limited flight-recorder dump
//     (so a hung uploader leaves a post-mortem artifact even if nobody
//     is curling /healthz). Renewed activity clears the stall.
//
//   * SLO burn rates. Each completed backup session reports its window
//     (BWS) and saved-bytes rate (DE) per tenant; the monitor keeps the
//     observations in two rolling windows — fast (~5 min) and slow
//     (~1 h) — and computes Google-SRE-style burn rates: the fraction of
//     sessions violating the objective divided by the error budget. A
//     fast burn over the alert threshold degrades the verdict (the
//     fleet is burning budget *now*); the slow burn is reported for
//     trend reading but does not alert on its own.
//
//   * Recent-span ring. The last few completed spans per stage, in a
//     fixed ring, so /tracez can show what the pipeline just did without
//     unbounded retention.
//
// Hot-path cost: span open/close touch two relaxed atomics plus one
// uncontended per-stage mutex for the ring (bounded memcpy, no
// allocation) — measured inside the ops-plane overhead gate
// (`ops_overhead_pct_cdc_fingerprint` ≤ 1%).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.hpp"

namespace aadedupe::telemetry {

class JsonValue;
struct Telemetry;

/// Number of Stage enumerators (the watchdog keeps a slot per stage).
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kMetadataSync) + 1;

/// Per-tenant service-level objectives. A zero threshold disables that
/// objective (the monitor then never counts it as violated).
struct SloObjectives {
  double backup_window_s = 0.0;    // session must finish within this
  double bytes_saved_per_s = 0.0;  // session DE must reach this
};

struct HealthMonitorOptions {
  /// Objectives applied to every tenant (per-tenant overrides via
  /// set_objectives).
  SloObjectives slo;
  /// Rolling-window spans for the burn-rate pair.
  double fast_window_s = 300.0;
  double slow_window_s = 3600.0;
  /// Tolerated violation fraction (SRE error budget). Burn rate 1.0
  /// means violations are arriving exactly at budget.
  double error_budget = 0.10;
  /// Fast burn rate at or above which the verdict degrades.
  double fast_burn_alert = 2.0;
  /// Stall deadline applied to stages without an override.
  double default_stall_deadline_s = 30.0;
  /// Minimum spacing between watchdog-triggered flight dumps.
  double flight_dump_min_interval_s = 300.0;
  /// Completed spans retained per stage for /tracez.
  std::size_t recent_spans_per_stage = 8;
};

class HealthMonitor {
 public:
  /// Category bytes kept per recent span (truncating, like the flight
  /// recorder's fixed slots — ring writes never allocate).
  static constexpr std::size_t kCategoryBytes = 24;

  /// Attaches to `telemetry`: sets telemetry.health, registers with the
  /// tracer so spans report in, and shares the tracer's clock. The
  /// monitor must outlive every span opened while attached; the
  /// destructor detaches.
  explicit HealthMonitor(Telemetry& telemetry,
                         HealthMonitorOptions options = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // --- watchdog feed (called by TraceSpan via the tracer hook) ---------
  void on_span_open(Stage stage, double now_s) noexcept;
  void on_span_close(Stage stage, std::string_view category, double start_s,
                     double wall_s) noexcept;
  /// Refresh a stage's activity without span churn — for long-lived
  /// spans that are making progress (per upload attempt, per retry).
  void heartbeat(Stage stage) noexcept;

  /// Override one stage's stall deadline (seconds; <= 0 restores the
  /// default).
  void set_stall_deadline(Stage stage, double seconds);

  /// Evaluate stall deadlines at `now_s` (tracer-clock seconds). Called
  /// from the ops server's accept-loop tick and the Timeline sample
  /// hook; cheap enough for either cadence.
  void tick(double now_s);

  // --- SLO feed --------------------------------------------------------
  /// Per-tenant objective override (empty tenant = the shared default).
  void set_objectives(std::string_view tenant, SloObjectives slo);

  /// Record one completed session's SLO-relevant outcomes. Timestamped
  /// from the shared tracer clock.
  void record_session(std::string_view tenant, double backup_window_s,
                      double bytes_saved_per_s);

  // --- verdict / export ------------------------------------------------
  struct Verdict {
    bool degraded = false;
    std::vector<std::string> reasons;  // empty when healthy
  };
  [[nodiscard]] Verdict verdict() const;

  /// {"status","reasons","stages":{...},"slo":{...}} — the /healthz body.
  void fill_healthz_json(JsonValue& out) const;
  /// {"stages":[{"stage","recent":[{...} ...]}]} — the /tracez body.
  void fill_tracez_json(JsonValue& out) const;

  /// Watchdog-triggered flight dumps so far (tests assert exactly one).
  [[nodiscard]] std::uint64_t stall_dump_count() const noexcept {
    return stall_dumps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool any_stage_stalled() const noexcept;

 private:
  struct StageWatch {
    std::atomic<std::uint64_t> live{0};
    std::atomic<std::uint64_t> last_activity_bits{0};  // double bit pattern
    std::atomic<std::uint64_t> opened{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<bool> stalled{false};
  };

  struct RecentSpan {
    double start_s = 0.0;
    double wall_s = 0.0;
    char category[kCategoryBytes] = {};
  };
  struct StageRing {
    mutable std::mutex mutex;
    std::uint64_t cursor = 0;  // spans ever written
    std::vector<RecentSpan> slots;
  };

  struct Observation {
    double t_s;
    bool violated;
  };
  struct TenantSlo {
    SloObjectives objectives;
    bool has_override = false;
    std::deque<Observation> window;  // pruned to slow_window_s
    std::uint64_t sessions = 0;
    std::uint64_t violations = 0;
  };
  struct BurnRates {
    double fast = 0.0;
    double slow = 0.0;
    std::size_t fast_n = 0;
    std::size_t slow_n = 0;
  };

  [[nodiscard]] double now() const;
  [[nodiscard]] double deadline_for(std::size_t stage) const;
  [[nodiscard]] BurnRates burn_rates_locked(const TenantSlo& tenant,
                                            double now_s) const;
  void touch(Stage stage, double now_s) noexcept;

  Telemetry& telemetry_;
  const HealthMonitorOptions options_;

  std::array<StageWatch, kStageCount> stages_;
  std::array<StageRing, kStageCount> rings_;

  mutable std::mutex mutex_;  // guards deadlines_ and tenants_
  std::array<double, kStageCount> deadlines_;
  std::map<std::string, TenantSlo, std::less<>> tenants_;

  std::atomic<std::uint64_t> stall_dumps_{0};
  std::atomic<std::uint64_t> last_dump_bits_{0};  // double bit pattern
  std::atomic<bool> ever_dumped_{false};
};

}  // namespace aadedupe::telemetry
