// Span-attributed sampling profiler (ITIMER_PROF / SIGPROF).
//
// Answers "where does the CPU time actually go" without symbolization,
// debug info, or an external tool: every SIGPROF tick the handler walks
// the calling thread's live TraceSpan chain (trace.hpp publishes spans to
// a thread-local list only after full construction, so the walk is
// async-signal-safe on the owning thread) and records the stage stack
// plus the innermost span's application category. Folded-stack output —
// `session;chunk;fingerprint@doc 42` — feeds any flamegraph renderer
// directly and `tools/report.py flame` renders it in the terminal.
//
// ITIMER_PROF counts *process CPU time*, so a 10 ms period (~97 Hz
// default, a prime-ish rate that avoids phase-locking with millisecond
// schedulers) costs one tiny handler per 10 ms of CPU burned regardless
// of thread count — overhead is bounded well under the 2% budget that
// bench_fingerprint measures and report.py perf-gate enforces.
//
// Handler discipline: the SIGPROF handler reads one global atomic, walks
// thread-local memory, copies into a preallocated slot claimed by an
// atomic cursor, and publishes it with a release store. No allocation, no
// locks, no library calls; errno is saved and restored. Samples that
// arrive when the buffer is full are counted and dropped.
//
// One profiler may be active per process at a time (SIGPROF has a single
// disposition); start() throws if another instance is running.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace aadedupe::telemetry {

class JsonValue;

class SpanProfiler {
 public:
  /// Default sampling period: ~97 Hz of process CPU time.
  static constexpr std::uint64_t kDefaultPeriodUs = 10300;
  static constexpr std::size_t kMaxDepth = 16;       // span stack frames kept
  static constexpr std::size_t kMaxCategory = 23;    // leaf category chars
  static constexpr std::size_t kCapacity = 1 << 16;  // preallocated samples

  explicit SpanProfiler(std::uint64_t period_us = kDefaultPeriodUs);
  ~SpanProfiler();

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Install the SIGPROF handler and arm ITIMER_PROF. Throws
  /// PreconditionError when a profiler is already active in this process.
  void start();

  /// Disarm the timer, restore the previous SIGPROF disposition, and
  /// quiesce in-flight handler invocations. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Folded stacks -> sample counts, e.g. "session;chunk@doc" -> 42.
  /// Samples taken outside any span fold to "untraced". Call after
  /// stop() (or live: only published samples are read).
  [[nodiscard]] std::map<std::string, std::uint64_t> fold() const;

  /// Render fold() in the standard folded-stack text format, one
  /// `stack count` line per entry, sorted by stack for determinism.
  [[nodiscard]] std::string folded_text() const;

  [[nodiscard]] std::uint64_t sample_count() const noexcept;
  [[nodiscard]] std::uint64_t dropped_count() const noexcept;
  [[nodiscard]] std::uint64_t period_us() const noexcept { return period_us_; }

  /// Summary object: {period_us, samples, dropped, folded:{stack:count}}.
  void fill_json(JsonValue& out) const;

 private:
  struct Sample {
    std::uint8_t depth;                  // 0 => untraced tick
    std::uint8_t truncated;              // stack deeper than kMaxDepth
    std::uint8_t stages[kMaxDepth];      // root ... leaf Stage values
    char category[kMaxCategory + 1];     // leaf span category, NUL-padded
    std::atomic<std::uint8_t> ready{0};  // release-published by the handler
  };

  static void handle_sigprof(int signum);

  const std::uint64_t period_us_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> cursor_{0};   // total accepted samples
  std::atomic<std::uint64_t> dropped_{0};  // buffer-full ticks
  Sample* samples_;                        // [kCapacity], heap-preallocated
};

}  // namespace aadedupe::telemetry
