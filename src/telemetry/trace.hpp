// Scoped trace spans over the deduplication pipeline stages.
//
// A TraceSpan measures the wall time of one stage execution (RAII) and
// attributes it to a (stage, application-category) row. Nested spans
// subtract their time from the parent's *self* time, so a session span's
// self row shows only un-instrumented glue, not the chunking underneath
// it. Simulated durations (retry backoff, modeled disk seeks) are
// recorded on the same rows via record_sim — the SimClock regime and the
// wall clock stay separately visible.
//
// Aggregation is per-thread (each thread owns a shard guarded by a mutex
// that is only ever contended by snapshot()), so span completion never
// blocks another worker. With a null Tracer pointer every operation is a
// no-op — the instrumented pipeline pays one branch.
//
// Opt-in JSONL span events: install an event sink and every span end
// emits one compact JSON line (stage, category, start, durations,
// thread) for timeline tooling. The sink is caller-supplied — library
// code never writes to stdout.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aadedupe::telemetry {

class FlightRecorder;
class HealthMonitor;
class JsonValue;

/// Pipeline stages instrumented across the backup path.
enum class Stage : std::uint8_t {
  kSession,       // whole run_session body
  kClassify,      // routing files to application streams
  kChunk,         // splitting file content into chunks
  kFingerprint,   // hashing chunks (Rabin-96 / MD5 / SHA-1)
  kIndexLookup,   // probing the application-aware index
  kContainerPack, // appending new chunks to the open container
  kUpload,        // shipping one object through the transport stack
  kRetryWait,     // simulated backoff between transport retries
  kJournalReplay, // re-shipping a previous degraded session's debt
  kMetadataSync,  // recipes / index image / key store sync
};

[[nodiscard]] std::string_view to_string(Stage stage) noexcept;

/// One aggregated (stage, category) row.
struct StageRow {
  std::uint64_t count = 0;
  double wall_s = 0.0;  // total wall time, children included
  double self_s = 0.0;  // wall time minus instrumented children
  double sim_s = 0.0;   // simulated time charged to this stage
};

using StageKey = std::pair<Stage, std::string>;

/// One completed span, as structured data (what the JSONL event sink sees
/// as text). Fed to the span sink for in-process consumers — notably the
/// Chrome-trace exporter (trace_export.hpp). The category view borrows
/// the span's storage and is only valid during the sink call.
struct SpanEvent {
  Stage stage = Stage::kSession;
  std::string_view category;
  double start_s = 0.0;
  double wall_s = 0.0;
  double self_s = 0.0;
  double sim_s = 0.0;
  std::uint32_t thread = 0;  // hashed thread id
};

class Tracer {
 public:
  using Clock = std::function<double()>;  // seconds, monotonic
  using EventSink = std::function<void(const std::string& jsonl_line)>;

  /// Default: wall clock (steady_clock seconds since construction).
  Tracer();
  /// Injectable clock for deterministic tests.
  explicit Tracer(Clock clock);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install a JSONL span-event sink (opt-in verbosity). The sink is
  /// invoked under a mutex — it may write to a stream without its own
  /// locking. Pass nullptr to disable.
  void set_event_sink(EventSink sink);

  /// Install a structured span sink (same mutex discipline as the JSONL
  /// sink; both may be active at once). Pass nullptr to disable.
  using SpanSink = std::function<void(const SpanEvent&)>;
  void set_span_sink(SpanSink sink);

  /// Mirror span open/close markers into `recorder`'s per-thread rings so
  /// a flight dump shows what every thread was doing (nullptr detaches).
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_.store(recorder, std::memory_order_release);
  }

  /// Report span open/close to `health`'s stall watchdog and recent-span
  /// ring (nullptr detaches). Same lifetime contract as the flight
  /// recorder: the monitor must outlive every span opened while attached.
  void set_health_monitor(HealthMonitor* health) noexcept {
    health_.store(health, std::memory_order_release);
  }

  /// Record a completed measurement directly (no RAII). The duration is
  /// attributed to the enclosing span's children, exactly as a nested
  /// TraceSpan would be, so self-time accounting stays consistent.
  void record(Stage stage, std::string_view category, double wall_s,
              std::uint64_t count = 1);

  /// Charge simulated seconds (SimClock regime) to a stage row.
  void record_sim(Stage stage, std::string_view category, double sim_s);

  /// Merged rows, keyed by (stage, category), stage-ordered.
  [[nodiscard]] std::map<StageKey, StageRow> snapshot() const;

  /// Rows as a JSON array: [{stage, category, count, wall_s, self_s,
  /// sim_s} ...].
  void fill_json(JsonValue& out) const;

  [[nodiscard]] double now() const { return clock_(); }

 private:
  friend class TraceSpan;

  struct Shard {
    std::mutex mutex;
    std::map<StageKey, StageRow> rows;
  };

  void record_row(Stage stage, std::string_view category, std::uint64_t count,
                  double wall_s, double self_s, double sim_s);
  void emit_event(Stage stage, std::string_view category, double start_s,
                  double wall_s, double self_s, double sim_s);
  void emit_span(const SpanEvent& event);
  Shard& local_shard();

  Clock clock_;
  const std::uint64_t id_;  // process-unique; keys the thread-local cache

  mutable std::mutex mutex_;  // guards shards_ list and both sinks
  std::vector<std::unique_ptr<Shard>> shards_;
  EventSink event_sink_;
  SpanSink span_sink_;
  std::atomic<bool> events_enabled_{false};  // lock-free fast-path check
  std::atomic<bool> spans_enabled_{false};
  std::atomic<FlightRecorder*> recorder_{nullptr};
  std::atomic<HealthMonitor*> health_{nullptr};
};

/// RAII stage span. Null tracer => inert.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, Stage stage, std::string_view category = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Charge simulated seconds to this span's row (recorded at span end).
  void add_sim_seconds(double seconds) noexcept { sim_s_ += seconds; }

  /// End the span early (idempotent; the destructor becomes a no-op).
  void finish();

  // Read-only structure accessors for the sampling profiler: a SIGPROF
  // handler walks the same-thread span chain, so these must touch only
  // memory that is immutable once the span is published (stage_ and
  // category_ are set before `this` becomes the thread's current span,
  // and never change afterwards). async-signal-safe on the owning thread.
  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  [[nodiscard]] const char* category_c_str() const noexcept {
    return category_.c_str();
  }
  [[nodiscard]] const TraceSpan* parent() const noexcept { return parent_; }

 private:
  friend class Tracer;

  Tracer* tracer_;
  Stage stage_;
  std::string category_;
  double start_s_ = 0.0;
  double child_wall_s_ = 0.0;  // accumulated by nested spans / record()
  double sim_s_ = 0.0;
  TraceSpan* parent_ = nullptr;  // enclosing span on this thread
};

/// The calling thread's innermost live span (nullptr outside any span).
/// Safe to call from a signal handler delivered to this thread: spans are
/// published to the thread-local chain only after full construction and
/// unlinked before destruction, so the chain is always walkable.
[[nodiscard]] const TraceSpan* current_thread_span() noexcept;

}  // namespace aadedupe::telemetry
