#include "telemetry/profiler.hpp"

#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

namespace {

/// The one active profiler (SIGPROF has a single process-wide
/// disposition). Written by start()/stop(), acquire-read by the handler.
std::atomic<SpanProfiler*> g_active{nullptr};

/// Previous SIGPROF disposition, restored by stop(). Only valid while a
/// profiler is active, which start() guarantees is exclusive.
struct sigaction g_previous_action;

}  // namespace

SpanProfiler::SpanProfiler(std::uint64_t period_us)
    : period_us_(period_us), samples_(new Sample[kCapacity]) {
  AAD_EXPECTS(period_us > 0);
}

SpanProfiler::~SpanProfiler() {
  stop();
  delete[] samples_;
}

void SpanProfiler::handle_sigprof(int /*signum*/) {
  const int saved_errno = errno;
  SpanProfiler* self = g_active.load(std::memory_order_acquire);
  if (self != nullptr) {
    const std::uint64_t slot =
        self->cursor_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= kCapacity) {
      self->dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      Sample& sample = self->samples_[slot];
      // Collect leaf -> root, bounded; the chain only contains fully
      // constructed spans of this thread (see trace.hpp).
      const TraceSpan* frames[kMaxDepth];
      std::size_t depth = 0;
      bool truncated = false;
      for (const TraceSpan* span = current_thread_span(); span != nullptr;
           span = span->parent()) {
        if (depth == kMaxDepth) {
          truncated = true;
          break;
        }
        frames[depth++] = span;
      }
      for (std::size_t i = 0; i < depth; ++i) {
        sample.stages[i] =
            static_cast<std::uint8_t>(frames[depth - 1 - i]->stage());
      }
      sample.depth = static_cast<std::uint8_t>(depth);
      sample.truncated = truncated ? 1 : 0;
      sample.category[0] = '\0';
      if (depth > 0) {
        const char* category = frames[0]->category_c_str();
        std::size_t n = 0;
        while (n < kMaxCategory && category[n] != '\0') {
          sample.category[n] = category[n];
          ++n;
        }
        sample.category[n] = '\0';
      }
      sample.ready.store(1, std::memory_order_release);
    }
  }
  errno = saved_errno;
}

void SpanProfiler::start() {
  AAD_EXPECTS(!running_.load(std::memory_order_relaxed));
  SpanProfiler* expected = nullptr;
  // Only one SIGPROF disposition exists per process.
  AAD_EXPECTS(g_active.compare_exchange_strong(expected, this,
                                               std::memory_order_acq_rel));
  // Only slots claimed by a previous run carry stale ready flags (the
  // array starts zeroed), so a restart clears min(cursor, capacity)
  // flags — nothing on first start. This keeps start()/stop() cheap
  // enough to toggle around measured regions (bench_fingerprint's
  // profiler-overhead probe interleaves profiled and bare blocks).
  const std::uint64_t used = std::min<std::uint64_t>(
      cursor_.load(std::memory_order_relaxed), kCapacity);
  for (std::uint64_t i = 0; i < used; ++i) {
    samples_[i].ready.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  struct sigaction action = {};
  action.sa_handler = &SpanProfiler::handle_sigprof;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  AAD_ENSURES(sigaction(SIGPROF, &action, &g_previous_action) == 0);

  itimerval timer = {};
  timer.it_interval.tv_sec = static_cast<time_t>(period_us_ / 1000000);
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(period_us_ % 1000000);
  timer.it_value = timer.it_interval;
  AAD_ENSURES(setitimer(ITIMER_PROF, &timer, nullptr) == 0);
  running_.store(true, std::memory_order_release);
}

void SpanProfiler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  itimerval off = {};
  AAD_ENSURES(setitimer(ITIMER_PROF, &off, nullptr) == 0);
  // Detach before restoring the disposition: a tick already in flight on
  // another thread sees nullptr and becomes a no-op; one that claimed a
  // slot earlier publishes it with a release store that fold() observes.
  g_active.store(nullptr, std::memory_order_release);
  AAD_ENSURES(sigaction(SIGPROF, &g_previous_action, nullptr) == 0);
}

bool SpanProfiler::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t SpanProfiler::sample_count() const noexcept {
  return std::min<std::uint64_t>(cursor_.load(std::memory_order_relaxed),
                                 kCapacity);
}

std::uint64_t SpanProfiler::dropped_count() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> SpanProfiler::fold() const {
  std::map<std::string, std::uint64_t> folded;
  const std::uint64_t n = sample_count();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Sample& sample = samples_[i];
    if (sample.ready.load(std::memory_order_acquire) == 0) continue;
    std::string stack;
    if (sample.depth == 0) {
      stack = "untraced";
    } else {
      for (std::size_t d = 0; d < sample.depth; ++d) {
        if (d != 0) stack += ';';
        stack += to_string(static_cast<Stage>(sample.stages[d]));
      }
      if (sample.category[0] != '\0') {
        stack += '@';
        stack += sample.category;
      }
      if (sample.truncated != 0) stack += ";...";
    }
    ++folded[stack];
  }
  return folded;
}

std::string SpanProfiler::folded_text() const {
  std::string out;
  for (const auto& [stack, count] : fold()) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void SpanProfiler::fill_json(JsonValue& out) const {
  out.make_object();
  out["period_us"] = period_us_;
  out["samples"] = sample_count();
  out["dropped"] = dropped_count();
  JsonValue& folded = out["folded"].make_object();
  for (const auto& [stack, count] : fold()) folded[stack] = count;
}

}  // namespace aadedupe::telemetry
