// Mergeable quantile sketch (DDSketch-style) for fleet observability.
//
// The log2 histograms in MetricsRegistry answer "what order of magnitude"
// with a factor-of-two error — good enough for byte sizes, useless for
// tail latency and for the paper's derived metrics (BWS, DR, DE) where
// p95/p99 must be trusted to a percent. A QuantileSketch buckets values
// on a geometric grid with ratio gamma = (1+a)/(1-a), so every quantile
// estimate is within relative error `a` (default 1%) of the true value.
//
// The property that makes it *fleet-grade*: two sketches built with the
// same accuracy share the same grid, so merging is exact bucket-wise
// integer addition — associative and commutative, with no re-sampling
// error. A per-tenant sketch embedded in each run report can therefore be
// merged across N sessions (or N machines) by tools/report.py `aggregate`
// and yield byte-identical bucket counts to a sketch that saw the whole
// stream. Registry sharding (one sketch shard per writer thread, merged
// at snapshot time) is the same idea applied inside one process.
//
// Values are non-negative reals (durations, ratios, byte counts): zero
// and any value too small to index land in a dedicated zero bucket;
// negative inputs are clamped to zero (none of the instrumented series
// can legitimately go negative). min/max are tracked exactly, so
// quantile(0)/quantile(1) are exact and interior estimates are clamped
// into [min, max].
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace aadedupe::telemetry {

class JsonValue;

class QuantileSketch {
 public:
  /// Default relative accuracy: 1%, the acceptance bar for fleet
  /// percentile reporting (ISSUE 9 / ROADMAP item 3).
  static constexpr double kDefaultRelativeAccuracy = 0.01;

  /// Values below this threshold are counted in the zero bucket. Keeps
  /// bucket indices small and treats denormal noise as zero.
  static constexpr double kMinIndexable = 1e-12;

  explicit QuantileSketch(
      double relative_accuracy = kDefaultRelativeAccuracy);

  /// Record one observation. Negative values count as zero.
  void observe(double value);

  /// Fold `other` into this sketch. Exact (integer bucket addition);
  /// throws PreconditionError when the accuracies differ (different
  /// grids cannot be merged without re-sampling error).
  void merge(const QuantileSketch& other);

  /// Quantile estimate for q in [0, 1]; 0 on an empty sketch. Guaranteed
  /// within `relative_accuracy()` of the exact order statistic; q == 0
  /// and q == 1 return the exact min/max.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept;  // 0 when empty
  [[nodiscard]] double max() const noexcept;  // 0 when empty
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double relative_accuracy() const noexcept { return alpha_; }

  /// The representative value reported for bucket `index` (the midpoint
  /// of the bucket's value range, which bounds the relative error by
  /// alpha). Exposed so tools/report.py can evaluate merged sketches
  /// with the same arithmetic.
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  /// Geometric bucket counts, keyed by grid index (ascending). Exposed
  /// for merge/shard equality tests and the JSON encoding.
  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& buckets()
      const noexcept {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t zero_count() const noexcept {
    return zero_count_;
  }

  /// Identical grids (same accuracy), identical counts. Sums may differ
  /// in the last ulp depending on accumulation order, so equality is
  /// deliberately count-based: two equal sketches report identical
  /// quantiles.
  [[nodiscard]] bool same_distribution(const QuantileSketch& other) const;

  /// Self-describing JSON: summary fields (count/sum/min/max/mean and
  /// p50/p90/p95/p99) plus the exact encoding (alpha, zeros, idx[],
  /// cnt[]) that report.py `aggregate` merges without loss.
  void fill_json(JsonValue& out) const;

 private:
  [[nodiscard]] std::int32_t bucket_index(double value) const;

  double alpha_;
  double gamma_;          // bucket ratio (1+a)/(1-a)
  double inv_log_gamma_;  // 1 / ln(gamma)
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid iff count_ > 0
  double max_ = 0.0;
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace aadedupe::telemetry
