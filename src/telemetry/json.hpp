// Minimal ordered JSON document model for the telemetry run report.
//
// Deliberately write-only: the library builds and serializes reports, it
// never parses them (tools/report.py does the reading). Object members
// keep insertion order so reports diff cleanly between runs, and number
// formatting is deterministic so byte-identical inputs produce
// byte-identical artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aadedupe::telemetry {

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kUint,    // unsigned 64-bit (counters, byte totals)
    kInt,     // signed 64-bit
    kDouble,  // seconds, ratios
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  // Scalar constructors (implicit, so `obj["k"] = 3.5;` reads naturally).
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}          // NOLINT
  JsonValue(std::uint64_t value) : type_(Type::kUint), uint_(value) {} // NOLINT
  JsonValue(std::int64_t value) : type_(Type::kInt), int_(value) {}    // NOLINT
  JsonValue(int value)                                                 // NOLINT
      : type_(Type::kInt), int_(value) {}
  JsonValue(unsigned value)                                            // NOLINT
      : type_(Type::kUint), uint_(value) {}
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}    // NOLINT
  JsonValue(std::string value)                                         // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)                                    // NOLINT
      : type_(Type::kString), string_(value) {}
  JsonValue(const char* value)                                         // NOLINT
      : type_(Type::kString), string_(value) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Object member access; creates the member (and coerces a null value to
  /// an object) on first use. Throws PreconditionError when called on a
  /// non-object, non-null value.
  JsonValue& operator[](std::string_view key);

  /// Existing member, or nullptr. Never mutates.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Append to an array (coerces a null value to an array on first use).
  JsonValue& push_back(JsonValue element);

  /// Scalar readers (for tests asserting on a built report). Throw
  /// PreconditionError on type mismatch, except as_double which also
  /// accepts integer values.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const std::vector<JsonValue>& array_items() const {
    return array_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  object_items() const {
    return object_;
  }

  /// Serialize. indent > 0 pretty-prints with that many spaces per level;
  /// indent == 0 produces a single compact line (used for JSONL events).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Make this value an empty object/array explicitly (so empty sections
  /// serialize as {} rather than null).
  JsonValue& make_object();
  JsonValue& make_array();

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// JSON string escaping (exposed for the JSONL span-event writer).
void json_escape(std::string& out, std::string_view text);

}  // namespace aadedupe::telemetry
