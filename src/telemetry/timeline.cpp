#include "telemetry/timeline.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

namespace {

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

Timeline::Timeline(MetricsRegistry* metrics)
    : metrics_(metrics), last_bits_(double_bits(0.0)) {}

void Timeline::bind(MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  metrics_ = metrics;
}

void Timeline::set_interval(double seconds) {
  AAD_EXPECTS(seconds > 0.0);
  std::lock_guard lock(mutex_);
  interval_s_ = seconds;
}

double Timeline::interval() const {
  std::lock_guard lock(mutex_);
  return interval_s_;
}

bool Timeline::maybe_sample(double now_s) {
  // Cheap rejection without the mutex: callers heartbeat this from hot
  // batch loops. The racy window can at worst take one extra sample.
  if (has_samples_.load(std::memory_order_relaxed)) {
    const double last = bits_double(last_bits_.load(std::memory_order_relaxed));
    // Approximate interval check — a racing sampler costs at most one
    // extra point; the authoritative check below settles it.
    if (now_s < last + interval()) return false;
  }
  std::function<void(double)> hook;
  {
    std::lock_guard lock(mutex_);
    if (!samples_.empty() && now_s < samples_.back().t_s + interval_s_) {
      return false;
    }
    sample_locked(now_s);
    hook = sample_hook_;
  }
  if (hook) hook(now_s);
  return true;
}

void Timeline::force_sample(double now_s) {
  std::function<void(double)> hook;
  {
    std::lock_guard lock(mutex_);
    sample_locked(now_s);
    hook = sample_hook_;
  }
  if (hook) hook(now_s);
}

void Timeline::set_sample_hook(std::function<void(double)> hook) {
  std::lock_guard lock(mutex_);
  sample_hook_ = std::move(hook);
}

void Timeline::sample_locked(double now_s) {
  if (metrics_ == nullptr) return;
  Sample sample;
  sample.t_s = now_s;
  const MetricsSnapshot snap = metrics_->snapshot();
  sample.values.reserve(snap.entries.size());
  for (const MetricsSnapshot::Entry& entry : snap.entries) {
    if (entry.kind == MetricKind::kHistogram ||
        entry.kind == MetricKind::kSketch) {
      continue;  // per-point cost/size dwarfs a scalar's
    }
    sample.values.emplace_back(entry.name, entry.value);
  }
  samples_.push_back(std::move(sample));
  last_bits_.store(double_bits(now_s), std::memory_order_relaxed);
  has_samples_.store(true, std::memory_order_relaxed);
  if (samples_.size() > kMaxSamples) {
    // Thin: keep every other point, double the interval. Coverage stays
    // even; resolution halves; memory stays bounded.
    std::vector<Sample> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      kept.push_back(std::move(samples_[i]));
    }
    samples_ = std::move(kept);
    interval_s_ *= 2.0;
  }
}

std::size_t Timeline::sample_count() const {
  std::lock_guard lock(mutex_);
  return samples_.size();
}

void Timeline::fill_json(JsonValue& out) const {
  std::lock_guard lock(mutex_);
  out["interval_s"] = interval_s_;
  JsonValue& times = out["t_s"].make_array();
  // Union of metric names across samples, in first-appearance order.
  std::vector<std::string> names;
  std::map<std::string, std::size_t> index;
  for (const Sample& sample : samples_) {
    for (const auto& [name, value] : sample.values) {
      if (index.emplace(name, names.size()).second) names.push_back(name);
    }
  }
  std::vector<std::vector<std::uint64_t>> columns(
      names.size(), std::vector<std::uint64_t>(samples_.size(), 0));
  for (std::size_t s = 0; s < samples_.size(); ++s) {
    times.push_back(samples_[s].t_s);
    for (const auto& [name, value] : samples_[s].values) {
      columns[index[name]][s] = value;
    }
  }
  JsonValue& series = out["series"].make_object();
  for (std::size_t n = 0; n < names.size(); ++n) {
    JsonValue& column = series[names[n]].make_array();
    for (const std::uint64_t value : columns[n]) column.push_back(value);
  }
}

}  // namespace aadedupe::telemetry
