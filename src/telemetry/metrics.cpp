#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

std::size_t histogram_bucket(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_upper(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::string encode_metric_name(std::string_view base,
                               const MetricLabels& labels) {
  AAD_EXPECTS(!base.empty());
  if (labels.empty()) return std::string(base);
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [key, value] : sorted) {
    AAD_EXPECTS(!key.empty());
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return histogram_bucket_upper(b);
  }
  return histogram_bucket_upper(buckets.size() - 1);
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    std::string_view name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  const Entry* entry = find(name);
  return entry == nullptr ? 0 : entry->value;
}

void MetricsSnapshot::fill_json(JsonValue& out) const {
  out.make_object();
  for (const Entry& entry : entries) {
    switch (entry.kind) {
      case MetricKind::kHistogram: {
        JsonValue& h = out[entry.name].make_object();
        h["count"] = entry.histogram.count;
        h["sum"] = entry.histogram.sum;
        h["mean"] = entry.histogram.mean();
        h["p50"] = entry.histogram.percentile(50.0);
        h["p90"] = entry.histogram.percentile(90.0);
        h["p99"] = entry.histogram.percentile(99.0);
        break;
      }
      case MetricKind::kSketch:
        entry.sketch.fill_json(out[entry.name]);
        break;
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out[entry.name] = entry.value;
        break;
    }
  }
}

namespace {
std::atomic<std::uint64_t> g_next_registry_id{1};

/// Thread-local shard cache: (registry id -> shard). Ids are process-
/// unique and never reused, so an entry for a destroyed registry can
/// never be matched (and is never dereferenced).
struct ShardRef {
  std::uint64_t registry_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_shard_cache;

/// Same idea for sketch shards, keyed by (registry id, sketch index).
struct SketchRef {
  std::uint64_t registry_id;
  std::uint32_t index;
  void* shard;
};
thread_local std::vector<SketchRef> t_sketch_cache;
}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t slot_capacity)
    : slot_capacity_(slot_capacity),
      id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {
  AAD_EXPECTS(slot_capacity >= kHistogramBuckets + 1);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const ShardRef& ref : t_shard_cache) {
    if (ref.registry_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  std::lock_guard lock(mutex_);
  shards_.push_back(std::make_unique<Shard>(slot_capacity_));
  Shard* shard = shards_.back().get();
  t_shard_cache.push_back(ShardRef{id_, shard});
  return *shard;
}

MetricsRegistry::SketchShard& MetricsRegistry::local_sketch_shard(
    std::uint32_t index) {
  for (const SketchRef& ref : t_sketch_cache) {
    if (ref.registry_id == id_ && ref.index == index) {
      return *static_cast<SketchShard*>(ref.shard);
    }
  }
  std::lock_guard lock(mutex_);
  AAD_EXPECTS(index < sketches_.size());
  SketchInstrument& instrument = *sketches_[index];
  instrument.shards.push_back(
      std::make_unique<SketchShard>(instrument.relative_accuracy));
  SketchShard* shard = instrument.shards.back().get();
  t_sketch_cache.push_back(SketchRef{id_, index, shard});
  return *shard;
}

void MetricsRegistry::observe_sketch(std::uint32_t index, double value) {
  SketchShard& shard = local_sketch_shard(index);
  std::lock_guard lock(shard.mutex);
  shard.sketch.observe(value);
}

std::uint32_t MetricsRegistry::register_instrument(std::string_view base,
                                                   const MetricLabels& labels,
                                                   MetricKind kind,
                                                   std::uint32_t width) {
  std::string name = encode_metric_name(base, labels);
  std::lock_guard lock(mutex_);
  for (const Instrument& instrument : instruments_) {
    if (instrument.name == name) {
      AAD_EXPECTS(instrument.kind == kind);
      return instrument.base;
    }
  }
  for (const auto& sketch : sketches_) {
    AAD_EXPECTS(sketch->name != name);  // kind mismatch with a sketch
  }
  AAD_EXPECTS(slots_used_ + width <= slot_capacity_);
  const std::uint32_t slot = slots_used_;
  instruments_.push_back(Instrument{std::move(name), std::string(base), labels,
                                    kind, slot, width});
  slots_used_ += width;
  return slot;
}

Counter MetricsRegistry::counter(std::string_view name,
                                 const MetricLabels& labels) {
  return Counter{this,
                 register_instrument(name, labels, MetricKind::kCounter, 1)};
}

Gauge MetricsRegistry::gauge(std::string_view name,
                             const MetricLabels& labels) {
  return Gauge{this, register_instrument(name, labels, MetricKind::kGauge, 1)};
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     const MetricLabels& labels) {
  return Histogram{
      this, register_instrument(
                name, labels, MetricKind::kHistogram,
                static_cast<std::uint32_t>(kHistogramBuckets) + 1)};
}

Sketch MetricsRegistry::sketch(std::string_view name,
                               const MetricLabels& labels,
                               double relative_accuracy) {
  std::string canonical = encode_metric_name(name, labels);
  std::lock_guard lock(mutex_);
  for (std::uint32_t i = 0; i < sketches_.size(); ++i) {
    if (sketches_[i]->name == canonical) {
      AAD_EXPECTS(sketches_[i]->relative_accuracy == relative_accuracy);
      return Sketch{this, i};
    }
  }
  for (const Instrument& instrument : instruments_) {
    AAD_EXPECTS(instrument.name != canonical);  // kind mismatch
  }
  auto instrument = std::make_unique<SketchInstrument>();
  instrument->name = std::move(canonical);
  instrument->base_name = std::string(name);
  instrument->labels = labels;
  instrument->relative_accuracy = relative_accuracy;
  sketches_.push_back(std::move(instrument));
  return Sketch{this, static_cast<std::uint32_t>(sketches_.size() - 1)};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(instruments_.size() + sketches_.size());
  for (const Instrument& instrument : instruments_) {
    MetricsSnapshot::Entry entry;
    entry.name = instrument.name;
    entry.base_name = instrument.base_name;
    entry.labels = instrument.labels;
    entry.kind = instrument.kind;
    for (const auto& shard : shards_) {
      const auto slot = [&](std::uint32_t offset) {
        return shard->values[instrument.base + offset].load(
            std::memory_order_relaxed);
      };
      switch (instrument.kind) {
        case MetricKind::kCounter:
          entry.value += slot(0);
          break;
        case MetricKind::kGauge:
          entry.value = std::max(entry.value, slot(0));
          break;
        case MetricKind::kHistogram: {
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            const std::uint64_t n = slot(static_cast<std::uint32_t>(b));
            entry.histogram.buckets[b] += n;
            entry.histogram.count += n;
          }
          entry.histogram.sum +=
              slot(static_cast<std::uint32_t>(kHistogramBuckets));
          break;
        }
        case MetricKind::kSketch:
          break;  // sketches are not slot-table instruments
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  for (const auto& sketch : sketches_) {
    MetricsSnapshot::Entry entry;
    entry.name = sketch->name;
    entry.base_name = sketch->base_name;
    entry.labels = sketch->labels;
    entry.kind = MetricKind::kSketch;
    entry.sketch = QuantileSketch(sketch->relative_accuracy);
    for (const auto& shard : sketch->shards) {
      std::lock_guard shard_lock(shard->mutex);
      entry.sketch.merge(shard->sketch);
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

}  // namespace aadedupe::telemetry
