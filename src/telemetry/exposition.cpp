#include "telemetry/exposition.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace aadedupe::telemetry {

namespace {

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);  // matches the JSON writer
  out += buf;
}

/// `{k1="v1",k2="v2"}` with Prometheus label-value escaping; extra is an
/// optional pre-rendered pair ('le="42"') appended last.
void append_labels(std::string& out, const MetricLabels& labels,
                   std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_sanitize(key);
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
}

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kSketch:
      return "summary";
  }
  return "untyped";
}

void append_entry(std::string& out, const std::string& family,
                  const MetricsSnapshot::Entry& entry) {
  switch (entry.kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      out += family;
      append_labels(out, entry.labels);
      out += ' ';
      out += std::to_string(entry.value);
      out += '\n';
      break;
    case MetricKind::kHistogram: {
      // Cumulative `le` buckets; empty buckets are elided (the running
      // total is unchanged), +Inf always closes the family.
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
        if (entry.histogram.buckets[b] == 0) continue;
        cumulative += entry.histogram.buckets[b];
        out += family;
        out += "_bucket";
        std::string le =
            "le=\"" + std::to_string(histogram_bucket_upper(b)) + '"';
        append_labels(out, entry.labels, le);
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      out += family;
      out += "_bucket";
      append_labels(out, entry.labels, "le=\"+Inf\"");
      out += ' ';
      out += std::to_string(entry.histogram.count);
      out += '\n';
      out += family;
      out += "_sum";
      append_labels(out, entry.labels);
      out += ' ';
      out += std::to_string(entry.histogram.sum);
      out += '\n';
      out += family;
      out += "_count";
      append_labels(out, entry.labels);
      out += ' ';
      out += std::to_string(entry.histogram.count);
      out += '\n';
      break;
    }
    case MetricKind::kSketch: {
      static constexpr struct {
        const char* label;
        double q;
      } kQuantiles[] = {{"quantile=\"0.5\"", 0.50},
                        {"quantile=\"0.9\"", 0.90},
                        {"quantile=\"0.95\"", 0.95},
                        {"quantile=\"0.99\"", 0.99}};
      for (const auto& [label, q] : kQuantiles) {
        out += family;
        append_labels(out, entry.labels, label);
        out += ' ';
        append_double(out, entry.sketch.quantile(q));
        out += '\n';
      }
      out += family;
      out += "_sum";
      append_labels(out, entry.labels);
      out += ' ';
      append_double(out, entry.sketch.sum());
      out += '\n';
      out += family;
      out += "_count";
      append_labels(out, entry.labels);
      out += ' ';
      out += std::to_string(entry.sketch.count());
      out += '\n';
      break;
    }
  }
}

}  // namespace

std::string prometheus_sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || (name[0] >= '0' && name[0] <= '9')) out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot,
                               std::string_view prefix) {
  // Group labeled variants under one family, first-appearance order (the
  // format requires all samples of a family to be contiguous).
  std::vector<std::pair<std::string, std::vector<const MetricsSnapshot::Entry*>>>
      families;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    std::string family =
        prometheus_sanitize(std::string(prefix) + entry.base_name);
    bool found = false;
    for (auto& [name, members] : families) {
      if (name == family) {
        members.push_back(&entry);
        found = true;
        break;
      }
    }
    if (!found) families.emplace_back(std::move(family),
                                      std::vector{&entry});
  }
  std::string out;
  for (const auto& [family, members] : families) {
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type_name(members.front()->kind);
    out += '\n';
    for (const MetricsSnapshot::Entry* entry : members) {
      append_entry(out, family, *entry);
    }
  }
  return out;
}

}  // namespace aadedupe::telemetry
