// Metrics registry: named counters, gauges, log-bucketed histograms, and
// quantile sketches with thread-local shards, all optionally labeled.
//
// Hot-path design: every thread gets its own shard (a flat array of
// relaxed atomics), created lazily on first touch, so increments never
// contend — no shared cache line is written by two threads. snapshot()
// merges all shards under the registry mutex. Relaxed atomics keep the
// whole structure clean under ThreadSanitizer without paying for
// ordering the counters do not need.
//
// Cost model: an increment is one thread-local lookup (pointer compare in
// the common case) plus one uncontended relaxed fetch_add. With no
// registry attached (the Telemetry* null-sink default used across the
// pipeline) instrumented code skips even that.
//
// Instruments are registered up front (idempotent by name) and the slot
// table is fixed at construction, so handles stay valid and shards never
// reallocate while worker threads are live.
//
// Labels: an instrument may carry a label set — (tenant, application
// category, stage) in the fleet harness — encoded canonically into the
// instrument name as `name{k1="v1",k2="v2"}` with sorted keys. A labeled
// instrument is an ordinary distinct instrument: registration with the
// same base name and labels is idempotent, and the hot path is untouched
// (the label cost is paid once at registration). Snapshot entries carry
// the parsed base name + labels so the Prometheus exposition writer and
// RunReport never re-parse.
//
// Sketches live outside the fixed atomic slot table: a QuantileSketch is
// a variable-size structure, so each sketch instrument keeps one
// mutex-guarded shard per writer thread (the same isolation idea, with a
// lock in place of relaxed atomics — the shard mutex is contended only
// by snapshot()). See sketch.hpp for why the merge is exact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/sketch.hpp"

namespace aadedupe::telemetry {

class JsonValue;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kSketch };

/// One label set: (key, value) pairs. Order given by the caller is
/// irrelevant — encoding sorts by key, so {a,b} and {b,a} name the same
/// instrument.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical instrument name: `base{k1="v1",k2="v2"}` with keys sorted
/// and `\`/`"` escaped in values. Empty labels yield `base` unchanged.
[[nodiscard]] std::string encode_metric_name(std::string_view base,
                                             const MetricLabels& labels);

/// Log2 bucket layout shared by live shards and snapshots: bucket 0 holds
/// exact zeros, bucket b >= 1 holds values in [2^(b-1), 2^b). 65 buckets
/// cover the full uint64 range.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index for a value (0 for 0, else bit_width).
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value) noexcept;

/// Inclusive upper bound of a bucket (0, 1, 3, 7, ... , uint64 max).
[[nodiscard]] std::uint64_t histogram_bucket_upper(std::size_t bucket) noexcept;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Approximate percentile (p in [0, 100]): the inclusive upper bound of
  /// the bucket containing the rank-ceil(p/100 * count) observation.
  /// Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const;
};

/// Point-in-time merged view of every instrument (registration order).
struct MetricsSnapshot {
  struct Entry {
    std::string name;       // canonical (labels encoded)
    std::string base_name;  // name without labels
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t value = 0;  // counter total / gauge max across shards
    HistogramSnapshot histogram;
    QuantileSketch sketch;
  };

  std::vector<Entry> entries;

  /// Lookup by canonical name (pass the encoded name for labeled
  /// instruments).
  [[nodiscard]] const Entry* find(std::string_view name) const;
  /// Counter/gauge value by canonical name; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// Counters/gauges as members, histograms as {count,sum,mean,p50,...},
  /// sketches as their full mergeable encoding (see QuantileSketch).
  void fill_json(JsonValue& out) const;
};

class MetricsRegistry;

/// Cheap copyable handle; default-constructed handles are inert no-ops so
/// callers can hold them unconditionally.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const noexcept;
  void increment() const noexcept { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Gauge: per-thread last-written value; snapshot merges with max (the
/// use cases — queue high-water marks, worker counts — want a peak).
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t value) const noexcept;
  /// Raise the gauge to at least `value` (per-thread).
  void observe_max(std::uint64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Quantile-sketch handle. observe() records into the calling thread's
/// shard under that shard's (uncontended) mutex; not async-signal-safe
/// and not noexcept (the sketch map may allocate).
class Sketch {
 public:
  Sketch() = default;
  void observe(double value) const;

 private:
  friend class MetricsRegistry;
  Sketch(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

class MetricsRegistry {
 public:
  /// `slot_capacity` bounds the per-shard slot table (a counter or gauge
  /// uses 1 slot, a histogram kHistogramBuckets + 1; sketches live
  /// outside the table). Fixed at construction so shards never
  /// reallocate under concurrent writers.
  explicit MetricsRegistry(std::size_t slot_capacity = 1024);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or fetch, idempotent by canonical name) an instrument.
  /// Throws PreconditionError on a kind mismatch with a previous
  /// registration or when the slot table is exhausted.
  Counter counter(std::string_view name, const MetricLabels& labels = {});
  Gauge gauge(std::string_view name, const MetricLabels& labels = {});
  Histogram histogram(std::string_view name, const MetricLabels& labels = {});
  Sketch sketch(std::string_view name, const MetricLabels& labels = {},
                double relative_accuracy =
                    QuantileSketch::kDefaultRelativeAccuracy);

  /// Merge every thread's shard into one consistent-enough view. Exact
  /// when no writer is mid-flight (e.g. after joining workers); otherwise
  /// each slot is individually atomic but the set is not a cross-slot
  /// snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t shard_count() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  friend class Sketch;

  struct Shard {
    explicit Shard(std::size_t slots) : values(slots) {}
    std::vector<std::atomic<std::uint64_t>> values;
  };

  /// One writer thread's view of one sketch instrument. The mutex is
  /// uncontended on the hot path — only snapshot() ever takes it from
  /// another thread.
  struct SketchShard {
    explicit SketchShard(double relative_accuracy)
        : sketch(relative_accuracy) {}
    std::mutex mutex;
    QuantileSketch sketch;
  };

  struct SketchInstrument {
    std::string name;       // canonical
    std::string base_name;  // without labels
    MetricLabels labels;
    double relative_accuracy;
    std::vector<std::unique_ptr<SketchShard>> shards;
  };

  struct Instrument {
    std::string name;       // canonical
    std::string base_name;  // without labels
    MetricLabels labels;
    MetricKind kind;
    std::uint32_t base;   // first slot
    std::uint32_t width;  // slots used
  };

  std::uint32_t register_instrument(std::string_view base,
                                    const MetricLabels& labels,
                                    MetricKind kind, std::uint32_t width);
  Shard& local_shard();
  SketchShard& local_sketch_shard(std::uint32_t index);

  void add_slot(std::uint32_t slot, std::uint64_t delta) noexcept {
    local_shard().values[slot].fetch_add(delta, std::memory_order_relaxed);
  }
  void store_slot(std::uint32_t slot, std::uint64_t value) noexcept {
    local_shard().values[slot].store(value, std::memory_order_relaxed);
  }
  void max_slot(std::uint32_t slot, std::uint64_t value) noexcept {
    auto& cell = local_shard().values[slot];
    if (cell.load(std::memory_order_relaxed) < value) {
      cell.store(value, std::memory_order_relaxed);
    }
  }
  void observe_sketch(std::uint32_t index, double value);

  const std::size_t slot_capacity_;
  const std::uint64_t id_;  // process-unique; keys the thread-local cache

  mutable std::mutex mutex_;
  std::vector<Instrument> instruments_;
  std::uint32_t slots_used_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SketchInstrument>> sketches_;
};

inline void Counter::add(std::uint64_t delta) const noexcept {
  if (registry_ != nullptr) registry_->add_slot(slot_, delta);
}

inline void Gauge::set(std::uint64_t value) const noexcept {
  if (registry_ != nullptr) registry_->store_slot(slot_, value);
}

inline void Gauge::observe_max(std::uint64_t value) const noexcept {
  if (registry_ != nullptr) registry_->max_slot(slot_, value);
}

inline void Histogram::observe(std::uint64_t value) const noexcept {
  if (registry_ == nullptr) return;
  registry_->add_slot(
      slot_ + static_cast<std::uint32_t>(histogram_bucket(value)), 1);
  registry_->add_slot(
      slot_ + static_cast<std::uint32_t>(kHistogramBuckets), value);
}

inline void Sketch::observe(double value) const {
  if (registry_ != nullptr) registry_->observe_sketch(index_, value);
}

}  // namespace aadedupe::telemetry
