// Telemetry context — the one handle the pipeline passes around.
//
// A Telemetry bundles the metrics registry, the tracer, the structured
// logger, the crash-time flight recorder, and the metrics timeline. Every
// instrumented layer (scheme, pipeline, transport stack, container
// manager) takes a nullable `telemetry::Telemetry*`; the default nullptr
// is the null sink — instrumentation compiles down to a pointer test, so
// the fingerprinting hot path keeps its throughput when nobody is
// watching.
//
// Wiring done here so every member tells one story per run:
//   * the logger and flight recorder share the tracer's clock (one time
//     axis across spans, log lines, and flight events),
//   * logger events and span open/close markers stream into the flight
//     recorder's rings,
//   * the timeline samples this context's metrics registry.
// The flight recorder is NOT process-global by default — call
// install_global_flight_recorder(&t.flight) to route check.hpp failures
// and worker-thread exceptions into it (see Observability in
// bench/bench_common.hpp, which does this for entry points).
#pragma once

#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace.hpp"

namespace aadedupe::telemetry {

class HealthMonitor;

struct Telemetry {
  MetricsRegistry metrics;
  Tracer trace;
  Logger log;
  FlightRecorder flight;
  Timeline timeline;
  /// Live health verdict (stall watchdog + SLO burn rates); nullptr when
  /// no HealthMonitor is attached. Set/cleared by HealthMonitor itself —
  /// non-owning, the monitor outlives its registration.
  HealthMonitor* health = nullptr;

  Telemetry() : timeline(&metrics) { wire(); }
  /// Deterministic-clock variant for tests: spans, log lines, and flight
  /// events all timestamp from `clock`.
  explicit Telemetry(Tracer::Clock clock)
      : trace(std::move(clock)), timeline(&metrics) {
    wire();
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

 private:
  void wire() {
    log.set_clock([tracer = &trace] { return tracer->now(); });
    flight.set_clock([tracer = &trace] { return tracer->now(); });
    log.set_flight_recorder(&flight);
    trace.set_flight_recorder(&flight);
  }
};

}  // namespace aadedupe::telemetry
