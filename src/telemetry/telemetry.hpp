// Telemetry context — the one handle the pipeline passes around.
//
// A Telemetry bundles the metrics registry and the tracer. Every
// instrumented layer (scheme, pipeline, transport stack, container
// manager) takes a nullable `telemetry::Telemetry*`; the default nullptr
// is the null sink — instrumentation compiles down to a pointer test, so
// the fingerprinting hot path keeps its throughput when nobody is
// watching.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aadedupe::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  Tracer trace;

  Telemetry() = default;
  /// Deterministic-clock variant for tests.
  explicit Telemetry(Tracer::Clock clock) : trace(std::move(clock)) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;
};

}  // namespace aadedupe::telemetry
