#include "telemetry/run_report.hpp"

#include <fstream>
#include <ostream>

#include "telemetry/build_info.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {

RunReport::RunReport() {
  root_.make_object();
  root_["schema"] = kSchema;
  BuildInfo::current().fill_json(root_["build"]);
}

JsonValue& RunReport::section(std::string_view name) {
  return root_[name].make_object();
}

void RunReport::add_metrics(const MetricsRegistry& registry) {
  registry.snapshot().fill_json(root_["metrics"]);
}

void RunReport::add_stages(const Tracer& tracer) {
  tracer.fill_json(root_["stages"]);
}

void RunReport::add_timeline(const Timeline& timeline) {
  timeline.fill_json(root_["timeseries"]);
}

void RunReport::add_telemetry(const Telemetry& telemetry) {
  add_metrics(telemetry.metrics);
  add_stages(telemetry.trace);
  if (!telemetry.timeline.empty()) add_timeline(telemetry.timeline);
}

void RunReport::write_stream(std::ostream& out) const {
  out << to_json() << '\n';
}

void RunReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw FormatError("run-report: cannot open " + path + " for writing");
  }
  write_stream(out);
  out.flush();
  if (!out) throw FormatError("run-report: failed writing " + path);
}

}  // namespace aadedupe::telemetry
