// Structured logging — the one sanctioned route to the terminal.
//
// Library code never writes to stdout/stderr directly (tools/lint.py
// enforces it); it logs through a telemetry::Logger, whose sinks decide
// where events go: the stderr sink for interactive runs, the JSONL file
// sink for machine-readable streams, or nothing at all (the null default,
// which is also the overhead-budget configuration: a disabled level costs
// one atomic load).
//
// Severity runs TRACE < DEBUG < INFO < WARN < ERROR. Category tags reuse
// the span stage vocabulary ("session", "upload", "journal_replay", ...)
// so log lines, trace spans, and flight-recorder entries correlate.
//
// Two floors gate an event:
//   * compile time — AAD_LOG_MIN_LEVEL (an integer; events below it
//     compile to nothing via the AAD_LOG macro's `if constexpr`), and
//   * run time — Logger::set_level(), checked with a relaxed atomic load.
// Events that pass the compile-time floor are always offered to the
// attached FlightRecorder (the crash artifact wants detail even when the
// sinks are quiet); only sink delivery respects the runtime floor.
//
// Thread-safety model: sinks are invoked under the logger's sink mutex,
// one event at a time, so a sink needs no locking of its own (the same
// contract as the Tracer event sink). Level reads and the recorder
// pointer are atomics — loggable from any thread at any time.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aadedupe::telemetry {

class FlightRecorder;

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,  // runtime floor that silences every sink
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parse "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-sensitive, the spellings to_string emits). Returns `fallback`
/// for anything else, including nullptr.
[[nodiscard]] LogLevel parse_log_level(const char* text,
                                       LogLevel fallback) noexcept;

/// One structured event as the sinks see it. The string views borrow the
/// caller's storage and are only valid during the write() call.
struct LogEvent {
  double t_s = 0.0;  // logger-clock seconds
  LogLevel level = LogLevel::kInfo;
  std::string_view category;  // stage-name vocabulary ("session", ...)
  std::string_view message;
  std::uint32_t thread = 0;  // hashed thread id (same scheme as spans)
};

/// Sink interface. write() is called under the logger's mutex — implement
/// without internal locking. Must not log back into the same logger.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogEvent& event) = 0;
};

/// Human-readable lines on stderr: "[   0.123] WARN  upload: message".
[[nodiscard]] std::unique_ptr<LogSink> make_stderr_sink();

/// One compact JSON object per line ({"t_s":...,"level":...,...}),
/// appended to `path`. Throws FormatError when the file cannot be opened.
[[nodiscard]] std::unique_ptr<LogSink> make_jsonl_file_sink(
    const std::string& path);

/// Swallows everything (placeholder where a sink object is required).
[[nodiscard]] std::unique_ptr<LogSink> make_null_sink();

class Logger {
 public:
  using Clock = std::function<double()>;  // seconds, monotonic

  /// Default: no sinks, kInfo runtime floor, steady-clock timestamps.
  Logger();
  explicit Logger(Clock clock);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Replace the timestamp clock (e.g. to share the tracer's epoch).
  void set_clock(Clock clock);

  void add_sink(std::shared_ptr<LogSink> sink);
  void clear_sinks();
  [[nodiscard]] std::size_t sink_count() const;

  /// Runtime severity floor for sink delivery (the flight recorder sees
  /// everything regardless). kOff silences all sinks.
  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }

  /// Events also stream into `recorder`'s ring buffers (nullptr detaches).
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_.store(recorder, std::memory_order_release);
  }

  /// Would an event at `level` go anywhere? The AAD_LOG macro's fast
  /// bail-out — true when a sink wants it or a recorder is attached.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    if (recorder_.load(std::memory_order_relaxed) != nullptr) return true;
    return has_sinks_.load(std::memory_order_relaxed) &&
           level >= level_.load(std::memory_order_relaxed);
  }

  /// Log a preformatted message.
  void log(LogLevel level, std::string_view category,
           std::string_view message);

  /// printf-style convenience (formats into a bounded stack buffer; long
  /// messages are truncated, never allocated).
  void logf(LogLevel level, std::string_view category, const char* format,
            ...) __attribute__((format(printf, 4, 5)));

  [[nodiscard]] double now() const { return clock_(); }

 private:
  Clock clock_;
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  std::atomic<bool> has_sinks_{false};
  std::atomic<FlightRecorder*> recorder_{nullptr};

  mutable std::mutex mutex_;  // guards sinks_
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

/// Process-wide logger for entry-point code (examples, benches, CLI
/// argument errors): stderr sink, kInfo floor, honoring AAD_LOG_LEVEL at
/// first use. Library code should prefer the Telemetry context's logger.
[[nodiscard]] Logger& stderr_logger();

/// Compile-time floor check for the AAD_LOG macro (a function so the
/// always-true case at floor 0 does not trip -Wtype-limits).
[[nodiscard]] constexpr bool log_level_passes_floor(LogLevel level,
                                                    int floor) noexcept {
  return static_cast<int>(level) >= floor;
}

}  // namespace aadedupe::telemetry

/// Compile-time severity floor: events below it vanish from the binary.
/// 0=TRACE 1=DEBUG 2=INFO 3=WARN 4=ERROR.
#ifndef AAD_LOG_MIN_LEVEL
#define AAD_LOG_MIN_LEVEL 0
#endif

/// AAD_LOG(logger*, kWarn, "upload", "lost %s after %u tries", key, n);
/// Null logger and below-floor levels cost one branch; below the
/// compile-time floor the whole statement compiles away.
#define AAD_LOG(logger, lvl, category, ...)                                  \
  do {                                                                       \
    if constexpr (::aadedupe::telemetry::log_level_passes_floor(             \
            ::aadedupe::telemetry::LogLevel::lvl, AAD_LOG_MIN_LEVEL)) {      \
      ::aadedupe::telemetry::Logger* aad_log_logger_ = (logger);             \
      if (aad_log_logger_ != nullptr &&                                      \
          aad_log_logger_->enabled(::aadedupe::telemetry::LogLevel::lvl)) {  \
        aad_log_logger_->logf(::aadedupe::telemetry::LogLevel::lvl,          \
                              (category), __VA_ARGS__);                      \
      }                                                                      \
    }                                                                        \
  } while (false)
