#include "dataset/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "dataset/fs_snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::dataset {

namespace {

std::uint64_t path_seed(const std::string& path) {
  // FNV-1a over the path, then mixed — stable across runs and platforms.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : path) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return derive_seed(h, 0x7ace);
}

/// Per-category probability that a given block is touched by a given
/// version bump (drives cross-version sub-file redundancy).
double block_touch_probability(FileKind kind) {
  switch (category_of(kind)) {
    case AppCategory::kCompressed:
      return 1.0;  // a "modified" media file is a re-encode: all blocks
    case AppCategory::kStaticUncompressed:
      return kind == FileKind::kVmdk ? 0.05 : 1.0;  // VM images churn blocks
    case AppCategory::kDynamicUncompressed:
      return 0.10;  // documents: localized edits
  }
  return 1.0;
}

/// Newest version <= `version` that touched block `block` (version 0
/// created every block).
std::uint32_t last_touched(std::uint64_t file_seed, std::uint64_t block,
                           std::uint32_t version, double touch_probability) {
  for (std::uint32_t v = version; v > 0; --v) {
    Xoshiro256 rng(derive_seed(derive_seed(file_seed, block), v));
    if (rng.uniform() < touch_probability) return v;
  }
  return 0;
}

}  // namespace

ContentRecipe trace_content(FileKind kind, const std::string& path,
                            std::uint64_t size, std::uint32_t version) {
  const TypeProfile& profile = profile_of(kind);
  const std::uint64_t file_seed = path_seed(path);
  const double touch_probability = block_touch_probability(kind);

  ContentRecipe recipe;
  recipe.kind = kind;
  std::uint64_t produced = 0;
  std::uint64_t block = 0;
  while (produced < size) {
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kContentBlock, size - produced));
    // Pool membership is a stable per-(file, block) property, at the
    // kind's calibrated share; pool blocks never change across versions
    // (shared template content).
    Xoshiro256 classify(derive_seed(file_seed, 0x9000 + block));
    if (classify.uniform() < profile.pool_share) {
      const std::uint64_t pool_block = classify.below(profile.pool_blocks);
      recipe.segments.push_back(
          Segment{Segment::Type::kPool, pool_block, len});
    } else {
      const std::uint32_t touched =
          last_touched(file_seed, block, version, touch_probability);
      // Unique param must be globally unique per (file, block, touched):
      // derive a seed-space key from the triple.
      const std::uint64_t param =
          derive_seed(derive_seed(file_seed, block), 0xC0000000ull + touched);
      recipe.segments.push_back(Segment{Segment::Type::kUnique, param, len});
    }
    produced += len;
    ++block;
  }
  return recipe;
}

std::vector<TraceEntry> parse_trace_csv(const std::string& text) {
  std::vector<TraceEntry> entries;
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string session_str, path, ext, size_str, version_str;
    if (!std::getline(row, session_str, ',') ||
        !std::getline(row, path, ',') || !std::getline(row, ext, ',') ||
        !std::getline(row, size_str, ',') ||
        !std::getline(row, version_str)) {
      throw FormatError("trace: malformed row at line " +
                        std::to_string(line_number));
    }
    if (session_str == "session") continue;  // header row
    char* end = nullptr;
    TraceEntry entry;
    entry.session =
        static_cast<std::uint32_t>(std::strtoul(session_str.c_str(), &end, 10));
    if (end == session_str.c_str()) {
      throw FormatError("trace: bad session at line " +
                        std::to_string(line_number));
    }
    entry.path = std::move(path);
    if (entry.path.empty()) {
      throw FormatError("trace: empty path at line " +
                        std::to_string(line_number));
    }
    entry.kind = kind_from_extension(ext).value_or(kUnknownKindFallback);
    entry.size = std::strtoull(size_str.c_str(), &end, 10);
    entry.version =
        static_cast<std::uint32_t>(std::strtoul(version_str.c_str(), &end, 10));
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<Snapshot> sessions_from_trace(
    const std::vector<TraceEntry>& entries) {
  std::map<std::uint32_t, std::vector<const TraceEntry*>> by_session;
  for (const TraceEntry& entry : entries) {
    by_session[entry.session].push_back(&entry);
  }

  std::vector<Snapshot> out;
  out.reserve(by_session.size());
  for (auto& [session, rows] : by_session) {
    std::sort(rows.begin(), rows.end(),
              [](const TraceEntry* a, const TraceEntry* b) {
                return a->path < b->path;
              });
    Snapshot snapshot;
    snapshot.session = session;
    snapshot.files.reserve(rows.size());
    for (const TraceEntry* row : rows) {
      FileEntry file;
      file.path = row->path;
      file.kind = row->kind;
      file.version = row->version;
      file.content =
          trace_content(row->kind, row->path, row->size, row->version);
      snapshot.files.push_back(std::move(file));
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

}  // namespace aadedupe::dataset
