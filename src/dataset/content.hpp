// Deterministic file-content recipes.
//
// The paper's workload is 351 GB of real user data — impossible to ship
// with a reproduction. Instead, every synthetic file's content is a small
// *recipe*: an ordered list of segments, each either (a) a run of blocks
// from the file type's shared pool (the source of intra-type redundancy),
// (b) unique pseudo-random bytes keyed by a seed, or (c) zeros (VM-image
// sparse regions). Bytes are materialized on demand from the recipe, so a
// "multi-GB" snapshot costs only metadata until a scheme actually reads a
// file — and the same recipe always yields the same bytes, on any platform.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/file_kind.hpp"
#include "util/bytes.hpp"

namespace aadedupe::dataset {

/// Pool/zero block granularity. Chosen equal to the paper's SC chunk size
/// so aligned shared runs dedup perfectly under SC (Observation 3).
inline constexpr std::uint32_t kContentBlock = 8 * 1024;

struct Segment {
  enum class Type : std::uint8_t {
    kUnique,   // `length` pseudo-random bytes from `param` as seed
    kPool,     // `length` bytes of the kind's pool starting at block `param`
    kZero,     // `length` zero bytes
    kLiteral,  // `length` explicit bytes carried in `literal` — used when a
               // snapshot is built from a real filesystem rather than a
               // synthetic recipe
  };

  Type type = Type::kUnique;
  std::uint64_t param = 0;
  std::uint32_t length = 0;
  ByteBuffer literal;  // only for kLiteral; empty otherwise

  Segment() = default;
  Segment(Type segment_type, std::uint64_t segment_param,
          std::uint32_t segment_length)
      : type(segment_type), param(segment_param), length(segment_length) {}
  Segment(Type segment_type, std::uint64_t segment_param,
          std::uint32_t segment_length, ByteBuffer segment_literal)
      : type(segment_type),
        param(segment_param),
        length(segment_length),
        literal(std::move(segment_literal)) {}

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// A file's content recipe: segments are concatenated in order.
struct ContentRecipe {
  FileKind kind = FileKind::kTxt;
  std::vector<Segment> segments;

  std::uint64_t size() const noexcept {
    std::uint64_t total = 0;
    for (const Segment& s : segments) total += s.length;
    return total;
  }

  friend bool operator==(const ContentRecipe&, const ContentRecipe&) = default;
};

/// Materialize the full content of a recipe.
ByteBuffer materialize(const ContentRecipe& recipe);

/// Materialize into a caller-provided buffer (cleared first) — lets hot
/// loops reuse allocations.
void materialize_into(const ContentRecipe& recipe, ByteBuffer& out);

/// The bytes of one pool block of a file kind (deterministic).
void pool_block_bytes(FileKind kind, std::uint64_t block_index,
                      ByteBuffer& out);

}  // namespace aadedupe::dataset
