// Snapshots: the state of the simulated PC's user directory at one weekly
// backup point. A backup scheme receives the full snapshot each session
// (the paper runs 10 consecutive weekly FULL backups) and exploits
// redundancy against what it already shipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/content.hpp"
#include "dataset/file_kind.hpp"

namespace aadedupe::dataset {

struct FileEntry {
  std::string path;  // e.g. "doc/f000123.doc"
  FileKind kind = FileKind::kTxt;
  /// Bumped on every modification; an incremental scheme treats a changed
  /// version as "mtime changed".
  std::uint32_t version = 0;
  ContentRecipe content;

  std::uint64_t size() const noexcept { return content.size(); }
};

struct Snapshot {
  std::uint32_t session = 0;  // 0-based backup session number
  std::vector<FileEntry> files;

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const FileEntry& f : files) total += f.size();
    return total;
  }

  std::size_t file_count() const noexcept { return files.size(); }
};

}  // namespace aadedupe::dataset
