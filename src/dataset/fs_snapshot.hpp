// Real-filesystem ingestion: build a backup Snapshot from an actual
// directory tree, so every scheme (and the AA-Dedupe engine in
// particular) can back up real user data, not just synthetic workloads.
//
// File contents are carried as literal segments (held in memory — this
// path targets the personal-computing datasets the paper addresses, not
// server-scale corpora). Application kinds are inferred from file
// extensions; unrecognized extensions conservatively classify as dynamic
// uncompressed data (CDC + SHA-1 — the safest default for unknown
// content). The per-file version is derived from (mtime, size) so the
// incremental baseline's change detection works against real files too.
#pragma once

#include <filesystem>
#include <optional>

#include "dataset/file_kind.hpp"
#include "dataset/snapshot.hpp"

namespace aadedupe::dataset {

/// Map a file extension (lower-cased, without dot) to its application
/// kind; nullopt for extensions outside the paper's 12 types.
std::optional<FileKind> kind_from_extension(std::string_view extension);

/// AA-Dedupe's fallback category for unknown file types.
inline constexpr FileKind kUnknownKindFallback = FileKind::kTxt;

struct FsSnapshotOptions {
  /// Skip files larger than this (0 = no limit). Protects the in-memory
  /// literal representation from pathological inputs.
  std::uint64_t max_file_bytes = 256ull * 1024 * 1024;
  /// Follow directory symlinks (file symlinks are always skipped).
  bool follow_directory_symlinks = false;
};

/// Recursively snapshot `root`. Paths in the snapshot are relative to
/// `root` with '/' separators. Throws FormatError when `root` is not a
/// readable directory; unreadable files are skipped.
Snapshot snapshot_from_directory(const std::filesystem::path& root,
                                 const FsSnapshotOptions& options = {});

}  // namespace aadedupe::dataset
