// Synthetic PC backup-workload generator.
//
// Produces a sequence of weekly snapshots of a simulated personal
// computer's user directory, calibrated to the paper's measurements:
//   * per-type capacity shares and mean file sizes from Table I;
//   * per-type sub-file redundancy matching Table I's SC/CDC dedup ratios
//     (via shared-pool runs, zero runs, and alignment/misalignment);
//   * the Fig. 1/2 size skew: ~61 % of files are tiny (< 10 KB) but hold
//     ~1.2 % of the bytes, while a few large files dominate capacity;
//   * negligible cross-type sharing (Observation 2) — by construction,
//     each type draws from its own content pool;
//   * a weekly churn model: compressed media are added but rarely edited,
//     VM images get in-place block rewrites, documents get insert/append/
//     replace edits that shift chunk boundaries.
//
// Everything is deterministic in DatasetConfig::seed.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/content.hpp"
#include "dataset/file_kind.hpp"
#include "dataset/snapshot.hpp"
#include "util/rng.hpp"

namespace aadedupe::dataset {

struct DatasetConfig {
  std::uint64_t seed = 42;

  /// Target total bytes of the initial snapshot (regular files).
  std::uint64_t session_bytes = 48ull * 1024 * 1024;

  /// Hard cap on individual file size when content will be materialized
  /// (multi-hundred-MB files are metadata-realistic but not materializable
  /// on a laptop-scale run).
  std::uint64_t max_file_bytes = 8ull * 1024 * 1024;

  /// Use Table I's real mean file sizes with no cap and skip building
  /// detailed content recipes. Only file counts/sizes are meaningful —
  /// used by the Fig. 1/2 dataset-statistics experiment.
  bool stats_only = false;

  /// Multiplier on every type's pool_share (sub-file redundancy level).
  /// 1.0 = the Table I calibration; used by the sensitivity ablation to
  /// show the scheme orderings are not knife-edge artifacts of one
  /// redundancy level. Clamped so shares stay below 95%.
  double redundancy_scale = 1.0;

  /// Fraction of the *file count* that is tiny (< 10 KB), per Fig. 1.
  double tiny_count_fraction = 0.61;
  std::uint64_t tiny_min_bytes = 64;
  std::uint64_t tiny_max_bytes = 10 * 1024 - 1;
};

class DatasetGenerator {
 public:
  explicit DatasetGenerator(DatasetConfig config = {});

  /// Build the initial (session-0) snapshot.
  Snapshot initial();

  /// Apply one week of churn to a snapshot, producing the next session.
  Snapshot next(const Snapshot& prev);

  /// Convenience: initial() followed by count-1 next() steps.
  std::vector<Snapshot> sessions(std::uint32_t count);

  /// A corpus of a single application type totalling roughly
  /// `total_bytes` — the workload of the paper's Table I per-type
  /// redundancy study (chunk-level dedup measured per application).
  Snapshot kind_corpus(FileKind kind, std::uint64_t total_bytes);

  const DatasetConfig& config() const noexcept { return config_; }

 private:
  FileEntry make_file(FileKind kind, std::uint64_t size_bytes,
                      Xoshiro256& rng);
  FileEntry make_tiny_file(Xoshiro256& rng);
  ContentRecipe make_content(FileKind kind, std::uint64_t size_bytes,
                             Xoshiro256& rng);
  void modify_file(FileEntry& entry, Xoshiro256& rng);
  void modify_dynamic(FileEntry& entry, Xoshiro256& rng);
  void modify_vmdk(FileEntry& entry, Xoshiro256& rng);
  std::uint64_t sample_size(const TypeProfile& profile, Xoshiro256& rng);
  std::uint64_t fresh_unique_param() noexcept { return next_unique_param_++; }
  std::string fresh_path(FileKind kind);
  std::string fresh_tiny_path(FileKind kind);

  DatasetConfig config_;
  std::uint64_t next_file_id_ = 1;
  std::uint64_t next_unique_param_ = 1;
  /// Share-dithering accumulators (see make_content); carried across files
  /// of the same kind so that small-file types still realize their
  /// byte-share targets, reset whenever the kind changes.
  FileKind debt_kind_ = FileKind::kAvi;
  double pool_debt_ = 0.0;
  double zero_debt_ = 0.0;
};

/// File-size histogram helper for the Fig. 1/2 experiment.
struct SizeBin {
  std::uint64_t upper_bound;  // exclusive; last bin uses UINT64_MAX
  std::uint64_t file_count = 0;
  std::uint64_t total_bytes = 0;
};

/// Bin boundaries matching the paper's Fig. 1/2 axes
/// (<1K, 1-10K, 10-100K, 100K-1M, 1-10M, 10-100M, >=100M).
std::vector<SizeBin> size_histogram(const Snapshot& snapshot);

}  // namespace aadedupe::dataset
