#include "dataset/content.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::dataset {

namespace {
/// Distinct seed spaces for the different deterministic byte sources.
constexpr std::uint64_t kPoolSeedSpace = 0xA11CE5EEDull;
constexpr std::uint64_t kUniqueSeedSpace = 0x1D105EEDull;

std::uint64_t pool_seed(FileKind kind, std::uint64_t block_index) {
  const std::uint64_t kind_seed =
      derive_seed(kPoolSeedSpace, static_cast<std::uint64_t>(kind));
  return derive_seed(kind_seed, block_index);
}
}  // namespace

void pool_block_bytes(FileKind kind, std::uint64_t block_index,
                      ByteBuffer& out) {
  out.resize(kContentBlock);
  Xoshiro256 rng(pool_seed(kind, block_index));
  rng.fill(ByteSpan{out.data(), out.size()});
}

void materialize_into(const ContentRecipe& recipe, ByteBuffer& out) {
  out.clear();
  out.reserve(recipe.size());
  ByteBuffer block;
  for (const Segment& seg : recipe.segments) {
    switch (seg.type) {
      case Segment::Type::kUnique: {
        const std::size_t base = out.size();
        out.resize(base + seg.length);
        Xoshiro256 rng(derive_seed(kUniqueSeedSpace, seg.param));
        rng.fill(ByteSpan{out.data() + base, seg.length});
        break;
      }
      case Segment::Type::kPool: {
        // A pool segment may span several consecutive pool blocks.
        std::uint64_t block_index = seg.param;
        std::uint32_t remaining = seg.length;
        while (remaining > 0) {
          pool_block_bytes(recipe.kind, block_index, block);
          const std::uint32_t take =
              remaining < kContentBlock ? remaining : kContentBlock;
          append(out, ConstByteSpan{block.data(), take});
          remaining -= take;
          ++block_index;
        }
        break;
      }
      case Segment::Type::kZero:
        out.resize(out.size() + seg.length, std::byte{0});
        break;
      case Segment::Type::kLiteral:
        AAD_EXPECTS(seg.literal.size() == seg.length);
        append(out, seg.literal);
        break;
    }
  }
  AAD_ENSURES(out.size() == recipe.size());
}

ByteBuffer materialize(const ContentRecipe& recipe) {
  ByteBuffer out;
  materialize_into(recipe, out);
  return out;
}

}  // namespace aadedupe::dataset
