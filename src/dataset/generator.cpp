#include "dataset/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace aadedupe::dataset {

namespace {

constexpr std::uint64_t kTinyThreshold = 10 * 1024;

/// Kinds used for the tiny-file population (small notes, thumbnails, ...).
constexpr FileKind kTinyKinds[] = {FileKind::kTxt, FileKind::kDoc,
                                   FileKind::kJpg};
constexpr double kTinyKindWeights[] = {0.5, 0.3, 0.2};

/// Weekly churn of the tiny-file population.
constexpr double kTinyModifyProb = 0.08;
constexpr double kTinyDeleteProb = 0.01;
constexpr double kTinyNewFraction = 0.05;

std::uint64_t clamp_u64(double v, std::uint64_t lo, std::uint64_t hi) {
  if (!(v > 0)) return lo;
  if (v >= static_cast<double>(hi)) return hi;
  const auto out = static_cast<std::uint64_t>(v);
  return out < lo ? lo : out;
}

}  // namespace

DatasetGenerator::DatasetGenerator(DatasetConfig config)
    : config_(config),
      // Unique-content seeds must be disjoint across datasets with
      // different seeds (two users' fresh data never collides), so the
      // counter starts at a seed-derived 64-bit base.
      next_unique_param_(derive_seed(config.seed, 0xA1A1)) {
  AAD_EXPECTS(config_.session_bytes >= 1024 * 1024);
  AAD_EXPECTS(config_.tiny_count_fraction >= 0.0 &&
              config_.tiny_count_fraction < 1.0);
}

std::string DatasetGenerator::fresh_path(FileKind kind) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s/f%06llu.%s",
                std::string(extension(kind)).c_str(),
                static_cast<unsigned long long>(next_file_id_++),
                std::string(extension(kind)).c_str());
  return buf;
}

std::string DatasetGenerator::fresh_tiny_path(FileKind kind) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tiny/f%06llu.%s",
                static_cast<unsigned long long>(next_file_id_++),
                std::string(extension(kind)).c_str());
  return buf;
}

std::uint64_t DatasetGenerator::sample_size(const TypeProfile& profile,
                                            Xoshiro256& rng) {
  const std::uint64_t mean = config_.stats_only ? profile.paper_mean_bytes
                                                : profile.bench_mean_bytes;
  // Lognormal with E[X] = mean: mu = ln(mean) - sigma^2/2.
  const double mu = std::log(static_cast<double>(mean)) -
                    profile.sigma * profile.sigma / 2.0;
  const double sample = rng.lognormal(mu, profile.sigma);
  const std::uint64_t cap =
      config_.stats_only ? ~std::uint64_t{0} : config_.max_file_bytes;
  // Regular (non-tiny) files stay above the tiny-file threshold so the
  // file-size-filter behaviour is driven by the dedicated tiny population.
  return clamp_u64(sample, kTinyThreshold + 2048, cap);
}

ContentRecipe DatasetGenerator::make_content(FileKind kind,
                                             std::uint64_t size_bytes,
                                             Xoshiro256& rng) {
  ContentRecipe recipe;
  recipe.kind = kind;
  if (config_.stats_only) {
    // Content never materialized: one placeholder segment carries the size.
    recipe.segments.push_back(Segment{Segment::Type::kUnique,
                                      fresh_unique_param(),
                                      static_cast<std::uint32_t>(
                                          std::min<std::uint64_t>(
                                              size_bytes, 0xffffffffull))});
    return recipe;
  }

  const TypeProfile& profile = profile_of(kind);
  const std::uint64_t run_bytes =
      static_cast<std::uint64_t>(profile.run_blocks) * kContentBlock;

  // Debt never crosses kinds: a leftover zero/pool debt from another type
  // must not inject that type's content pattern here (Observation 2).
  if (kind != debt_kind_) {
    debt_kind_ = kind;
    pool_debt_ = 0.0;
    zero_debt_ = 0.0;
  }

  // One odd-length insert defeats SC alignment for the rest of the file
  // (the boundary-shifting problem); placed at a uniform position. (For
  // files shorter than one run the insert lands at the front, so the
  // whole file is unaligned — small documents are fully shifted by any
  // edit anyway.)
  const bool misaligned = rng.chance(profile.misalign_prob);
  const std::uint64_t misalign_at =
      misaligned ? rng.below(std::max<std::uint64_t>(size_bytes, 1)) : 0;
  bool misalign_pending = misaligned;

  std::uint64_t remaining = size_bytes;
  std::uint64_t produced = 0;
  while (remaining > 0) {
    const std::uint64_t len64 = std::min<std::uint64_t>(run_bytes, remaining);
    const auto len = static_cast<std::uint32_t>(len64);

    if (misalign_pending && misalign_at < produced + len64) {
      const auto insert_len =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(
              rng.between(64, kContentBlock - 1) | 1u, remaining));
      recipe.segments.push_back(
          Segment{Segment::Type::kUnique, fresh_unique_param(), insert_len});
      produced += insert_len;
      remaining -= insert_len;
      misalign_pending = false;
      continue;
    }

    // Deterministic dithering of the byte-share targets: each run adds its
    // length times the target share to the debt; a run is emitted as
    // zero/pool once at least half a run is owed. This makes the realized
    // per-type byte shares track zero_fraction/pool_share exactly even for
    // types with few, small files (iid coin flips would be far too noisy
    // there), while run placement stays random.
    const double pool_share = std::min(
        0.95, profile.pool_share * config_.redundancy_scale);
    zero_debt_ += static_cast<double>(len64) * profile.zero_fraction;
    pool_debt_ += static_cast<double>(len64) * pool_share;
    if (zero_debt_ >= 0.5 * static_cast<double>(len64)) {
      recipe.segments.push_back(Segment{Segment::Type::kZero, 0, len});
      zero_debt_ -= static_cast<double>(len64);
    } else if (pool_debt_ >= 0.5 * static_cast<double>(len64)) {
      // A shared run of consecutive pool blocks, start clamped so the run
      // stays inside the pool.
      const std::uint64_t max_start =
          profile.pool_blocks > profile.run_blocks
              ? profile.pool_blocks - profile.run_blocks
              : 0;
      const std::uint64_t start = max_start > 0 ? rng.below(max_start + 1) : 0;
      recipe.segments.push_back(Segment{Segment::Type::kPool, start, len});
      pool_debt_ -= static_cast<double>(len64);
    } else {
      recipe.segments.push_back(
          Segment{Segment::Type::kUnique, fresh_unique_param(), len});
    }
    produced += len64;
    remaining -= len64;
  }
  return recipe;
}

FileEntry DatasetGenerator::make_file(FileKind kind, std::uint64_t size_bytes,
                                      Xoshiro256& rng) {
  FileEntry entry;
  entry.path = fresh_path(kind);
  entry.kind = kind;
  entry.version = 0;
  entry.content = make_content(kind, size_bytes, rng);
  return entry;
}

FileEntry DatasetGenerator::make_tiny_file(Xoshiro256& rng) {
  // Pick a tiny-file kind by weight.
  const double roll = rng.uniform();
  FileKind kind = kTinyKinds[2];
  if (roll < kTinyKindWeights[0]) {
    kind = kTinyKinds[0];
  } else if (roll < kTinyKindWeights[0] + kTinyKindWeights[1]) {
    kind = kTinyKinds[1];
  }
  FileEntry entry;
  entry.path = fresh_tiny_path(kind);
  entry.kind = kind;
  entry.version = 0;
  entry.content.kind = kind;
  const auto size = static_cast<std::uint32_t>(
      rng.between(config_.tiny_min_bytes, config_.tiny_max_bytes));
  entry.content.segments.push_back(
      Segment{Segment::Type::kUnique, fresh_unique_param(), size});
  return entry;
}

Snapshot DatasetGenerator::initial() {
  Snapshot snapshot;
  snapshot.session = 0;

  Xoshiro256 rng(derive_seed(config_.seed, /*stream=*/0));

  double total_weight = 0;
  for (FileKind kind : all_file_kinds()) {
    total_weight += profile_of(kind).capacity_weight;
  }

  std::size_t regular_count = 0;
  for (FileKind kind : all_file_kinds()) {
    const TypeProfile& profile = profile_of(kind);
    const double share = profile.capacity_weight / total_weight;
    const std::uint64_t mean = config_.stats_only ? profile.paper_mean_bytes
                                                  : profile.bench_mean_bytes;
    const auto count = static_cast<std::size_t>(std::max<double>(
        1.0, std::round(share * static_cast<double>(config_.session_bytes) /
                        static_cast<double>(mean))));
    std::size_t first_of_kind = snapshot.files.size();
    for (std::size_t i = 0; i < count; ++i) {
      // Some files are outright copies of an earlier file of the same kind
      // (users duplicate media and documents) — these are what file-level
      // dedup and WFC catch within a single session.
      if (i > 0 && rng.chance(profile.p_duplicate_file)) {
        const std::size_t source =
            first_of_kind + rng.below(snapshot.files.size() - first_of_kind);
        FileEntry copy = snapshot.files[source];
        copy.path = fresh_path(kind);
        copy.version = 0;
        snapshot.files.push_back(std::move(copy));
      } else {
        snapshot.files.push_back(
            make_file(kind, sample_size(profile, rng), rng));
      }
    }
    regular_count += count;
  }

  // Tiny files: tiny_count_fraction of the *total* population.
  const double tf = config_.tiny_count_fraction;
  const auto tiny_count = static_cast<std::size_t>(
      std::round(tf / (1.0 - tf) * static_cast<double>(regular_count)));
  for (std::size_t i = 0; i < tiny_count; ++i) {
    snapshot.files.push_back(make_tiny_file(rng));
  }
  return snapshot;
}

void DatasetGenerator::modify_dynamic(FileEntry& entry, Xoshiro256& rng) {
  const TypeProfile& profile = profile_of(entry.kind);
  auto& segments = entry.content.segments;
  const std::uint64_t edits = rng.between(1, 3);
  for (std::uint64_t e = 0; e < edits; ++e) {
    const double roll = rng.uniform();
    if (roll < 0.35 || segments.empty()) {
      // Append a fresh run at the end.
      const auto len = static_cast<std::uint32_t>(
          rng.between(1, profile.run_blocks) * kContentBlock);
      segments.push_back(
          Segment{Segment::Type::kUnique, fresh_unique_param(), len});
    } else if (roll < 0.70) {
      // Insert a small odd-length unique segment at a random position —
      // the classic document edit that shifts every SC boundary after it.
      const auto len = static_cast<std::uint32_t>(
          rng.between(64, kContentBlock - 1) | 1u);
      const std::size_t at = rng.below(segments.size() + 1);
      segments.insert(
          segments.begin() + static_cast<std::ptrdiff_t>(at),
          Segment{Segment::Type::kUnique, fresh_unique_param(), len});
    } else {
      // Rewrite an existing segment in place (same length, new content).
      const std::size_t at = rng.below(segments.size());
      segments[at] = Segment{Segment::Type::kUnique, fresh_unique_param(),
                             segments[at].length};
    }
  }
}

void DatasetGenerator::modify_vmdk(FileEntry& entry, Xoshiro256& rng) {
  // VM images churn by in-place block rewrites: a guest OS touches a small
  // fraction of the disk between weekly backups, alignment preserved.
  auto& segments = entry.content.segments;
  if (segments.empty()) return;
  const std::size_t rewrites = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(segments.size()) *
                                  (0.02 + 0.04 * rng.uniform())));
  for (std::size_t i = 0; i < rewrites; ++i) {
    const std::size_t at = rng.below(segments.size());
    segments[at] = Segment{Segment::Type::kUnique, fresh_unique_param(),
                           segments[at].length};
  }
}

void DatasetGenerator::modify_file(FileEntry& entry, Xoshiro256& rng) {
  switch (category_of(entry.kind)) {
    case AppCategory::kDynamicUncompressed:
      modify_dynamic(entry, rng);
      break;
    case AppCategory::kStaticUncompressed:
      if (entry.kind == FileKind::kVmdk) {
        modify_vmdk(entry, rng);
      } else {
        // Static app data changes by whole-file replacement (an installer
        // update, a re-exported PDF).
        entry.content = make_content(entry.kind, entry.size(), rng);
      }
      break;
    case AppCategory::kCompressed:
      // Compressed media are effectively immutable; a "modification" is a
      // re-encode, i.e. whole-file replacement.
      entry.content = make_content(entry.kind, entry.size(), rng);
      break;
  }
  ++entry.version;
}

Snapshot DatasetGenerator::next(const Snapshot& prev) {
  Snapshot out;
  out.session = prev.session + 1;
  Xoshiro256 rng(derive_seed(config_.seed, 1000 + out.session));

  // Per-kind bookkeeping for new-file creation.
  std::array<std::size_t, kFileKindCount> kind_counts{};
  std::array<std::vector<std::size_t>, kFileKindCount> kind_members{};

  for (const FileEntry& file : prev.files) {
    const bool tiny = file.size() < kTinyThreshold;
    const TypeProfile& profile = profile_of(file.kind);
    const double p_delete = tiny ? kTinyDeleteProb : profile.p_delete;
    const double p_modify = tiny ? kTinyModifyProb : profile.p_modify;
    if (rng.chance(p_delete)) continue;
    FileEntry copy = file;
    if (rng.chance(p_modify)) {
      if (tiny) {
        // Tiny files are rewritten wholesale.
        copy.content.segments.back() = Segment{
            Segment::Type::kUnique, fresh_unique_param(),
            copy.content.segments.back().length};
        ++copy.version;
      } else {
        modify_file(copy, rng);
      }
    }
    if (!tiny) {
      const auto k = static_cast<std::size_t>(file.kind);
      ++kind_counts[k];
      kind_members[k].push_back(out.files.size());
    }
    out.files.push_back(std::move(copy));
  }

  // New regular files per kind.
  std::size_t new_regular = 0;
  for (FileKind kind : all_file_kinds()) {
    const TypeProfile& profile = profile_of(kind);
    const auto k = static_cast<std::size_t>(kind);
    const double expected = profile.new_file_fraction *
                            static_cast<double>(kind_counts[k]);
    auto count = static_cast<std::size_t>(expected);
    if (rng.chance(expected - static_cast<double>(count))) ++count;
    for (std::size_t i = 0; i < count; ++i) {
      if (!kind_members[k].empty() && rng.chance(profile.p_duplicate_file)) {
        FileEntry copy =
            out.files[kind_members[k][rng.below(kind_members[k].size())]];
        copy.path = fresh_path(kind);
        copy.version = 0;
        out.files.push_back(std::move(copy));
      } else {
        out.files.push_back(make_file(kind, sample_size(profile, rng), rng));
      }
      ++new_regular;
    }
  }

  // New tiny files.
  std::size_t tiny_count = 0;
  for (const FileEntry& f : out.files) {
    if (f.size() < kTinyThreshold) ++tiny_count;
  }
  const double expected_tiny =
      kTinyNewFraction * static_cast<double>(tiny_count);
  auto new_tiny = static_cast<std::size_t>(expected_tiny);
  if (rng.chance(expected_tiny - static_cast<double>(new_tiny))) ++new_tiny;
  for (std::size_t i = 0; i < new_tiny; ++i) {
    out.files.push_back(make_tiny_file(rng));
  }
  return out;
}

Snapshot DatasetGenerator::kind_corpus(FileKind kind,
                                       std::uint64_t total_bytes) {
  Snapshot snapshot;
  snapshot.session = 0;
  Xoshiro256 rng(derive_seed(config_.seed,
                             5000 + static_cast<std::uint64_t>(kind)));
  const TypeProfile& profile = profile_of(kind);
  std::uint64_t produced = 0;
  while (produced < total_bytes) {
    if (!snapshot.files.empty() && rng.chance(profile.p_duplicate_file)) {
      FileEntry copy = snapshot.files[rng.below(snapshot.files.size())];
      copy.path = fresh_path(kind);
      produced += copy.size();
      snapshot.files.push_back(std::move(copy));
    } else {
      FileEntry entry = make_file(kind, sample_size(profile, rng), rng);
      produced += entry.size();
      snapshot.files.push_back(std::move(entry));
    }
  }
  return snapshot;
}

std::vector<Snapshot> DatasetGenerator::sessions(std::uint32_t count) {
  AAD_EXPECTS(count >= 1);
  std::vector<Snapshot> out;
  out.reserve(count);
  out.push_back(initial());
  for (std::uint32_t s = 1; s < count; ++s) {
    out.push_back(next(out.back()));
  }
  return out;
}

std::vector<SizeBin> size_histogram(const Snapshot& snapshot) {
  std::vector<SizeBin> bins = {
      {1024, 0, 0},          {10 * 1024, 0, 0},
      {100 * 1024, 0, 0},    {1024 * 1024, 0, 0},
      {10ull << 20, 0, 0},   {100ull << 20, 0, 0},
      {~std::uint64_t{0}, 0, 0},
  };
  for (const FileEntry& file : snapshot.files) {
    const std::uint64_t size = file.size();
    for (SizeBin& bin : bins) {
      if (size < bin.upper_bound) {
        ++bin.file_count;
        bin.total_bytes += size;
        break;
      }
    }
  }
  return bins;
}

}  // namespace aadedupe::dataset
