#include "dataset/file_kind.hpp"

namespace aadedupe::dataset {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * KB;

// Capacity weights follow Table I dataset sizes (MB): AVI 2243, MP3 1410,
// ISO 1291, DMG 1032, RAR 1452, JPG 1797, PDF 910, EXE 400, VMDK 28473,
// DOC 550, TXT 906, PPT 320 (total ~40.8 GB).
//
// pool_share / run_blocks / misalign_prob / zero_fraction are calibrated
// so that intra-type chunk-level dedup after file-level dedup approximates
// Table I's SC DR and CDC DR columns (see bench/table1_redundancy and
// EXPERIMENTS.md for paper-vs-measured):
//  * longer shared runs raise CDC's capture rate (only run edges straddle);
//  * misalignment (an odd-length insert at a random point) costs SC the
//    rest of the file but costs CDC almost nothing — this produces the
//    CDC >= SC gap of the dynamic document types;
//  * zero runs (VM sparse regions) dedup perfectly under SC but force
//    unaligned max-size cuts under CDC — producing VMDK's SC > CDC gap.
constexpr TypeProfile kProfiles[kFileKindCount] = {
    // kind            weight  paper_mean  bench_mean sigma share   pool  run  misalign zero  p_mod  p_del  new    dup
    {FileKind::kAvi,   2243,   198 * MB,   1536 * KB, 0.45, 0.0003, 4,    8,   0.0,     0.0,  0.000, 0.004, 0.020, 0.040},
    {FileKind::kMp3,   1410,   5 * MB,     640 * KB,  0.55, 0.0040, 4,    8,   0.0,     0.0,  0.002, 0.004, 0.030, 0.050},
    {FileKind::kIso,   1291,   646 * MB,   2048 * KB, 0.35, 0.0050, 4,    8,   0.0,     0.0,  0.000, 0.004, 0.010, 0.020},
    {FileKind::kDmg,   1032,   86 * MB,    1280 * KB, 0.45, 0.0090, 4,    8,   0.0,     0.0,  0.000, 0.006, 0.015, 0.030},
    {FileKind::kRar,   1452,   12 * MB,    768 * KB,  0.60, 0.0160, 6,    8,   0.0,     0.0,  0.002, 0.006, 0.030, 0.030},
    {FileKind::kJpg,   1797,   2 * MB,     160 * KB,  0.70, 0.0220, 8,    4,   0.0,     0.0,  0.001, 0.004, 0.050, 0.060},
    {FileKind::kPdf,   910,    403 * KB,   384 * KB,  0.85, 0.0280, 64,   12,  0.0,     0.0,  0.020, 0.006, 0.040, 0.050},
    {FileKind::kExe,   400,    298 * KB,   288 * KB,  0.95, 0.0850, 64,   16,  0.0,     0.0,  0.030, 0.008, 0.030, 0.040},
    {FileKind::kVmdk,  28473,  312 * MB,   3072 * KB, 0.25, 0.1650, 256,  8,   0.0,     0.12, 0.120, 0.002, 0.005, 0.000},
    {FileKind::kDoc,   550,    180 * KB,   176 * KB,  0.90, 0.2500, 96,   16,  0.16,    0.0,  0.350, 0.010, 0.060, 0.060},
    {FileKind::kTxt,   906,    615 * KB,   576 * KB,  0.90, 0.2700, 96,   16,  0.37,    0.0,  0.320, 0.010, 0.050, 0.040},
    {FileKind::kPpt,   320,    977 * KB,   896 * KB,  0.85, 0.3000, 96,   16,  0.33,    0.0,  0.300, 0.010, 0.050, 0.050},
};

}  // namespace

const TypeProfile& profile_of(FileKind kind) noexcept {
  return kProfiles[static_cast<std::size_t>(kind)];
}

}  // namespace aadedupe::dataset
