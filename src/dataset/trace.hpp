// Trace-driven workloads: build backup sessions from a user-supplied file
// listing instead of the synthetic population model.
//
// Researchers rarely can share file *contents*, but file listings
// (path, size, type, version per weekly scan) are routinely collectable.
// This module turns such a trace into runnable Snapshots by synthesizing
// deterministic content per (path, version):
//
//  * each 8 KB block of a file is seeded by (path, block, last_touched)
//    where last_touched is the newest version <= the file's version in
//    which a per-category modification hash selected that block — so
//    consecutive versions of a file share all untouched blocks, giving
//    natural cross-session sub-file redundancy without replaying history;
//  * a per-kind fraction of blocks is drawn from the type's shared pool
//    (same pools as the synthetic generator), giving intra-type cross-file
//    redundancy per Table I;
//  * everything is a pure function of the trace row, so two runs (or two
//    machines) see identical bytes.
//
// Trace CSV format, one row per file per session (header optional):
//   session,path,ext,size_bytes,version
// e.g.  0,docs/report.doc,doc,183500,0
#pragma once

#include <string>
#include <vector>

#include "dataset/content.hpp"
#include "dataset/file_kind.hpp"
#include "dataset/snapshot.hpp"

namespace aadedupe::dataset {

struct TraceEntry {
  std::uint32_t session = 0;
  std::string path;
  FileKind kind = FileKind::kTxt;
  std::uint64_t size = 0;
  std::uint32_t version = 0;
};

/// Parse trace CSV text. Throws FormatError on malformed rows; unknown
/// extensions map to the dynamic-uncompressed fallback.
std::vector<TraceEntry> parse_trace_csv(const std::string& text);

/// Deterministic content recipe for one trace row.
ContentRecipe trace_content(FileKind kind, const std::string& path,
                            std::uint64_t size, std::uint32_t version);

/// Group trace entries into per-session Snapshots (sessions sorted
/// ascending; files sorted by path within a session).
std::vector<Snapshot> sessions_from_trace(
    const std::vector<TraceEntry>& entries);

}  // namespace aadedupe::dataset
