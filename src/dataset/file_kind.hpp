// The 12 application file types of the paper's evaluation (Table I), their
// AA-Dedupe categories, and the per-type generation profiles that calibrate
// the synthetic dataset to the paper's measured characteristics.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace aadedupe::dataset {

/// Application/file types, in Table I order.
enum class FileKind : std::uint8_t {
  kAvi,
  kMp3,
  kIso,
  kDmg,
  kRar,
  kJpg,
  kPdf,
  kExe,
  kVmdk,
  kDoc,
  kTxt,
  kPpt,
};

inline constexpr std::size_t kFileKindCount = 12;

constexpr std::array<FileKind, kFileKindCount> all_file_kinds() {
  return {FileKind::kAvi, FileKind::kMp3, FileKind::kIso, FileKind::kDmg,
          FileKind::kRar, FileKind::kJpg, FileKind::kPdf, FileKind::kExe,
          FileKind::kVmdk, FileKind::kDoc, FileKind::kTxt, FileKind::kPpt};
}

/// AA-Dedupe's three application categories (paper Section III.C).
enum class AppCategory : std::uint8_t {
  kCompressed,           // WFC + Rabin-96
  kStaticUncompressed,   // SC + MD5
  kDynamicUncompressed,  // CDC + SHA-1
};

constexpr AppCategory category_of(FileKind kind) noexcept {
  switch (kind) {
    case FileKind::kAvi:
    case FileKind::kMp3:
    case FileKind::kIso:
    case FileKind::kDmg:
    case FileKind::kRar:
    case FileKind::kJpg:
      return AppCategory::kCompressed;
    case FileKind::kPdf:
    case FileKind::kExe:
    case FileKind::kVmdk:
      return AppCategory::kStaticUncompressed;
    case FileKind::kDoc:
    case FileKind::kTxt:
    case FileKind::kPpt:
      return AppCategory::kDynamicUncompressed;
  }
  return AppCategory::kCompressed;  // unreachable for valid enum values
}

constexpr std::string_view extension(FileKind kind) noexcept {
  switch (kind) {
    case FileKind::kAvi:
      return "avi";
    case FileKind::kMp3:
      return "mp3";
    case FileKind::kIso:
      return "iso";
    case FileKind::kDmg:
      return "dmg";
    case FileKind::kRar:
      return "rar";
    case FileKind::kJpg:
      return "jpg";
    case FileKind::kPdf:
      return "pdf";
    case FileKind::kExe:
      return "exe";
    case FileKind::kVmdk:
      return "vmdk";
    case FileKind::kDoc:
      return "doc";
    case FileKind::kTxt:
      return "txt";
    case FileKind::kPpt:
      return "ppt";
  }
  return "?";
}

constexpr std::string_view to_string(AppCategory category) noexcept {
  switch (category) {
    case AppCategory::kCompressed:
      return "compressed";
    case AppCategory::kStaticUncompressed:
      return "static";
    case AppCategory::kDynamicUncompressed:
      return "dynamic";
  }
  return "?";
}

/// Per-type generation profile. The redundancy and churn knobs are
/// calibrated so that the synthetic corpus reproduces Table I's per-type
/// SC/CDC dedup ratios and the paper's backup-session behaviour; the size
/// fields reproduce Table I's mean file sizes (paper_mean_bytes) and a
/// laptop-friendly scaled variant (bench_mean_bytes).
struct TypeProfile {
  FileKind kind;
  /// Share of total dataset capacity (proportional to Table I dataset MB).
  double capacity_weight;
  /// Mean file size in the paper's corpus (Table I "Mean File Size").
  std::uint64_t paper_mean_bytes;
  /// Mean file size used when content is actually materialized in benches.
  std::uint64_t bench_mean_bytes;
  /// Lognormal shape parameter for file sizes.
  double sigma;
  /// Probability that a content run is drawn from the type-shared pool
  /// (controls intra-type sub-file redundancy; ~ 1 - 1/DR).
  double pool_share;
  /// Number of distinct 8 KB blocks in the type's shared pool.
  std::uint32_t pool_blocks;
  /// Consecutive pool blocks taken per shared run (longer runs let CDC
  /// dedup run interiors; run edges straddle and stay unique).
  std::uint32_t run_blocks;
  /// Probability that a file's content is shifted by a small unaligned
  /// prefix/insert — defeats SC (boundary shift) but not CDC.
  double misalign_prob;
  /// Fraction of content that is zero-filled runs (VM images); zeros
  /// dedup perfectly under SC and force max-size cuts under CDC.
  double zero_fraction;
  /// Weekly churn: P(existing file modified), P(deleted), new files as a
  /// fraction of current count, and P(a new file duplicates an existing).
  double p_modify;
  double p_delete;
  double new_file_fraction;
  double p_duplicate_file;
};

/// Calibrated profile table (see DESIGN.md section 2 and the Table I
/// calibration test for the paper-vs-measured comparison).
const TypeProfile& profile_of(FileKind kind) noexcept;

}  // namespace aadedupe::dataset
