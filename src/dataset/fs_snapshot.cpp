#include "dataset/fs_snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

#include "util/check.hpp"

namespace aadedupe::dataset {

namespace fs = std::filesystem;

std::optional<FileKind> kind_from_extension(std::string_view extension) {
  std::string lower(extension);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  for (const FileKind kind : all_file_kinds()) {
    if (lower == dataset::extension(kind)) return kind;
  }
  // Common aliases.
  if (lower == "jpeg") return FileKind::kJpg;
  if (lower == "docx") return FileKind::kDoc;
  if (lower == "pptx") return FileKind::kPpt;
  if (lower == "log" || lower == "md" || lower == "csv") return FileKind::kTxt;
  if (lower == "zip" || lower == "gz" || lower == "7z" || lower == "bz2" ||
      lower == "xz") {
    return FileKind::kRar;  // same category: compressed archive
  }
  if (lower == "png" || lower == "gif") return FileKind::kJpg;
  if (lower == "mp4" || lower == "mkv" || lower == "mov") {
    return FileKind::kAvi;
  }
  if (lower == "dll" || lower == "so" || lower == "bin") {
    return FileKind::kExe;
  }
  if (lower == "img" || lower == "qcow2" || lower == "vdi") {
    return FileKind::kVmdk;
  }
  return std::nullopt;
}

namespace {

bool read_file(const fs::path& path, ByteBuffer& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0);
  out.resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out.data()), size)) {
    return false;
  }
  return true;
}

std::uint32_t version_of(const fs::directory_entry& entry,
                         std::uint64_t size) {
  // (mtime, size) folded to 32 bits: changes whenever the file changes in
  // the ways an incremental backup cares about.
  std::error_code ec;
  const auto mtime = entry.last_write_time(ec).time_since_epoch().count();
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(mtime) * 0x9e3779b97f4a7c15ull ^ size;
  return static_cast<std::uint32_t>(mixed ^ (mixed >> 32));
}

}  // namespace

Snapshot snapshot_from_directory(const fs::path& root,
                                 const FsSnapshotOptions& options) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw FormatError("fs snapshot: not a readable directory: " +
                      root.string());
  }

  Snapshot snapshot;
  snapshot.session = 0;

  auto dir_options = fs::directory_options::skip_permission_denied;
  if (options.follow_directory_symlinks) {
    dir_options |= fs::directory_options::follow_directory_symlink;
  }

  std::vector<fs::directory_entry> entries;
  for (fs::recursive_directory_iterator it(root, dir_options, ec), end;
       it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && !it->is_symlink(ec)) {
      entries.push_back(*it);
    }
  }
  // Deterministic order regardless of directory-iteration order.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.path() < b.path(); });

  for (const fs::directory_entry& entry : entries) {
    const std::uint64_t size = entry.file_size(ec);
    if (ec) continue;
    if (options.max_file_bytes != 0 && size > options.max_file_bytes) {
      continue;
    }

    ByteBuffer bytes;
    if (!read_file(entry.path(), bytes)) continue;

    FileEntry file;
    file.path = fs::relative(entry.path(), root, ec).generic_string();
    if (ec || file.path.empty()) continue;
    std::string ext = entry.path().extension().string();
    if (!ext.empty() && ext.front() == '.') ext.erase(0, 1);
    file.kind = kind_from_extension(ext).value_or(kUnknownKindFallback);
    file.version = version_of(entry, bytes.size());
    file.content.kind = file.kind;

    // Literal segments, split to respect the u32 segment length field.
    constexpr std::uint64_t kMaxSegment = 0x7fffffffull;
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const auto take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kMaxSegment, bytes.size() - offset));
      Segment seg;
      seg.type = Segment::Type::kLiteral;
      seg.length = take;
      seg.literal.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(offset + take));
      file.content.segments.push_back(std::move(seg));
      offset += take;
    }
    snapshot.files.push_back(std::move(file));
  }
  return snapshot;
}

}  // namespace aadedupe::dataset
