// Target (server-side) deduplication — the other half of the paper's
// taxonomy (Section II.B): "source deduplication ... eliminates redundant
// data at the client site; target deduplication eliminates redundant data
// at the backup server site."
//
// The client ships every file whole across the WAN each session; the
// *server* chunks, fingerprints, and deduplicates before storing. Storage
// efficiency matches chunk-level source dedup, but none of the WAN
// transfer is saved — exactly why the paper argues source dedup is the
// right choice for cloud backup over slow uplinks. Included so the
// source-vs-target comparison is runnable, not just cited.
#pragma once

#include <map>
#include <memory>

#include "backup/scheme.hpp"
#include "chunk/cdc_chunker.hpp"
#include "cloud/cloud_target.hpp"
#include "container/recipe.hpp"
#include "dataset/snapshot.hpp"
#include "index/memory_index.hpp"

namespace aadedupe::backup {

class TargetDedupeScheme final : public BackupScheme {
 public:
  explicit TargetDedupeScheme(cloud::CloudTarget& target)
      : BackupScheme(target) {}

  std::string_view name() const noexcept override { return "TargetDedup"; }

  ByteBuffer restore_file(const std::string& path) override;

  /// Logical bytes the server actually keeps (post-dedup) — the number
  /// that matches source chunk-level dedup despite full WAN transfers.
  std::uint64_t server_stored_bytes() const noexcept {
    return server_stored_bytes_;
  }

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  // Server-side state: the dedup happens after the WAN hop.
  chunk::CdcChunker chunker_;
  index::MemoryChunkIndex server_index_;
  container::RecipeStore server_recipes_;
  std::uint64_t server_stored_bytes_ = 0;
};

}  // namespace aadedupe::backup
