// Full backup: every session uploads every file in its entirety.
//
// The non-dedup reference point: maximal transfer and storage, minimal
// client compute. The paper's Fig. 9 notes Avamar's backup window is
// "even worse than the full backup method" in their environment — this
// scheme is what makes that comparison runnable.
#pragma once

#include <map>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "dataset/snapshot.hpp"

namespace aadedupe::backup {

class FullBackupScheme final : public BackupScheme {
 public:
  explicit FullBackupScheme(cloud::CloudTarget& target)
      : BackupScheme(target) {}

  std::string_view name() const noexcept override { return "FullBackup"; }

  ByteBuffer restore_file(const std::string& path) override;

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  std::map<std::string, std::string> latest_key_;  // path -> object key
};

}  // namespace aadedupe::backup
