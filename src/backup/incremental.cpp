#include "backup/incremental.hpp"

#include "backup/keys.hpp"
#include "hash/md5.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

void IncrementalScheme::run_session(const dataset::Snapshot& snapshot) {
  std::map<std::string, FileState> next_state;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    // Change-detection scan: read the file, slide the weak rolling
    // checksum across it and compute the strong per-block digests
    // (rsync-style), whether or not the file ends up being shipped.
    dataset::materialize_into(file.content, content);
    scan_window_.reset();
    std::uint64_t rolling = 0;
    for (std::byte b : content) rolling ^= scan_window_.push(b);
    hash::Md5 scan;
    scan.update(content);
    const hash::Digest strong = scan.finish();
    // Fold both checksums so the compiler cannot elide either pass.
    if ((rolling ^ strong.prefix64()) == 0x5ca1ab1e) continue;

    const auto it = files_.find(file.path);
    const bool unchanged = it != files_.end() &&
                           it->second.version == file.version;
    if (unchanged) {
      next_state.emplace(file.path, it->second);
      continue;
    }
    std::string key =
        keys::session_file_object(name(), snapshot.session, file.path);
    upload_or_throw(key, content);
    next_state.emplace(file.path, FileState{file.version, std::move(key)});
  }
  // Paths absent from the snapshot were deleted on the PC; the client
  // forgets them (cloud objects are retained for point-in-time restore).
  files_ = std::move(next_state);
}

ByteBuffer IncrementalScheme::restore_file(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw FormatError("incremental: unknown path " + path);
  }
  return download_or_throw(it->second.object_key, "incremental");
}

}  // namespace aadedupe::backup
