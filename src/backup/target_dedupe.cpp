#include "backup/target_dedupe.hpp"

#include "backup/keys.hpp"
#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

void TargetDedupeScheme::run_session(const dataset::Snapshot& snapshot) {
  container::RecipeStore recipes;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    dataset::materialize_into(file.content, content);

    // --- client side: no processing, ship the whole file over the WAN ---
    const std::string inbox_key = keys::session_file_object(
        "target-inbox", snapshot.session, file.path);
    upload_or_throw(inbox_key, content);

    // --- server side: dedup on arrival, then drop the raw upload ---
    container::FileRecipe recipe;
    recipe.path = file.path;
    recipe.file_size = content.size();
    for (const chunk::ChunkRef& ref : chunker_.split(content)) {
      const ConstByteSpan chunk_bytes =
          ConstByteSpan{content}.subspan(ref.offset, ref.length);
      const hash::Digest digest = hash::Sha1::hash(chunk_bytes);
      index::ChunkLocation location{0, 0, ref.length};
      if (const auto existing = server_index_.lookup(digest)) {
        location = *existing;
      } else {
        // Server-internal store: placed without a WAN hop, so bypass
        // upload/request accounting and write the object directly.
        target().store().put_internal(keys::chunk_object(digest),
                                      ByteBuffer(chunk_bytes.begin(),
                                                 chunk_bytes.end()));
        server_index_.insert(digest, location);
        server_stored_bytes_ += ref.length;
      }
      recipe.entries.push_back(container::RecipeEntry{digest, location});
    }
    recipes.put(std::move(recipe));
    // Raw upload discarded post-dedup; a server-side delete, so it goes
    // straight to the store rather than through the client's WAN stack.
    target().store().remove(inbox_key);
  }
  server_recipes_ = std::move(recipes);
}

ByteBuffer TargetDedupeScheme::restore_file(const std::string& path) {
  const container::FileRecipe* recipe = server_recipes_.find(path);
  if (recipe == nullptr) {
    throw FormatError("target-dedup: unknown path " + path);
  }
  ByteBuffer out;
  out.reserve(recipe->file_size);
  for (const container::RecipeEntry& entry : recipe->entries) {
    append(out, download_or_throw(keys::chunk_object(entry.digest),
                                  "target-dedup"));
  }
  if (out.size() != recipe->file_size) {
    throw FormatError("target-dedup: reassembled size mismatch for " + path);
  }
  return out;
}

}  // namespace aadedupe::backup
