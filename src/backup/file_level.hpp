// Source file-level deduplication (models BackupPC, paper ref [26]).
//
// Every file is fingerprinted whole with SHA-1 and deduplicated against a
// global file index: low metadata and lookup overhead, high throughput,
// but no sub-file redundancy detection — a modified document re-ships
// entirely.
#pragma once

#include <map>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "dataset/snapshot.hpp"
#include "hash/digest.hpp"
#include "index/memory_index.hpp"

namespace aadedupe::backup {

class FileLevelScheme final : public BackupScheme {
 public:
  explicit FileLevelScheme(cloud::CloudTarget& target)
      : BackupScheme(target) {}

  std::string_view name() const noexcept override { return "BackupPC"; }

  ByteBuffer restore_file(const std::string& path) override;

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  index::MemoryChunkIndex file_index_;        // digest -> (stored) marker
  std::map<std::string, hash::Digest> catalog_;  // path -> content digest
};

}  // namespace aadedupe::backup
