// Backup scheme interface and per-session report.
//
// Each scheme models one of the five systems the paper evaluates
// (Section IV.A): Jungle Disk (incremental), BackupPC (source file-level
// dedup), EMC Avamar (source chunk-level CDC dedup), SAM (hybrid
// semantic-aware dedup) and AA-Dedupe itself — plus a plain full backup
// used as the non-dedup reference. A scheme is a stateful client: it keeps
// its own indices and metadata across the 10 weekly sessions and ships
// data to a shared-format CloudTarget.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "cloud/cloud_target.hpp"
#include "dataset/snapshot.hpp"
#include "metrics/energy.hpp"
#include "metrics/params.hpp"
#include "telemetry/run_report.hpp"
#include "util/bytes.hpp"

namespace aadedupe::backup {

/// Everything measured about one backup session, with the paper's derived
/// metrics (DR, DT, DE, BWS) computed from it.
struct SessionReport {
  std::string scheme;
  std::uint32_t session = 0;

  std::uint64_t dataset_bytes = 0;   // DS: logical bytes in the snapshot
  std::uint64_t dataset_files = 0;
  std::uint64_t transferred_bytes = 0;  // physical bytes shipped this session
  std::uint64_t upload_requests = 0;    // OC: upload operations this session
  std::uint64_t cumulative_stored_bytes = 0;  // cloud occupancy after session

  double dedupe_seconds = 0.0;    // measured wall time of client processing
  double cpu_seconds = 0.0;       // measured process CPU time burned
  double transfer_seconds = 0.0;  // simulated WAN time for shipped bytes

  /// DR = DS / post-dedup bytes.
  double dedupe_ratio() const {
    return metrics::dedupe_ratio(dataset_bytes, transferred_bytes);
  }

  /// DT = DS / dedup time.
  double dedupe_throughput() const {
    return metrics::dedupe_throughput(dataset_bytes, dedupe_seconds);
  }

  /// DE = (1 - 1/DR) · DT, the paper's bytes-saved-per-second metric.
  /// A scheme whose framing overhead pushes transfers past the logical
  /// size (DR < 1) saves nothing; clamp rather than report negative DE.
  double bytes_saved_per_second() const {
    return metrics::bytes_saved_per_second(std::max(1.0, dedupe_ratio()),
                                           dedupe_throughput());
  }

  /// BWS with dedup and transfer pipelined: the slower stage dominates.
  double backup_window_seconds() const {
    return std::max(dedupe_seconds, transfer_seconds);
  }

  /// Session energy under the given model, over the deduplication phase —
  /// the paper's Fig. 11 measures power "during the deduplication
  /// process", not across the WAN transfer.
  double energy_joules(const metrics::EnergyModel& model) const {
    return model.energy_joules(dedupe_seconds, cpu_seconds);
  }
};

/// Contribute one session's measured numbers and the paper's derived
/// metrics (DR, DT, DE, BWS) to a run report, as the "session_report"
/// section.
void fill_run_report(const SessionReport& report,
                     telemetry::RunReport& out);

class BackupScheme {
 public:
  explicit BackupScheme(cloud::CloudTarget& target) : target_(&target) {}
  virtual ~BackupScheme() = default;

  BackupScheme(const BackupScheme&) = delete;
  BackupScheme& operator=(const BackupScheme&) = delete;

  /// Scheme name as used in the paper's figures.
  virtual std::string_view name() const noexcept = 0;

  /// Run one full backup session over the snapshot.
  SessionReport backup(const dataset::Snapshot& snapshot);

  /// Reassemble one file's bytes from the cloud as of the latest backed-up
  /// session. Throws FormatError if the path is unknown or cloud data is
  /// missing/corrupt.
  virtual ByteBuffer restore_file(const std::string& path) = 0;

  cloud::CloudTarget& target() noexcept { return *target_; }

 protected:
  /// Scheme-specific session body: process every file, upload new data,
  /// update client state. Fills the transfer-independent counters of the
  /// report (transferred/requests are derived from cloud stats deltas by
  /// backup()).
  virtual void run_session(const dataset::Snapshot& snapshot) = 0;

  /// Upload through the target's transport stack; throws
  /// cloud::CloudTransportError when the stack gives up past its retry
  /// budget. For schemes without a pipeline/journal, losing an upload
  /// silently is never acceptable.
  void upload_or_throw(const std::string& key, ByteBuffer data);

  /// Download an object that must exist. kNotFound becomes a FormatError
  /// ("<context>: missing object <key>" — the object is gone, retrying
  /// will not help); transport failures become CloudTransportError (the
  /// object may still be there — the caller can retry the restore later).
  ByteBuffer download_or_throw(const std::string& key,
                               std::string_view context);

  /// Add simulated client-side processing time (e.g. on-disk index seeks
  /// modeled by SimulatedDiskIndex) to the current session's dedup time.
  /// Thread-safe; callable from pipeline workers.
  void charge_sim_seconds(double seconds) {
    sim_seconds_.fetch_add(seconds, std::memory_order_relaxed);
  }

  /// Tenant identity carried on the per-session telemetry sketches
  /// (BWS/DR/DE) backup() records into the target's attached Telemetry.
  /// Empty (the default) records unlabeled — the single-client regime.
  void set_telemetry_tenant(std::string tenant) {
    telemetry_tenant_ = std::move(tenant);
  }

 private:
  cloud::CloudTarget* target_;
  std::string telemetry_tenant_;
  // std::atomic<double> via compare-exchange is overkill here; use a
  // relaxed atomic with fetch_add (C++20 supports it for floats).
  std::atomic<double> sim_seconds_{0.0};
};

}  // namespace aadedupe::backup
