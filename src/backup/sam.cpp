#include "backup/sam.hpp"

#include "backup/keys.hpp"
#include "dataset/file_kind.hpp"
#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

namespace {
/// SAM's semantic split: compressed media gain nothing from sub-file
/// dedup, so they stop at the whole-file tier.
bool chunk_tier_eligible(dataset::FileKind kind) {
  return dataset::category_of(kind) != dataset::AppCategory::kCompressed;
}

/// container_id tag marking a recipe entry stored as a whole-file object
/// rather than a chunk object.
constexpr std::uint64_t kFileObjectTag = ~std::uint64_t{0};
}  // namespace

SamScheme::SamScheme(cloud::CloudTarget& target, bool model_disk_index,
                     index::SimDiskOptions disk_options)
    : BackupScheme(target) {
  auto memory = std::make_unique<index::MemoryChunkIndex>();
  if (model_disk_index) {
    chunk_index_ = std::make_unique<index::SimulatedDiskIndex>(
        std::move(memory), disk_options,
        [this](double seconds) { charge_sim_seconds(seconds); });
  } else {
    chunk_index_ = std::move(memory);
  }
}

void SamScheme::run_session(const dataset::Snapshot& snapshot) {
  container::RecipeStore recipes;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    dataset::materialize_into(file.content, content);
    container::FileRecipe recipe;
    recipe.path = file.path;
    recipe.file_size = content.size();

    // Tier 1: whole-file dedup. A hit reuses the canonical recipe recorded
    // when this content was first stored (it may be chunked).
    const hash::Digest file_digest = hash::Sha1::hash(content);
    if (file_index_.lookup(file_digest)) {
      const auto canon = canonical_.find(file_digest);
      AAD_ENSURES(canon != canonical_.end());
      recipe.entries = canon->second;
      recipes.put(std::move(recipe));
      continue;
    }
    file_index_.insert(
        file_digest,
        index::ChunkLocation{0, 0, static_cast<std::uint32_t>(content.size())});

    if (!chunk_tier_eligible(file.kind) || content.empty()) {
      // Whole-file upload for compressed media (and empty files).
      if (!content.empty()) {
        upload_or_throw(keys::file_object(file_digest), content);
      }
      recipe.entries.push_back(container::RecipeEntry{
          file_digest,
          index::ChunkLocation{kFileObjectTag, 0,
                               static_cast<std::uint32_t>(content.size())}});
    } else {
      // Tier 2: CDC chunk-level dedup for uncompressed data.
      for (const chunk::ChunkRef& ref : chunker_.split(content)) {
        const ConstByteSpan chunk_bytes =
            ConstByteSpan{content}.subspan(ref.offset, ref.length);
        const hash::Digest digest = hash::Sha1::hash(chunk_bytes);
        index::ChunkLocation location{0, 0, ref.length};
        if (const auto existing = chunk_index_->lookup(digest)) {
          location = *existing;
        } else {
          upload_or_throw(keys::chunk_object(digest),
                          ByteBuffer(chunk_bytes.begin(), chunk_bytes.end()));
          chunk_index_->insert(digest, location);
        }
        recipe.entries.push_back(container::RecipeEntry{digest, location});
      }
    }
    canonical_.emplace(file_digest, recipe.entries);
    recipes.put(std::move(recipe));
  }
  recipes_ = std::move(recipes);
}

ByteBuffer SamScheme::restore_file(const std::string& path) {
  const container::FileRecipe* recipe = recipes_.find(path);
  if (recipe == nullptr) throw FormatError("sam: unknown path " + path);

  ByteBuffer out;
  out.reserve(recipe->file_size);
  for (const container::RecipeEntry& entry : recipe->entries) {
    const std::string key = entry.location.container_id == kFileObjectTag
                                ? keys::file_object(entry.digest)
                                : keys::chunk_object(entry.digest);
    append(out, download_or_throw(key, "sam"));
  }
  if (out.size() != recipe->file_size) {
    throw FormatError("sam: reassembled size mismatch for " + path);
  }
  return out;
}

}  // namespace aadedupe::backup
