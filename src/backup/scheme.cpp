#include "backup/scheme.hpp"

#include "util/stopwatch.hpp"

namespace aadedupe::backup {

SessionReport BackupScheme::backup(const dataset::Snapshot& snapshot) {
  SessionReport report;
  report.scheme = std::string(name());
  report.session = snapshot.session;
  report.dataset_bytes = snapshot.total_bytes();
  report.dataset_files = snapshot.file_count();

  const cloud::StoreStats before = target_->store().stats();
  target_->reset_transfer_clock();
  sim_seconds_.store(0.0);
  const double cpu_before = process_cpu_seconds();
  StopWatch wall;

  run_session(snapshot);

  report.dedupe_seconds = wall.seconds() + sim_seconds_.load();
  report.cpu_seconds = process_cpu_seconds() - cpu_before;
  report.transfer_seconds = target_->transfer_seconds();

  const cloud::StoreStats after = target_->store().stats();
  report.transferred_bytes = after.bytes_uploaded - before.bytes_uploaded;
  report.upload_requests = after.put_requests - before.put_requests;
  report.cumulative_stored_bytes = target_->store().stored_bytes();
  return report;
}

}  // namespace aadedupe::backup
