#include "backup/scheme.hpp"

#include "telemetry/health.hpp"
#include "telemetry/log.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace aadedupe::backup {

void BackupScheme::upload_or_throw(const std::string& key, ByteBuffer data) {
  const cloud::CloudStatus status = target_->upload(key, std::move(data));
  if (!status.ok()) {
    throw cloud::CloudTransportError("upload", key, status.error());
  }
}

ByteBuffer BackupScheme::download_or_throw(const std::string& key,
                                           std::string_view context) {
  cloud::CloudResult<ByteBuffer> result = target_->download(key);
  if (result.ok()) return std::move(result).value();
  if (result.error() == cloud::CloudError::kNotFound) {
    throw FormatError(std::string(context) + ": missing object " + key);
  }
  throw cloud::CloudTransportError("download", key, result.error());
}

SessionReport BackupScheme::backup(const dataset::Snapshot& snapshot) {
  SessionReport report;
  report.scheme = std::string(name());
  report.session = snapshot.session;
  report.dataset_bytes = snapshot.total_bytes();
  report.dataset_files = snapshot.file_count();

  const cloud::StoreStats before = target_->store().stats();
  target_->reset_transfer_clock();
  sim_seconds_.store(0.0);
  const double cpu_before = process_cpu_seconds();
  StopWatch wall;

  run_session(snapshot);

  report.dedupe_seconds = wall.seconds() + sim_seconds_.load();
  report.cpu_seconds = process_cpu_seconds() - cpu_before;
  report.transfer_seconds = target_->transfer_seconds();

  const cloud::StoreStats after = target_->store().stats();
  report.transferred_bytes = after.bytes_uploaded - before.bytes_uploaded;
  report.upload_requests = after.put_requests - before.put_requests;
  report.cumulative_stored_bytes = target_->store().stored_bytes();
  // One summary line per session, for every scheme, in the span-stage
  // category vocabulary ("session") so logs correlate with traces.
  if (telemetry::Telemetry* telemetry = target_->telemetry()) {
    // The paper's derived metrics as mergeable quantile sketches: one
    // observation per session, labeled by scheme (+ tenant in the fleet
    // harness), so N sessions yield fleet p50/p95/p99 rows instead of a
    // blended mean. report.py `aggregate` merges these across run
    // reports exactly.
    telemetry::MetricLabels labels{{"scheme", report.scheme}};
    if (!telemetry_tenant_.empty()) {
      labels.emplace_back("tenant", telemetry_tenant_);
    }
    telemetry->metrics.sketch("session.backup_window_s", labels)
        .observe(report.backup_window_seconds());
    telemetry->metrics.sketch("session.dedupe_ratio", labels)
        .observe(report.dedupe_ratio());
    telemetry->metrics.sketch("session.bytes_saved_per_s", labels)
        .observe(report.bytes_saved_per_second());
    // Same observations feed the live SLO burn-rate windows when a
    // HealthMonitor is attached (the ops plane's /healthz verdict).
    if (telemetry->health != nullptr) {
      telemetry->health->record_session(telemetry_tenant_,
                                        report.backup_window_seconds(),
                                        report.bytes_saved_per_second());
    }
    AAD_LOG(&telemetry->log, kInfo, "session",
            "%s session %u: %.1f MB dataset, %.1f MB transferred, "
            "DR %.2f, window %.2fs",
            report.scheme.c_str(), report.session,
            static_cast<double>(report.dataset_bytes) / 1e6,
            static_cast<double>(report.transferred_bytes) / 1e6,
            report.dedupe_ratio(), report.backup_window_seconds());
  }
  return report;
}

void fill_run_report(const SessionReport& report, telemetry::RunReport& out) {
  telemetry::JsonValue& section = out.section("session_report");
  section["scheme"] = report.scheme;
  section["session"] = report.session;
  section["dataset_bytes"] = report.dataset_bytes;
  section["dataset_files"] = report.dataset_files;
  section["transferred_bytes"] = report.transferred_bytes;
  section["upload_requests"] = report.upload_requests;
  section["cumulative_stored_bytes"] = report.cumulative_stored_bytes;
  section["dedupe_seconds"] = report.dedupe_seconds;
  section["cpu_seconds"] = report.cpu_seconds;
  section["transfer_seconds"] = report.transfer_seconds;
  section["dedupe_ratio"] = report.dedupe_ratio();
  section["dedupe_throughput_bps"] = report.dedupe_throughput();
  section["bytes_saved_per_second"] = report.bytes_saved_per_second();
  section["backup_window_seconds"] = report.backup_window_seconds();
}

}  // namespace aadedupe::backup
