// Cloud object key conventions shared by schemes and restore paths.
#pragma once

#include <cstdint>
#include <string>

#include "hash/digest.hpp"

namespace aadedupe::backup::keys {

/// Whole file stored by content digest (file-level dedup schemes).
inline std::string file_object(const hash::Digest& digest) {
  return "files/" + digest.hex();
}

/// Single chunk stored by content digest (per-chunk upload schemes).
inline std::string chunk_object(const hash::Digest& digest) {
  return "chunks/" + digest.hex();
}

/// Sealed container object (AA-Dedupe).
inline std::string container_object(std::uint64_t container_id) {
  return "containers/c" + std::to_string(container_id);
}

/// Whole file stored under a session-qualified path (full/incremental).
inline std::string session_file_object(std::string_view scheme,
                                       std::uint32_t session,
                                       const std::string& path) {
  std::string key;
  key += scheme;
  key += "/s";
  key += std::to_string(session);
  key += "/";
  key += path;
  return key;
}

/// Per-session client metadata (catalog/recipes/index sync).
inline std::string session_meta(std::string_view scheme,
                                std::uint32_t session,
                                std::string_view what) {
  std::string key = "meta/";
  key += scheme;
  key += "/s";
  key += std::to_string(session);
  key += "/";
  key += what;
  return key;
}

}  // namespace aadedupe::backup::keys
