#include "backup/chunk_level.hpp"

#include "backup/keys.hpp"
#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

ChunkLevelScheme::ChunkLevelScheme(cloud::CloudTarget& target,
                                   bool model_disk_index,
                                   index::SimDiskOptions disk_options)
    : BackupScheme(target) {
  auto memory = std::make_unique<index::MemoryChunkIndex>();
  if (model_disk_index) {
    chunk_index_ = std::make_unique<index::SimulatedDiskIndex>(
        std::move(memory), disk_options,
        [this](double seconds) { charge_sim_seconds(seconds); });
  } else {
    chunk_index_ = std::move(memory);
  }
}

void ChunkLevelScheme::run_session(const dataset::Snapshot& snapshot) {
  container::RecipeStore recipes;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    dataset::materialize_into(file.content, content);
    container::FileRecipe recipe;
    recipe.path = file.path;
    recipe.file_size = content.size();

    for (const chunk::ChunkRef& ref : chunker_.split(content)) {
      const ConstByteSpan chunk_bytes =
          ConstByteSpan{content}.subspan(ref.offset, ref.length);
      const hash::Digest digest = hash::Sha1::hash(chunk_bytes);
      index::ChunkLocation location{0, 0, ref.length};
      if (const auto existing = chunk_index_->lookup(digest)) {
        location = *existing;
      } else {
        // Per-chunk upload: this is what drives Avamar's request count and
        // WAN overhead in Figs. 9 and 10.
        upload_or_throw(keys::chunk_object(digest),
                        ByteBuffer(chunk_bytes.begin(), chunk_bytes.end()));
        chunk_index_->insert(digest, location);
      }
      recipe.entries.push_back(container::RecipeEntry{digest, location});
    }
    recipes.put(std::move(recipe));
  }
  recipes_ = std::move(recipes);
}

ByteBuffer ChunkLevelScheme::restore_file(const std::string& path) {
  const container::FileRecipe* recipe = recipes_.find(path);
  if (recipe == nullptr) {
    throw FormatError("chunk-level: unknown path " + path);
  }
  ByteBuffer out;
  out.reserve(recipe->file_size);
  for (const container::RecipeEntry& entry : recipe->entries) {
    append(out,
           download_or_throw(keys::chunk_object(entry.digest), "chunk-level"));
  }
  if (out.size() != recipe->file_size) {
    throw FormatError("chunk-level: reassembled size mismatch for " + path);
  }
  return out;
}

}  // namespace aadedupe::backup
