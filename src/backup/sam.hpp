// SAM: semantic-aware multi-tiered source deduplication (paper ref [11],
// Tan et al., ICPP'10) — the closest prior work to AA-Dedupe.
//
// SAM combines file-level and chunk-level dedup using file semantics:
// every file is first deduplicated whole (global SHA-1 file index); files
// that miss and belong to uncompressed/editable types additionally go
// through CDC chunk-level dedup against a global chunk index. Compared to
// AA-Dedupe it still pays SHA-1 everywhere, runs CDC on static data where
// SC would do, keeps monolithic global indices, and ships chunks
// individually (no container aggregation).
#pragma once

#include <map>
#include <memory>

#include "backup/scheme.hpp"
#include "chunk/cdc_chunker.hpp"
#include "cloud/cloud_target.hpp"
#include "container/recipe.hpp"
#include "dataset/snapshot.hpp"
#include "hash/digest.hpp"
#include "index/chunk_index.hpp"
#include "index/memory_index.hpp"
#include "index/sim_disk_index.hpp"

namespace aadedupe::backup {

class SamScheme final : public BackupScheme {
 public:
  /// SAM's whole-file tier keeps metadata small (that is its design
  /// point), so the file index stays in RAM; the sub-file chunk index is
  /// still a monolithic global index and pays the simulated on-disk
  /// lookup cost by default, like Avamar's.
  explicit SamScheme(cloud::CloudTarget& target, bool model_disk_index = true,
                     index::SimDiskOptions disk_options = {});

  std::string_view name() const noexcept override { return "SAM"; }

  ByteBuffer restore_file(const std::string& path) override;

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  chunk::CdcChunker chunker_;
  index::MemoryChunkIndex file_index_;            // whole-file tier (RAM)
  std::unique_ptr<index::ChunkIndex> chunk_index_;  // sub-file tier
  container::RecipeStore recipes_;       // latest session
  /// Canonical recipe per whole-file digest, so a tier-1 duplicate of a
  /// previously *chunked* file can still be restored.
  std::map<hash::Digest, std::vector<container::RecipeEntry>> canonical_;
};

}  // namespace aadedupe::backup
