// Source chunk-level CDC deduplication (models EMC Avamar, paper ref [24]).
//
// Every file — regardless of type — is run through content-defined
// chunking (Rabin, 8 KB expected / 2-16 KB bounds) and every chunk is
// fingerprinted with SHA-1 and looked up in one global chunk index. This
// is the state-of-the-art *effectiveness* baseline, and the paper's
// canonical example of paying maximal compute and per-chunk transfer
// overhead for it: new chunks ship as individual objects.
#pragma once

#include <map>
#include <memory>

#include "backup/scheme.hpp"
#include "chunk/cdc_chunker.hpp"
#include "cloud/cloud_target.hpp"
#include "container/recipe.hpp"
#include "dataset/snapshot.hpp"
#include "index/chunk_index.hpp"
#include "index/memory_index.hpp"
#include "index/sim_disk_index.hpp"

namespace aadedupe::backup {

class ChunkLevelScheme final : public BackupScheme {
 public:
  /// The global chunk index is wrapped in SimulatedDiskIndex by default:
  /// a monolithic full-fingerprint index pays the on-disk lookup
  /// bottleneck the paper attributes to this class of scheme. Pass
  /// `model_disk_index=false` to measure pure compute instead.
  explicit ChunkLevelScheme(cloud::CloudTarget& target,
                            bool model_disk_index = true,
                            index::SimDiskOptions disk_options = {});

  std::string_view name() const noexcept override { return "Avamar"; }

  ByteBuffer restore_file(const std::string& path) override;

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  chunk::CdcChunker chunker_;  // paper parameters by default
  std::unique_ptr<index::ChunkIndex> chunk_index_;
  container::RecipeStore recipes_;  // client-side, latest session
};

}  // namespace aadedupe::backup
