// Incremental file backup (models Jungle Disk, paper ref [25]).
//
// No deduplication: the client tracks per-path versions and uploads any
// file that is new or has changed since the previous session, whole. This
// already removes the dominant cross-session redundancy (unchanged files)
// but re-ships every modified file entirely and never detects duplicate
// content across paths.
//
// Like the real Jungle Disk client (rsync-style change detection), the
// scan pass reads every file and computes block checksums to decide what
// changed — modeled here as an MD5 pass over all content — so the
// "dedupe time" of this scheme reflects a full read-and-checksum scan,
// not a free mtime check.
#pragma once

#include <cstdint>
#include <map>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "dataset/snapshot.hpp"
#include "hash/rabin.hpp"

namespace aadedupe::backup {

class IncrementalScheme final : public BackupScheme {
 public:
  explicit IncrementalScheme(cloud::CloudTarget& target)
      : BackupScheme(target) {}

  std::string_view name() const noexcept override { return "JungleDisk"; }

  ByteBuffer restore_file(const std::string& path) override;

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  struct FileState {
    std::uint32_t version = 0;
    std::string object_key;
  };
  std::map<std::string, FileState> files_;
  hash::RabinPoly scan_poly_;                 // rsync-style weak checksum
  hash::RabinWindow scan_window_{scan_poly_, 48};
};

}  // namespace aadedupe::backup
