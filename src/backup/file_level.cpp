#include "backup/file_level.hpp"

#include "backup/keys.hpp"
#include "hash/sha1.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

void FileLevelScheme::run_session(const dataset::Snapshot& snapshot) {
  std::map<std::string, hash::Digest> catalog;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    dataset::materialize_into(file.content, content);
    const hash::Digest digest = hash::Sha1::hash(content);
    if (!file_index_.lookup(digest)) {
      upload_or_throw(keys::file_object(digest), content);
      file_index_.insert(
          digest, index::ChunkLocation{
                      0, 0, static_cast<std::uint32_t>(content.size())});
    }
    catalog.emplace(file.path, digest);
  }
  catalog_ = std::move(catalog);
}

ByteBuffer FileLevelScheme::restore_file(const std::string& path) {
  const auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    throw FormatError("file-level: unknown path " + path);
  }
  return download_or_throw(keys::file_object(it->second), "file-level");
}

}  // namespace aadedupe::backup
