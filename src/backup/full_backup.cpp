#include "backup/full_backup.hpp"

#include "backup/keys.hpp"
#include "util/check.hpp"

namespace aadedupe::backup {

void FullBackupScheme::run_session(const dataset::Snapshot& snapshot) {
  std::map<std::string, std::string> session_keys;
  ByteBuffer content;
  for (const dataset::FileEntry& file : snapshot.files) {
    dataset::materialize_into(file.content, content);
    std::string key =
        keys::session_file_object(name(), snapshot.session, file.path);
    upload_or_throw(key, content);
    session_keys.emplace(file.path, std::move(key));
  }
  latest_key_ = std::move(session_keys);
}

ByteBuffer FullBackupScheme::restore_file(const std::string& path) {
  const auto it = latest_key_.find(path);
  if (it == latest_key_.end()) {
    throw FormatError("full backup: unknown path " + path);
  }
  return download_or_throw(it->second, "full backup");
}

}  // namespace aadedupe::backup
