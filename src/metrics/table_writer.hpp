// Aligned plain-text tables for the figure/table reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace aadedupe::telemetry {
class JsonValue;
}  // namespace aadedupe::telemetry

namespace aadedupe::metrics {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Append one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns (first column left-aligned, the rest
  /// right-aligned, which suits label + numbers rows).
  std::string to_string() const;

  /// Convenience: render and write to stdout.
  void print() const;

  /// Structured form of the table: an array of row objects keyed by the
  /// headers, serialized by the telemetry JSON writer (the repo's only
  /// one), so any printed table can also land in a run report verbatim.
  void fill_json(telemetry::JsonValue& out) const;

  // Cell formatting helpers.
  static std::string num(double value, int precision = 2);
  static std::string integer(std::uint64_t value);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aadedupe::metrics
