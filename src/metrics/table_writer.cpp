#include "metrics/table_writer.hpp"

#include <algorithm>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace aadedupe::metrics {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AAD_EXPECTS(!headers_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  AAD_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out += cells[c];
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cells[c];
      }
      out += (c + 1 == cells.size()) ? "\n" : "  ";
    }
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    out += (c + 1 == headers_.size()) ? "\n" : "  ";
  }
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TableWriter::print() const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

void TableWriter::fill_json(telemetry::JsonValue& out) const {
  telemetry::JsonValue& rows = out.make_array();
  for (const auto& row : rows_) {
    telemetry::JsonValue& entry = rows.push_back(telemetry::JsonValue{});
    entry.make_object();
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      entry[headers_[c]] = row[c];
    }
  }
}

std::string TableWriter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::integer(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string TableWriter::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace aadedupe::metrics
