// Table II of the paper: the parameter glossary for cloud backup services,
// and the paper's three evaluation formulas.
//
//   DE  Dedupe Efficiency        SC  Saved Capacity
//   DT  Dedupe Throughput        DS  Dataset Size
//   NT  Network Throughput       DR  Dedupe Ratio
//   BWS Backup Window Size       SP  Storage Price
//   OP  Operation Price          TP  Transfer Price
//   OC  Operation Count          CC  Cloud Cost
//
// Formulas (paper Sections IV.B, IV.D, IV.E):
//   DE  = SC / DT_time = (1 - 1/DR) · DT          [bytes saved per second]
//   BWS = DS · max(1/DT, 1/(DR·NT))               [pipelined dedup+transfer]
//   CC  = DS/DR · (SP + TP) + OC · OP
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/check.hpp"

namespace aadedupe::metrics {

/// DR: ratio of bytes before deduplication to bytes actually shipped.
inline double dedupe_ratio(std::uint64_t bytes_before,
                           std::uint64_t bytes_after) noexcept {
  if (bytes_after == 0) {
    // Everything deduplicated away; treat as the before-count itself to
    // keep downstream formulas finite.
    return bytes_before == 0 ? 1.0 : static_cast<double>(bytes_before);
  }
  return static_cast<double>(bytes_before) / static_cast<double>(bytes_after);
}

/// DT: deduplication throughput in bytes/second.
inline double dedupe_throughput(std::uint64_t dataset_bytes,
                                double dedupe_seconds) {
  AAD_EXPECTS(dedupe_seconds > 0.0);
  return static_cast<double>(dataset_bytes) / dedupe_seconds;
}

/// DE = (1 - 1/DR) · DT — the paper's "bytes saved per second" metric.
inline double bytes_saved_per_second(double dedupe_ratio_value,
                                     double dedupe_throughput_value) {
  AAD_EXPECTS(dedupe_ratio_value >= 1.0);
  return (1.0 - 1.0 / dedupe_ratio_value) * dedupe_throughput_value;
}

/// BWS = DS · max(1/DT, 1/(DR·NT)) — with dedup and transfer pipelined,
/// whichever stage is slower sets the window.
inline double backup_window_seconds(std::uint64_t dataset_bytes,
                                    double dedupe_throughput_value,
                                    double dedupe_ratio_value,
                                    double network_bytes_per_s) {
  AAD_EXPECTS(dedupe_throughput_value > 0.0);
  AAD_EXPECTS(dedupe_ratio_value >= 1.0);
  AAD_EXPECTS(network_bytes_per_s > 0.0);
  const double ds = static_cast<double>(dataset_bytes);
  return ds * std::max(1.0 / dedupe_throughput_value,
                       1.0 / (dedupe_ratio_value * network_bytes_per_s));
}

}  // namespace aadedupe::metrics
