// Energy model for the Fig. 11 experiment.
//
// The paper measures whole-PC power with an electricity usage monitor and
// attributes the per-scheme differences to deduplication compute. We
// substitute a two-term model: the machine draws `idle_watts` for the
// duration of the backup (screen, DRAM, idle cores) plus `active_watts`
// per second of CPU time actually burned by the scheme. CPU seconds are
// *measured*, so a compute-hungry scheme (CDC + SHA-1 everywhere) pays
// proportionally more energy, reproducing the paper's 3-4x ordering.
//
// Defaults approximate the paper's 2009-era 13" laptop: ~14 W idle,
// ~22 W of incremental package power per saturated-CPU second.
#pragma once

#include "util/check.hpp"

namespace aadedupe::metrics {

struct EnergyModel {
  double idle_watts = 14.0;
  double active_watts = 22.0;

  /// Total energy for a backup that took `window_seconds` of wall time and
  /// burned `cpu_seconds` of CPU time.
  double energy_joules(double window_seconds, double cpu_seconds) const {
    AAD_EXPECTS(window_seconds >= 0.0 && cpu_seconds >= 0.0);
    return idle_watts * window_seconds + active_watts * cpu_seconds;
  }

  /// Average power draw over the backup window.
  double average_watts(double window_seconds, double cpu_seconds) const {
    AAD_EXPECTS(window_seconds > 0.0);
    return energy_joules(window_seconds, cpu_seconds) / window_seconds;
  }
};

}  // namespace aadedupe::metrics
