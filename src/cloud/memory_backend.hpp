// MemoryBackend — the always-available in-memory cloud the paper assumes.
//
// Wraps an ObjectStore and charges simulated WAN time for every byte that
// crosses the link. This is the bottom of the backend stack; fault
// injection and retries are layered on top of it.
#pragma once

#include <functional>
#include <string>

#include "cloud/cloud_backend.hpp"
#include "cloud/cloud_result.hpp"
#include "cloud/object_store.hpp"
#include "cloud/wan_link.hpp"

namespace aadedupe::cloud {

/// Sink for simulated wall-clock seconds (thread-safe on the caller's
/// side; CloudTarget accumulates them into its transfer clock).
using ChargeFn = std::function<void(double)>;

class MemoryBackend final : public CloudBackend {
 public:
  MemoryBackend(ObjectStore& store, WanLink link, ChargeFn charge)
      : store_(&store), link_(link), charge_(std::move(charge)) {}

  CloudStatus put(const std::string& key, ConstByteSpan data) override {
    store_->put(key, ByteBuffer(data.begin(), data.end()));
    charge_(link_.upload_seconds(data.size(), 1));
    return CloudOk{};
  }

  CloudResult<ByteBuffer> get(const std::string& key) override {
    auto data = store_->get(key);
    if (!data) return CloudError::kNotFound;
    charge_(link_.download_seconds(data->size(), 1));
    return std::move(*data);
  }

  CloudResult<bool> remove(const std::string& key) override {
    // Deletes carry no payload; like the pre-existing accounting, they do
    // not advance the transfer clock (the cost model bills requests from
    // ObjectStore stats, not from here).
    return store_->remove(key);
  }

  std::string_view name() const noexcept override { return "memory"; }

 private:
  ObjectStore* store_;
  WanLink link_;
  ChargeFn charge_;
};

}  // namespace aadedupe::cloud
