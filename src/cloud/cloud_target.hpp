// CloudTarget — the backup destination as seen by a scheme: an object
// store behind a WAN link, with transfer-time and cost accounting, fronted
// by a fault-tolerant transport stack.
//
// Data-plane operations (upload / download / remove_object) run through a
// CloudBackend stack
//
//   MemoryBackend → [FaultInjectingBackend] → RetryingBackend
//
// and return typed CloudResults; simulated transfer time — including the
// cost of failed attempts and retry backoff — accumulates on the transfer
// clock that session reports read to compute the backup window.
//
// The raw ObjectStore stays reachable via store() for control-plane reads
// (stats, list, exists), for server-internal writes that never cross the
// client's WAN (put_internal), and for tests that tamper with at-rest
// bytes. Schemes must not mutate it directly for client traffic: that
// path bypasses accounting, fault injection, and retries.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cloud/cloud_backend.hpp"
#include "cloud/cloud_result.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/fault_injection.hpp"
#include "cloud/memory_backend.hpp"
#include "cloud/object_store.hpp"
#include "cloud/retrying_backend.hpp"
#include "cloud/wan_link.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"

namespace aadedupe::cloud {

class CloudTarget {
 public:
  CloudTarget();
  CloudTarget(WanLink link, CostModel cost);

  CloudTarget(const CloudTarget&) = delete;
  CloudTarget& operator=(const CloudTarget&) = delete;

  /// Upload an object through the transport stack; accounts request,
  /// bytes, and transfer time (including failed attempts and backoff).
  CloudStatus upload(const std::string& key, ByteBuffer data);

  /// Download an object; kNotFound when absent, transport errors when the
  /// (possibly fault-injected) link fails past the retry budget.
  CloudResult<ByteBuffer> download(const std::string& key);

  /// Delete an object through the transport stack; the success payload
  /// says whether it existed.
  CloudResult<bool> remove_object(const std::string& key);

  /// Insert a deterministic fault-injection layer into the stack. Call
  /// before traffic flows (not thread-safe against in-flight operations).
  void inject_faults(const FaultProfile& profile, std::uint64_t seed);

  /// Remove the fault-injection layer.
  void clear_faults();

  /// Replace the retry policy (RetryPolicy::none() disables retries).
  /// Call before traffic flows.
  void set_retry_policy(const RetryPolicy& policy);

  /// Attach (or detach, with nullptr) a telemetry context; the transport
  /// decorators report retry/fault counters and backoff waits into it.
  /// Call before traffic flows — rebuilds the stack.
  void attach_telemetry(telemetry::Telemetry* telemetry);
  [[nodiscard]] telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  /// Contribute the "cloud" section of a run report: object-store
  /// traffic, retry and fault counters, transfer clock, monthly cost.
  void fill_run_report(telemetry::RunReport& report) const;

  const RetryPolicy& retry_policy() const noexcept { return retry_policy_; }
  /// The retry decorator — always installed; read its counters directly.
  const RetryingBackend& retrier() const noexcept { return *retrier_; }
  /// The fault-injection decorator, or nullptr when none is installed.
  const FaultInjectingBackend* fault_injector() const noexcept {
    return faults_.get();
  }
  /// All injected failures so far; 0 when no fault layer is installed.
  std::uint64_t injected_fault_total() const {
    return faults_ ? faults_->injected_total() : 0;
  }

  /// Accumulated simulated transfer time (upload + download + failed
  /// attempts + retry backoff) in seconds.
  double transfer_seconds() const {
    std::lock_guard lock(mutex_);
    return transfer_seconds_;
  }

  /// Reset the transfer clock (e.g. at the start of a backup session).
  void reset_transfer_clock() {
    std::lock_guard lock(mutex_);
    transfer_seconds_ = 0.0;
  }

  /// Monthly cost of the current cloud state given everything uploaded so
  /// far (paper Section IV.E formula).
  double monthly_cost() const {
    const StoreStats s = store_.stats();
    return cost_.monthly_cost(store_.stored_bytes(), s.bytes_uploaded,
                              s.put_requests);
  }

  ObjectStore& store() noexcept { return store_; }
  const ObjectStore& store() const noexcept { return store_; }
  const WanLink& link() const noexcept { return link_; }
  const CostModel& cost_model() const noexcept { return cost_; }

 private:
  void rebuild_stack();
  void charge(double seconds) {
    std::lock_guard lock(mutex_);
    transfer_seconds_ += seconds;
  }

  ObjectStore store_;
  WanLink link_;
  CostModel cost_;
  mutable std::mutex mutex_;
  double transfer_seconds_ = 0.0;

  RetryPolicy retry_policy_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::optional<FaultProfile> fault_profile_;
  std::uint64_t fault_seed_ = 0;
  std::unique_ptr<MemoryBackend> memory_;
  std::unique_ptr<FaultInjectingBackend> faults_;
  std::unique_ptr<RetryingBackend> retrier_;
  CloudBackend* backend_ = nullptr;  // top of the stack
};

}  // namespace aadedupe::cloud
