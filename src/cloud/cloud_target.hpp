// CloudTarget — the backup destination as seen by a scheme: an object
// store behind a WAN link, with transfer-time and cost accounting.
//
// Every upload advances the simulated transfer clock by the WAN model's
// duration for those bytes; session reports read the accumulated transfer
// time to compute the backup window with the paper's pipelined-overlap
// formula.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "cloud/cost_model.hpp"
#include "cloud/object_store.hpp"
#include "cloud/wan_link.hpp"
#include "util/bytes.hpp"

namespace aadedupe::cloud {

class CloudTarget {
 public:
  CloudTarget() = default;
  CloudTarget(WanLink link, CostModel cost) : link_(link), cost_(cost) {}

  /// Upload an object; accounts request, bytes, and transfer time.
  void upload(const std::string& key, ByteBuffer data) {
    const std::uint64_t size = data.size();
    store_.put(key, std::move(data));
    std::lock_guard lock(mutex_);
    transfer_seconds_ += link_.upload_seconds(size, 1);
  }

  /// Download an object; accounts request, bytes, and transfer time.
  std::optional<ByteBuffer> download(const std::string& key) {
    auto data = store_.get(key);
    if (data) {
      std::lock_guard lock(mutex_);
      transfer_seconds_ += link_.download_seconds(data->size(), 1);
    }
    return data;
  }

  /// Accumulated simulated transfer time (upload + download) in seconds.
  double transfer_seconds() const {
    std::lock_guard lock(mutex_);
    return transfer_seconds_;
  }

  /// Reset the transfer clock (e.g. at the start of a backup session).
  void reset_transfer_clock() {
    std::lock_guard lock(mutex_);
    transfer_seconds_ = 0.0;
  }

  /// Monthly cost of the current cloud state given everything uploaded so
  /// far (paper Section IV.E formula).
  double monthly_cost() const {
    const StoreStats s = store_.stats();
    return cost_.monthly_cost(store_.stored_bytes(), s.bytes_uploaded,
                              s.put_requests);
  }

  ObjectStore& store() noexcept { return store_; }
  const ObjectStore& store() const noexcept { return store_; }
  const WanLink& link() const noexcept { return link_; }
  const CostModel& cost_model() const noexcept { return cost_; }

 private:
  ObjectStore store_;
  WanLink link_;
  CostModel cost_;
  mutable std::mutex mutex_;
  double transfer_seconds_ = 0.0;
};

}  // namespace aadedupe::cloud
