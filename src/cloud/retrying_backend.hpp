// RetryingBackend — capped exponential backoff with jitter, as a
// decorator over any CloudBackend.
//
// Retries only errors where a retry can help (is_retryable); kNotFound
// passes through on the first attempt. Backoff time is *simulated*: each
// wait is charged to the target's transfer clock through the ChargeFn, so
// an unreliable link widens the measured backup window instead of
// sleeping the test suite. Jitter is deterministic — derived from
// (seed, key, attempt) like the fault schedule — so retried runs stay
// reproducible.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "cloud/cloud_backend.hpp"
#include "cloud/cloud_result.hpp"
#include "cloud/memory_backend.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace aadedupe::cloud {

struct RetryPolicy {
  /// Total attempts per operation (1 = retries disabled).
  std::uint32_t max_attempts = 4;
  double base_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 8.0;
  /// Each wait is scaled by a uniform factor in [1-jitter, 1+jitter] so a
  /// fleet of clients does not retry in lockstep.
  double jitter_fraction = 0.25;

  static RetryPolicy none() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }

  /// Backoff before retry number `retry` (1-based), without jitter.
  double backoff_seconds(std::uint32_t retry) const;
};

class RetryingBackend final : public CloudBackend {
 public:
  /// `telemetry` (nullable) receives retry counters and the simulated
  /// backoff wait on the kRetryWait trace row.
  RetryingBackend(CloudBackend& inner, RetryPolicy policy, std::uint64_t seed,
                  ChargeFn charge, telemetry::Telemetry* telemetry = nullptr);

  CloudStatus put(const std::string& key, ConstByteSpan data) override;
  CloudResult<ByteBuffer> get(const std::string& key) override;
  CloudResult<bool> remove(const std::string& key) override;
  std::string_view name() const noexcept override { return "retrier"; }

  const RetryPolicy& policy() const noexcept { return policy_; }

  // Retry counters. Folded from the old RetryStats snapshot struct into
  // individual accessors: the authoritative rollup lives in the run
  // report's cloud.retry section (CloudTarget::fill_run_report).
  std::uint64_t operations() const { return locked(operations_); }
  std::uint64_t attempts() const { return locked(attempts_); }
  std::uint64_t retries() const { return locked(retries_); }
  /// Operations that failed with a retryable error even after the last
  /// attempt (surfaced to the caller as that error).
  std::uint64_t exhausted() const { return locked(exhausted_); }
  /// Operations that failed with a non-retryable error (kNotFound).
  std::uint64_t permanent_failures() const { return locked(permanent_failures_); }
  /// Total simulated seconds spent waiting between attempts.
  double backoff_seconds() const { return locked(backoff_seconds_); }

 private:
  template <typename T, typename Op>
  CloudResult<T> run_with_retries(const std::string& key, Op op);

  /// Jittered backoff for (key, retry); deterministic in the seed.
  double jittered_backoff(const std::string& key, std::uint32_t retry) const;

  template <typename T>
  T locked(const T& counter) const {
    std::lock_guard lock(mutex_);
    return counter;
  }

  CloudBackend* inner_;
  RetryPolicy policy_;
  std::uint64_t seed_;
  ChargeFn charge_;
  telemetry::Telemetry* telemetry_;
  telemetry::Counter retries_counter_;
  telemetry::Counter exhausted_counter_;

  mutable std::mutex mutex_;
  std::uint64_t operations_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t exhausted_ = 0;
  std::uint64_t permanent_failures_ = 0;
  double backoff_seconds_ = 0.0;
};

}  // namespace aadedupe::cloud
