#include "cloud/cloud_target.hpp"

#include "util/rng.hpp"

namespace aadedupe::cloud {

CloudTarget::CloudTarget() { rebuild_stack(); }

CloudTarget::CloudTarget(WanLink link, CostModel cost)
    : link_(link), cost_(cost) {
  rebuild_stack();
}

void CloudTarget::rebuild_stack() {
  const ChargeFn charge = [this](double seconds) { this->charge(seconds); };
  memory_ = std::make_unique<MemoryBackend>(store_, link_, charge);
  CloudBackend* top = memory_.get();
  if (fault_profile_) {
    faults_ = std::make_unique<FaultInjectingBackend>(
        *top, *fault_profile_, fault_seed_, link_, charge);
    top = faults_.get();
  } else {
    faults_.reset();
  }
  // The retrier draws its jitter from a seed stream independent of the
  // fault schedule so the two cannot correlate.
  retrier_ = std::make_unique<RetryingBackend>(
      *top, retry_policy_, derive_seed(fault_seed_, 0x2e72), charge);
  backend_ = retrier_.get();
}

CloudStatus CloudTarget::upload(const std::string& key, ByteBuffer data) {
  return backend_->put(key, data);
}

CloudResult<ByteBuffer> CloudTarget::download(const std::string& key) {
  return backend_->get(key);
}

CloudResult<bool> CloudTarget::remove_object(const std::string& key) {
  return backend_->remove(key);
}

void CloudTarget::inject_faults(const FaultProfile& profile,
                                std::uint64_t seed) {
  fault_profile_ = profile;
  fault_seed_ = seed;
  rebuild_stack();
}

void CloudTarget::clear_faults() {
  fault_profile_.reset();
  rebuild_stack();
}

void CloudTarget::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  rebuild_stack();
}

}  // namespace aadedupe::cloud
