#include "cloud/cloud_target.hpp"

#include "util/rng.hpp"

namespace aadedupe::cloud {

CloudTarget::CloudTarget() { rebuild_stack(); }

CloudTarget::CloudTarget(WanLink link, CostModel cost)
    : link_(link), cost_(cost) {
  rebuild_stack();
}

void CloudTarget::rebuild_stack() {
  const ChargeFn charge = [this](double seconds) { this->charge(seconds); };
  memory_ = std::make_unique<MemoryBackend>(store_, link_, charge);
  CloudBackend* top = memory_.get();
  if (fault_profile_) {
    faults_ = std::make_unique<FaultInjectingBackend>(
        *top, *fault_profile_, fault_seed_, link_, charge, telemetry_);
    top = faults_.get();
  } else {
    faults_.reset();
  }
  // The retrier draws its jitter from a seed stream independent of the
  // fault schedule so the two cannot correlate.
  retrier_ = std::make_unique<RetryingBackend>(
      *top, retry_policy_, derive_seed(fault_seed_, 0x2e72), charge,
      telemetry_);
  backend_ = retrier_.get();
}

CloudStatus CloudTarget::upload(const std::string& key, ByteBuffer data) {
  return backend_->put(key, data);
}

CloudResult<ByteBuffer> CloudTarget::download(const std::string& key) {
  return backend_->get(key);
}

CloudResult<bool> CloudTarget::remove_object(const std::string& key) {
  return backend_->remove(key);
}

void CloudTarget::inject_faults(const FaultProfile& profile,
                                std::uint64_t seed) {
  fault_profile_ = profile;
  fault_seed_ = seed;
  rebuild_stack();
}

void CloudTarget::clear_faults() {
  fault_profile_.reset();
  rebuild_stack();
}

void CloudTarget::set_retry_policy(const RetryPolicy& policy) {
  retry_policy_ = policy;
  rebuild_stack();
}

void CloudTarget::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  rebuild_stack();
}

void CloudTarget::fill_run_report(telemetry::RunReport& report) const {
  telemetry::JsonValue& cloud = report.section("cloud");

  const StoreStats store = store_.stats();
  telemetry::JsonValue& store_json = cloud["store"].make_object();
  store_json["put_requests"] = store.put_requests;
  store_json["get_requests"] = store.get_requests;
  store_json["delete_requests"] = store.delete_requests;
  store_json["bytes_uploaded"] = store.bytes_uploaded;
  store_json["bytes_downloaded"] = store.bytes_downloaded;
  store_json["stored_bytes"] = store_.stored_bytes();

  telemetry::JsonValue& retry_json = cloud["retry"].make_object();
  retry_json["operations"] = retrier_->operations();
  retry_json["attempts"] = retrier_->attempts();
  retry_json["retries"] = retrier_->retries();
  retry_json["exhausted"] = retrier_->exhausted();
  retry_json["permanent_failures"] = retrier_->permanent_failures();
  retry_json["backoff_seconds"] = retrier_->backoff_seconds();

  telemetry::JsonValue& fault_json = cloud["faults"].make_object();
  fault_json["enabled"] = fault_profile_.has_value();
  fault_json["put_attempts"] = faults_ ? faults_->put_attempts() : 0;
  fault_json["get_attempts"] = faults_ ? faults_->get_attempts() : 0;
  fault_json["injected_transient"] =
      faults_ ? faults_->injected_transient() : 0;
  fault_json["injected_timeout"] = faults_ ? faults_->injected_timeout() : 0;
  fault_json["injected_throttle"] = faults_ ? faults_->injected_throttle() : 0;
  fault_json["injected_corrupt"] = faults_ ? faults_->injected_corrupt() : 0;
  fault_json["injected_total"] = injected_fault_total();
  fault_json["latency_spikes"] = faults_ ? faults_->latency_spikes() : 0;

  cloud["transfer_seconds"] = transfer_seconds();
  cloud["monthly_cost_usd"] = monthly_cost();
}

}  // namespace aadedupe::cloud
