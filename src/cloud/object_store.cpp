#include "cloud/object_store.hpp"

#include <fstream>
#include <string_view>

#include "util/check.hpp"

namespace aadedupe::cloud {

namespace {
constexpr char kStoreMagic[8] = {'A', 'A', 'D', 'S', 'T', 'O', 'R', '1'};
}  // namespace

void ObjectStore::save_to_file(const std::string& path) const {
  std::lock_guard lock(mutex_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("object store: cannot write " + path);
  out.write(kStoreMagic, 8);
  std::byte scratch[8];
  store_le64(scratch, objects_.size());
  out.write(reinterpret_cast<const char*>(scratch), 8);
  for (const auto& [key, data] : objects_) {
    store_le64(scratch, key.size());
    out.write(reinterpret_cast<const char*>(scratch), 8);
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    store_le64(scratch, data.size());
    out.write(reinterpret_cast<const char*>(scratch), 8);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  if (!out) throw FormatError("object store: write failed for " + path);
}

void ObjectStore::load_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FormatError("object store: cannot read " + path);
  char magic[8];
  if (!in.read(magic, 8) || std::string_view(magic, 8) !=
                                std::string_view(kStoreMagic, 8)) {
    throw FormatError("object store: bad magic in " + path);
  }
  std::byte scratch[8];
  auto read_u64 = [&]() -> std::uint64_t {
    if (!in.read(reinterpret_cast<char*>(scratch), 8)) {
      throw FormatError("object store: truncated image " + path);
    }
    return load_le64(scratch);
  };
  const std::uint64_t count = read_u64();
  std::map<std::string, ByteBuffer> fresh;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key_len = read_u64();
    if (key_len > 4096) throw FormatError("object store: absurd key length");
    std::string key(key_len, '\0');
    if (!in.read(key.data(), static_cast<std::streamsize>(key_len))) {
      throw FormatError("object store: truncated key");
    }
    const std::uint64_t data_len = read_u64();
    ByteBuffer data(data_len);
    if (data_len > 0 &&
        !in.read(reinterpret_cast<char*>(data.data()),
                 static_cast<std::streamsize>(data_len))) {
      throw FormatError("object store: truncated object");
    }
    total += data_len;
    fresh.emplace(std::move(key), std::move(data));
  }
  std::lock_guard lock(mutex_);
  objects_ = std::move(fresh);
  stored_bytes_ = total;
}

void ObjectStore::put(const std::string& key, ByteBuffer data) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.put_requests;
    stats_.bytes_uploaded += data.size();
  }
  put_internal(key, std::move(data));
}

void ObjectStore::put_internal(const std::string& key, ByteBuffer data) {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    stored_bytes_ -= it->second.size();
    stored_bytes_ += data.size();
    it->second = std::move(data);
  } else {
    stored_bytes_ += data.size();
    objects_.emplace(key, std::move(data));
  }
}

std::optional<ByteBuffer> ObjectStore::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  ++stats_.get_requests;
  const auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  stats_.bytes_downloaded += it->second.size();
  return it->second;  // copy: callers own their bytes
}

bool ObjectStore::remove(const std::string& key) {
  std::lock_guard lock(mutex_);
  ++stats_.delete_requests;
  const auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  stored_bytes_ -= it->second.size();
  objects_.erase(it);
  return true;
}

bool ObjectStore::exists(const std::string& key) const {
  std::lock_guard lock(mutex_);
  return objects_.contains(key);
}

std::vector<std::string> ObjectStore::list(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.starts_with(prefix); ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

std::uint64_t ObjectStore::stored_bytes() const {
  std::lock_guard lock(mutex_);
  return stored_bytes_;
}

std::uint64_t ObjectStore::object_count() const {
  std::lock_guard lock(mutex_);
  return objects_.size();
}

StoreStats ObjectStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace aadedupe::cloud
