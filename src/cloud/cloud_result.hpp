// Typed results for cloud transport operations.
//
// The paper's evaluation treats the cloud as an always-available store;
// production WANs are not. Every data-plane operation against the cloud
// returns a CloudResult<T> so callers can distinguish "the object does not
// exist" from "the transport failed" — the two demand different recovery
// actions (give up vs. retry / journal / degrade).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.hpp"

namespace aadedupe::cloud {

/// Transport-level error taxonomy. The split matters for recovery:
/// kTransient / kTimeout / kThrottled are retryable (the object may well
/// arrive on the next attempt); kNotFound and kCorrupt are terminal for
/// the request — retrying cannot conjure a missing object, and corruption
/// that survived the transport checksum needs scrub-level repair.
enum class CloudError : std::uint8_t {
  kTransient = 0,  // connection reset, 5xx, flaky link
  kTimeout = 1,    // request exceeded its deadline
  kThrottled = 2,  // provider back-pressure (HTTP 429 / SlowDown)
  kNotFound = 3,   // key does not exist
  kCorrupt = 4,    // payload failed the transport checksum
};

constexpr std::string_view to_string(CloudError error) noexcept {
  switch (error) {
    case CloudError::kTransient: return "transient";
    case CloudError::kTimeout: return "timeout";
    case CloudError::kThrottled: return "throttled";
    case CloudError::kNotFound: return "not-found";
    case CloudError::kCorrupt: return "corrupt";
  }
  return "unknown";
}

/// Whether a retry of the same request can plausibly succeed. Corrupt
/// payloads are retryable on the read path: the bytes were damaged in
/// flight (caught by the transport checksum), not at rest.
constexpr bool is_retryable(CloudError error) noexcept {
  switch (error) {
    case CloudError::kTransient:
    case CloudError::kTimeout:
    case CloudError::kThrottled:
    case CloudError::kCorrupt:
      return true;
    case CloudError::kNotFound:
      return false;
  }
  return false;
}

/// Success-or-CloudError sum type. Implicitly constructible from either a
/// value or an error so backends read naturally:
///   if (missing) return CloudError::kNotFound;
///   return std::move(bytes);
template <typename T>
class [[nodiscard]] CloudResult {
 public:
  CloudResult(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  CloudResult(CloudError error) : error_(error) {}    // NOLINT(runtime/explicit)

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  T& value() & {
    AAD_EXPECTS(ok());
    return *value_;
  }
  const T& value() const& {
    AAD_EXPECTS(ok());
    return *value_;
  }
  T&& value() && {
    AAD_EXPECTS(ok());
    return std::move(*value_);
  }

  /// Precondition: !ok().
  [[nodiscard]] CloudError error() const {
    AAD_EXPECTS(!ok());
    return error_;
  }

 private:
  std::optional<T> value_;
  CloudError error_ = CloudError::kTransient;
};

/// Tag payload for operations whose success carries no data.
struct CloudOk {};

using CloudStatus = CloudResult<CloudOk>;

/// A cloud operation failed after all configured recovery (retries) was
/// exhausted. Carries the typed error and the object key so callers can
/// journal, surface, or map it to a recovery action.
class CloudTransportError : public std::runtime_error {
 public:
  CloudTransportError(std::string_view op, std::string key, CloudError error)
      : std::runtime_error("cloud " + std::string(op) + " failed (" +
                           std::string(to_string(error)) + "): " + key),
        key_(std::move(key)),
        error_(error) {}

  [[nodiscard]] const std::string& key() const noexcept { return key_; }
  [[nodiscard]] CloudError error() const noexcept { return error_; }

 private:
  std::string key_;
  CloudError error_;
};

}  // namespace aadedupe::cloud
