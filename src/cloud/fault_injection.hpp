// FaultInjectingBackend — deterministic WAN misbehaviour as a decorator.
//
// Makes the unreliable-cloud regime testable: per-operation failure
// probabilities (transient drop, timeout, throttle), latency spikes, and
// payload corruption (bit-flip or truncation), all driven by a seed.
//
// Determinism contract: the fault decision for an operation depends only
// on (seed, op, key, per-key attempt number) — never on wall clock or
// thread interleaving. Two runs with the same seed and the same set of
// requests see the same failure schedule per key, even when a parallel
// deduplication pass reorders the requests. This is what lets an
// end-to-end test assert byte-exact restores at a fixed failure rate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cloud/cloud_backend.hpp"
#include "cloud/memory_backend.hpp"
#include "cloud/wan_link.hpp"
#include "telemetry/telemetry.hpp"

namespace aadedupe::cloud {

/// Per-operation fault probabilities and their simulated-time costs.
/// All probabilities are independent per attempt; an attempt draws one
/// uniform variate and the bands [0,transient), [transient,+timeout), ...
/// decide its fate, so the schedule is a pure function of the seed.
struct FaultProfile {
  // Upload-path failure bands.
  double put_transient_p = 0.0;
  double put_timeout_p = 0.0;
  double put_throttle_p = 0.0;
  // Download-path failure bands.
  double get_transient_p = 0.0;
  double get_timeout_p = 0.0;
  double get_throttle_p = 0.0;
  /// Probability that a successful download is corrupted in flight.
  double get_corrupt_p = 0.0;
  /// When true, corrupted downloads are returned as success (the damage
  /// slipped past the transport checksum) — scrub-level defences must
  /// catch them. When false, corruption is detected and reported as
  /// CloudError::kCorrupt, which the retrier treats as retryable.
  bool silent_corruption = false;
  /// Probability of a latency spike on an otherwise successful operation,
  /// and its size in simulated seconds.
  double latency_spike_p = 0.0;
  double latency_spike_s = 2.0;
  /// A transient failure still burns this fraction of the transfer time
  /// the attempt would have cost (the connection died mid-flight).
  double failed_attempt_time_fraction = 0.5;
  /// Simulated seconds charged for a timed-out attempt.
  double timeout_s = 5.0;

  /// Uniform transient failures on both paths — the common test knob.
  static FaultProfile transient(double p) {
    FaultProfile profile;
    profile.put_transient_p = p;
    profile.get_transient_p = p;
    return profile;
  }
};

/// Counters of injected faults (for tests and bench reporting).
struct FaultStats {
  std::uint64_t put_attempts = 0;
  std::uint64_t get_attempts = 0;
  std::uint64_t injected_transient = 0;
  std::uint64_t injected_timeout = 0;
  std::uint64_t injected_throttle = 0;
  std::uint64_t injected_corrupt = 0;
  std::uint64_t latency_spikes = 0;

  std::uint64_t injected_total() const noexcept {
    return injected_transient + injected_timeout + injected_throttle +
           injected_corrupt;
  }
};

class FaultInjectingBackend final : public CloudBackend {
 public:
  /// `telemetry` (nullable) receives live injected-fault counters.
  FaultInjectingBackend(CloudBackend& inner, FaultProfile profile,
                        std::uint64_t seed, WanLink link, ChargeFn charge,
                        telemetry::Telemetry* telemetry = nullptr);

  CloudStatus put(const std::string& key, ConstByteSpan data) override;
  CloudResult<ByteBuffer> get(const std::string& key) override;
  CloudResult<bool> remove(const std::string& key) override;
  std::string_view name() const noexcept override { return "fault-injector"; }

  FaultStats stats() const;

 private:
  /// Monotonic per-(op,key) attempt number; the determinism anchor.
  std::uint32_t next_attempt(const std::string& op_key);

  CloudBackend* inner_;
  FaultProfile profile_;
  std::uint64_t seed_;
  WanLink link_;
  ChargeFn charge_;
  telemetry::Counter faults_counter_;
  telemetry::Counter spikes_counter_;

  mutable std::mutex mutex_;
  std::map<std::string, std::uint32_t> attempts_;
  FaultStats stats_;
};

}  // namespace aadedupe::cloud
