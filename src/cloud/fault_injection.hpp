// FaultInjectingBackend — deterministic WAN misbehaviour as a decorator.
//
// Makes the unreliable-cloud regime testable: per-operation failure
// probabilities (transient drop, timeout, throttle), latency spikes, and
// payload corruption (bit-flip or truncation), all driven by a seed.
//
// Determinism contract: the fault decision for an operation depends only
// on (seed, op, key, per-key attempt number) — never on wall clock or
// thread interleaving. Two runs with the same seed and the same set of
// requests see the same failure schedule per key, even when a parallel
// deduplication pass reorders the requests. This is what lets an
// end-to-end test assert byte-exact restores at a fixed failure rate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cloud/cloud_backend.hpp"
#include "cloud/cloud_result.hpp"
#include "cloud/memory_backend.hpp"
#include "cloud/wan_link.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace aadedupe::cloud {

/// Per-operation fault probabilities and their simulated-time costs.
/// All probabilities are independent per attempt; an attempt draws one
/// uniform variate and the bands [0,transient), [transient,+timeout), ...
/// decide its fate, so the schedule is a pure function of the seed.
struct FaultProfile {
  // Upload-path failure bands.
  double put_transient_p = 0.0;
  double put_timeout_p = 0.0;
  double put_throttle_p = 0.0;
  // Download-path failure bands.
  double get_transient_p = 0.0;
  double get_timeout_p = 0.0;
  double get_throttle_p = 0.0;
  /// Probability that a successful download is corrupted in flight.
  double get_corrupt_p = 0.0;
  /// When true, corrupted downloads are returned as success (the damage
  /// slipped past the transport checksum) — scrub-level defences must
  /// catch them. When false, corruption is detected and reported as
  /// CloudError::kCorrupt, which the retrier treats as retryable.
  bool silent_corruption = false;
  /// Probability of a latency spike on an otherwise successful operation,
  /// and its size in simulated seconds.
  double latency_spike_p = 0.0;
  double latency_spike_s = 2.0;
  /// A transient failure still burns this fraction of the transfer time
  /// the attempt would have cost (the connection died mid-flight).
  double failed_attempt_time_fraction = 0.5;
  /// Simulated seconds charged for a timed-out attempt.
  double timeout_s = 5.0;

  /// Uniform transient failures on both paths — the common test knob.
  static FaultProfile transient(double p) {
    FaultProfile profile;
    profile.put_transient_p = p;
    profile.get_transient_p = p;
    return profile;
  }
};

class FaultInjectingBackend final : public CloudBackend {
 public:
  /// `telemetry` (nullable) receives live injected-fault counters.
  FaultInjectingBackend(CloudBackend& inner, FaultProfile profile,
                        std::uint64_t seed, WanLink link, ChargeFn charge,
                        telemetry::Telemetry* telemetry = nullptr);

  CloudStatus put(const std::string& key, ConstByteSpan data) override;
  CloudResult<ByteBuffer> get(const std::string& key) override;
  CloudResult<bool> remove(const std::string& key) override;
  std::string_view name() const noexcept override { return "fault-injector"; }

  // Injected-fault counters (for tests and bench reporting). Folded from
  // the old FaultStats snapshot struct into individual accessors: the
  // authoritative rollup lives in the run report's cloud.faults section
  // (CloudTarget::fill_run_report).
  std::uint64_t put_attempts() const { return locked(put_attempts_); }
  std::uint64_t get_attempts() const { return locked(get_attempts_); }
  std::uint64_t injected_transient() const { return locked(injected_transient_); }
  std::uint64_t injected_timeout() const { return locked(injected_timeout_); }
  std::uint64_t injected_throttle() const { return locked(injected_throttle_); }
  std::uint64_t injected_corrupt() const { return locked(injected_corrupt_); }
  std::uint64_t latency_spikes() const { return locked(latency_spikes_); }
  /// All injected failures (spikes are delays, not failures — excluded).
  std::uint64_t injected_total() const {
    std::lock_guard lock(mutex_);
    return injected_transient_ + injected_timeout_ + injected_throttle_ +
           injected_corrupt_;
  }

 private:
  /// Monotonic per-(op,key) attempt number; the determinism anchor.
  std::uint32_t next_attempt(const std::string& op_key);

  std::uint64_t locked(const std::uint64_t& counter) const {
    std::lock_guard lock(mutex_);
    return counter;
  }

  CloudBackend* inner_;
  FaultProfile profile_;
  std::uint64_t seed_;
  WanLink link_;
  ChargeFn charge_;
  telemetry::Counter faults_counter_;
  telemetry::Counter spikes_counter_;

  mutable std::mutex mutex_;
  std::map<std::string, std::uint32_t> attempts_;
  std::uint64_t put_attempts_ = 0;
  std::uint64_t get_attempts_ = 0;
  std::uint64_t injected_transient_ = 0;
  std::uint64_t injected_timeout_ = 0;
  std::uint64_t injected_throttle_ = 0;
  std::uint64_t injected_corrupt_ = 0;
  std::uint64_t latency_spikes_ = 0;
};

}  // namespace aadedupe::cloud
