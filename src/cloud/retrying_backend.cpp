#include "cloud/retrying_backend.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/health.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aadedupe::cloud {

namespace {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

double RetryPolicy::backoff_seconds(std::uint32_t retry) const {
  AAD_EXPECTS(retry >= 1);
  const double raw =
      base_backoff_s * std::pow(backoff_multiplier,
                                static_cast<double>(retry - 1));
  return std::min(raw, max_backoff_s);
}

RetryingBackend::RetryingBackend(CloudBackend& inner, RetryPolicy policy,
                                 std::uint64_t seed, ChargeFn charge,
                                 telemetry::Telemetry* telemetry)
    : inner_(&inner),
      policy_(policy),
      seed_(seed),
      charge_(std::move(charge)),
      telemetry_(telemetry) {
  AAD_EXPECTS(policy_.max_attempts >= 1);
  AAD_EXPECTS(policy_.jitter_fraction >= 0.0 &&
              policy_.jitter_fraction <= 1.0);
  if (telemetry_ != nullptr) {
    retries_counter_ = telemetry_->metrics.counter("transport.retries");
    exhausted_counter_ = telemetry_->metrics.counter("transport.exhausted");
  }
}

double RetryingBackend::jittered_backoff(const std::string& key,
                                         std::uint32_t retry) const {
  Xoshiro256 rng(derive_seed(seed_, fnv1a(key)) ^ (0xb0ff'0000ull + retry));
  const double scale =
      1.0 + policy_.jitter_fraction * (2.0 * rng.uniform() - 1.0);
  return policy_.backoff_seconds(retry) * scale;
}

template <typename T, typename Op>
CloudResult<T> RetryingBackend::run_with_retries(const std::string& key,
                                                 Op op) {
  {
    std::lock_guard lock(mutex_);
    ++operations_;
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    CloudResult<T> result = op();
    // Each attempt is progress as far as the stall watchdog is
    // concerned: the enclosing kUpload span legitimately stays open
    // across a whole retry ladder, so refresh its stage activity here
    // instead of letting backoff look like a hang.
    if (telemetry_ != nullptr && telemetry_->health != nullptr) {
      telemetry_->health->heartbeat(telemetry::Stage::kUpload);
    }
    {
      std::lock_guard lock(mutex_);
      ++attempts_;
    }
    if (result.ok()) return result;
    if (!is_retryable(result.error())) {
      std::lock_guard lock(mutex_);
      ++permanent_failures_;
      return result;
    }
    if (attempt >= policy_.max_attempts) {
      exhausted_counter_.increment();
      if (telemetry_ != nullptr) {
        AAD_LOG(&telemetry_->log, kWarn, "retry_wait",
                "retries exhausted after %u attempts (%s): %s", attempt,
                std::string(to_string(result.error())).c_str(), key.c_str());
      }
      std::lock_guard lock(mutex_);
      ++exhausted_;
      return result;
    }
    const double wait = jittered_backoff(key, attempt);
    charge_(wait);
    retries_counter_.increment();
    if (telemetry_ != nullptr) {
      telemetry_->trace.record_sim(telemetry::Stage::kRetryWait, "transport",
                                   wait);
    }
    {
      std::lock_guard lock(mutex_);
      ++retries_;
      backoff_seconds_ += wait;
    }
  }
}

CloudStatus RetryingBackend::put(const std::string& key, ConstByteSpan data) {
  return run_with_retries<CloudOk>(
      key, [&] { return inner_->put(key, data); });
}

CloudResult<ByteBuffer> RetryingBackend::get(const std::string& key) {
  return run_with_retries<ByteBuffer>(key, [&] { return inner_->get(key); });
}

CloudResult<bool> RetryingBackend::remove(const std::string& key) {
  return run_with_retries<bool>(key, [&] { return inner_->remove(key); });
}

}  // namespace aadedupe::cloud
