// WAN link model.
//
// The paper's testbed uplink is an 802.11g connection reaching about
// 500 KB/s up and 1 MB/s down; the backup window for every
// transfer-bound scheme is set by this uplink. The model charges
// bytes/bandwidth plus a fixed per-request overhead — the paper's
// motivation for container aggregation is precisely that "the overhead of
// lower layer protocols can be high for small data transfers".
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace aadedupe::cloud {

struct WanLink {
  double upload_bytes_per_s = 500.0 * 1000.0;    // paper: ~500 KB/s
  double download_bytes_per_s = 1000.0 * 1000.0; // paper: ~1 MB/s
  /// Fixed cost per request (connection/protocol overhead + RTT).
  double per_request_s = 0.012;

  /// Wall-clock seconds to upload `bytes` across `requests` transfers.
  double upload_seconds(std::uint64_t bytes, std::uint64_t requests) const {
    AAD_EXPECTS(upload_bytes_per_s > 0);
    return static_cast<double>(bytes) / upload_bytes_per_s +
           static_cast<double>(requests) * per_request_s;
  }

  /// Wall-clock seconds to download `bytes` across `requests` transfers.
  double download_seconds(std::uint64_t bytes, std::uint64_t requests) const {
    AAD_EXPECTS(download_bytes_per_s > 0);
    return static_cast<double>(bytes) / download_bytes_per_s +
           static_cast<double>(requests) * per_request_s;
  }
};

}  // namespace aadedupe::cloud
