// Cloud cost model with the paper's Amazon S3 pricing (April 2011):
//   $0.14 per GB-month of storage, $0.10 per GB of upload transfer,
//   $0.01 per 1000 upload requests.
// The paper's formula (Section IV.E):
//   CC = DS/DR * (SP + TP) + OC * OP
// i.e. post-dedup stored/transferred bytes times (storage + transfer price)
// plus the request count times the per-request price.
#pragma once

#include <cstdint>

namespace aadedupe::cloud {

struct CostModel {
  double storage_per_gb_month = 0.14;
  double transfer_per_gb_upload = 0.10;
  double per_1000_requests = 0.01;

  static constexpr double kBytesPerGb = 1e9;

  [[nodiscard]] double storage_cost(std::uint64_t stored_bytes,
                                    double months = 1.0) const {
    return static_cast<double>(stored_bytes) / kBytesPerGb *
           storage_per_gb_month * months;
  }

  [[nodiscard]] double transfer_cost(std::uint64_t uploaded_bytes) const {
    return static_cast<double>(uploaded_bytes) / kBytesPerGb *
           transfer_per_gb_upload;
  }

  [[nodiscard]] double request_cost(std::uint64_t upload_requests) const {
    return static_cast<double>(upload_requests) / 1000.0 * per_1000_requests;
  }

  /// One month of service for a given backed-up state: storage rent for
  /// what ended up stored, plus what it cost to ship it there.
  [[nodiscard]] double monthly_cost(std::uint64_t stored_bytes,
                      std::uint64_t uploaded_bytes,
                      std::uint64_t upload_requests) const {
    return storage_cost(stored_bytes) + transfer_cost(uploaded_bytes) +
           request_cost(upload_requests);
  }
};

}  // namespace aadedupe::cloud
