// Simulated cloud object store (the S3-like target of cloud backup).
//
// The paper's backend is Amazon S3; we substitute an in-memory key/object
// store with full request and byte accounting so the cost model (per-GB
// storage, per-GB upload, per-1000-requests) can be evaluated exactly.
// Thread-safe: the uploader stage of the pipeline and restore readers may
// touch it concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace aadedupe::cloud {

struct StoreStats {
  std::uint64_t put_requests = 0;
  std::uint64_t get_requests = 0;
  std::uint64_t delete_requests = 0;
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t bytes_downloaded = 0;
};

class ObjectStore {
 public:
  /// Store (or overwrite) an object. Counts one put request.
  void put(const std::string& key, ByteBuffer data);

  /// Store an object WITHOUT request/byte accounting — for data placed by
  /// the provider itself (e.g. a target-dedup server rewriting arrived
  /// data), which never crossed the client's WAN.
  void put_internal(const std::string& key, ByteBuffer data);

  /// Fetch an object; nullopt when absent. Counts one get request.
  std::optional<ByteBuffer> get(const std::string& key);

  /// Remove an object; returns whether it existed. Counts one delete.
  bool remove(const std::string& key);

  bool exists(const std::string& key) const;

  /// Keys with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Total logical bytes currently stored (sum of object sizes).
  std::uint64_t stored_bytes() const;

  std::uint64_t object_count() const;

  StoreStats stats() const;

  /// Persist every object to a single file (demo-scale durability for the
  /// backup_tool example; accounting counters are not persisted).
  void save_to_file(const std::string& path) const;

  /// Replace contents from a save_to_file() image. Throws FormatError on
  /// malformed input.
  void load_from_file(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ByteBuffer> objects_;
  std::uint64_t stored_bytes_ = 0;
  StoreStats stats_;
};

}  // namespace aadedupe::cloud
