#include "cloud/fault_injection.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace aadedupe::cloud {

namespace {

/// FNV-1a over the op-qualified key — a stable, portable string hash so
/// the fault schedule survives recompilation and reordering.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(CloudBackend& inner,
                                             FaultProfile profile,
                                             std::uint64_t seed, WanLink link,
                                             ChargeFn charge,
                                             telemetry::Telemetry* telemetry)
    : inner_(&inner),
      profile_(profile),
      seed_(seed),
      link_(link),
      charge_(std::move(charge)) {
  if (telemetry != nullptr) {
    faults_counter_ = telemetry->metrics.counter("transport.faults_injected");
    spikes_counter_ = telemetry->metrics.counter("transport.latency_spikes");
  }
}

std::uint32_t FaultInjectingBackend::next_attempt(const std::string& op_key) {
  std::lock_guard lock(mutex_);
  return ++attempts_[op_key];
}

CloudStatus FaultInjectingBackend::put(const std::string& key,
                                       ConstByteSpan data) {
  const std::uint32_t attempt = next_attempt("put:" + key);
  Xoshiro256 rng(derive_seed(seed_, fnv1a("put:" + key)) ^ attempt);
  const double u = rng.uniform();
  {
    std::lock_guard lock(mutex_);
    ++put_attempts_;
  }

  const double full_transfer_s = link_.upload_seconds(data.size(), 1);
  double band = profile_.put_transient_p;
  if (u < band) {
    charge_(full_transfer_s * profile_.failed_attempt_time_fraction);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_transient_;
    return CloudError::kTransient;
  }
  band += profile_.put_timeout_p;
  if (u < band) {
    charge_(profile_.timeout_s);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_timeout_;
    return CloudError::kTimeout;
  }
  band += profile_.put_throttle_p;
  if (u < band) {
    charge_(link_.per_request_s);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_throttle_;
    return CloudError::kThrottled;
  }
  if (rng.chance(profile_.latency_spike_p)) {
    charge_(profile_.latency_spike_s);
    spikes_counter_.increment();
    std::lock_guard lock(mutex_);
    ++latency_spikes_;
  }
  return inner_->put(key, data);
}

CloudResult<ByteBuffer> FaultInjectingBackend::get(const std::string& key) {
  const std::uint32_t attempt = next_attempt("get:" + key);
  Xoshiro256 rng(derive_seed(seed_, fnv1a("get:" + key)) ^ attempt);
  const double u = rng.uniform();
  {
    std::lock_guard lock(mutex_);
    ++get_attempts_;
  }

  double band = profile_.get_transient_p;
  if (u < band) {
    charge_(profile_.timeout_s * profile_.failed_attempt_time_fraction);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_transient_;
    return CloudError::kTransient;
  }
  band += profile_.get_timeout_p;
  if (u < band) {
    charge_(profile_.timeout_s);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_timeout_;
    return CloudError::kTimeout;
  }
  band += profile_.get_throttle_p;
  if (u < band) {
    charge_(link_.per_request_s);
    faults_counter_.increment();
    std::lock_guard lock(mutex_);
    ++injected_throttle_;
    return CloudError::kThrottled;
  }

  auto result = inner_->get(key);
  if (!result.ok()) return result;

  if (rng.chance(profile_.latency_spike_p)) {
    charge_(profile_.latency_spike_s);
    spikes_counter_.increment();
    std::lock_guard lock(mutex_);
    ++latency_spikes_;
  }
  if (rng.chance(profile_.get_corrupt_p) && !result.value().empty()) {
    ByteBuffer damaged = std::move(result).value();
    // Half the corruption events flip a bit, half truncate the tail —
    // both damage classes the paper-era formats must detect.
    if (rng.chance(0.5)) {
      const std::size_t at = rng.below(damaged.size());
      damaged[at] ^= std::byte{0x40};
    } else {
      const std::size_t drop =
          1 + rng.below(std::min<std::size_t>(damaged.size(), 64));
      damaged.resize(damaged.size() - drop);
    }
    faults_counter_.increment();
    {
      std::lock_guard lock(mutex_);
      ++injected_corrupt_;
    }
    if (profile_.silent_corruption) return damaged;
    return CloudError::kCorrupt;
  }
  return result;
}

CloudResult<bool> FaultInjectingBackend::remove(const std::string& key) {
  // Deletes are control-plane-adjacent; the fault model leaves them alone.
  return inner_->remove(key);
}

}  // namespace aadedupe::cloud
