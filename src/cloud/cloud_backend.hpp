// CloudBackend — the data-plane interface between the backup client and
// whatever actually holds the bytes.
//
// Decorator-friendly by design: the production stack is
//
//   MemoryBackend (ObjectStore + WAN accounting)
//     ← FaultInjectingBackend (optional, deterministic failures)
//       ← RetryingBackend (capped exponential backoff + jitter)
//
// and every layer speaks the same typed-result vocabulary, so a scheme
// cannot tell (and must not care) whether a kTransient came from a seeded
// fault schedule or a real socket. Control-plane operations (list,
// exists, stats) stay on ObjectStore: they model the provider's metadata
// API, which our fault model does not target.
//
// Thread safety: implementations must tolerate concurrent calls — the
// upload pipeline ships objects from a dedicated thread while restore
// paths read on the caller's thread.
#pragma once

#include <string>
#include <string_view>

#include "cloud/cloud_result.hpp"
#include "util/bytes.hpp"

namespace aadedupe::cloud {

class CloudBackend {
 public:
  virtual ~CloudBackend() = default;

  /// Store an object. The span stays owned by the caller, so a decorator
  /// can re-send the identical payload on retry without a copy per layer.
  virtual CloudStatus put(const std::string& key, ConstByteSpan data) = 0;

  /// Fetch an object; kNotFound when the key does not exist.
  virtual CloudResult<ByteBuffer> get(const std::string& key) = 0;

  /// Delete an object; the success payload says whether it existed.
  virtual CloudResult<bool> remove(const std::string& key) = 0;

  /// Layer name for diagnostics ("memory", "fault-injector", "retrier").
  virtual std::string_view name() const noexcept = 0;
};

}  // namespace aadedupe::cloud
