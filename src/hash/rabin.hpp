// Rabin fingerprinting over GF(2), implemented from scratch.
//
// A message m = b0 b1 ... b(n-1) is interpreted as a polynomial over GF(2)
// (b0's bits are the most significant coefficients) and its fingerprint is
// m(x) mod P(x) for a fixed irreducible degree-64 polynomial P. Two
// deployments in AA-Dedupe:
//
//  * RabinWindow — the rolling 48-byte window that drives CDC chunk
//    boundary detection (paper Section IV.A: 48-byte window, 1-byte step).
//  * Rabin96 — the "extended 12-byte Rabin hash" used as the whole-file
//    fingerprint for compressed files (paper Section III.D): two
//    independent 64-bit fingerprints under different irreducible
//    polynomials, truncated to 96 bits total. Collision probability at
//    TB-scale is far below the hardware error rate, per the paper.
//
// The byte-at-a-time table technique (Broder, "Some applications of Rabin's
// fingerprinting method") gives one table lookup + shift per byte; the unit
// tests cross-check it against the naive bit-by-bit polynomial division.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "hash/digest.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"

namespace aadedupe::hash {

/// Irreducible degree-64 polynomials over GF(2), low 64 coefficients (the
/// x^64 term is implicit). kPolyA is the standard GF(2^64) reduction
/// pentanomial x^64 + x^4 + x^3 + x + 1; kPolyB is an independent
/// irreducible used for the second half of the 96-bit extended fingerprint.
inline constexpr std::uint64_t kRabinPolyA = 0x000000000000001Bull;
inline constexpr std::uint64_t kRabinPolyB = 0x000000000000201Bull;

/// Byte-wise Rabin fingerprint engine for one fixed modulus polynomial.
/// Immutable after construction; safe to share across threads.
class RabinPoly {
 public:
  explicit RabinPoly(std::uint64_t poly_low = kRabinPolyA) noexcept;

  /// Fingerprint of a whole message: m(x) mod P. Uses the slice-by-8 bulk
  /// path (one table lookup per byte, no loop-carried shift chain).
  std::uint64_t fingerprint(ConstByteSpan data) const noexcept {
    std::uint64_t fp = 0;
    std::size_t i = 0;
    while (i + 8 <= data.size()) {
      fp = push_block8(fp, data.data() + i);
      i += 8;
    }
    for (; i < data.size(); ++i) fp = push_byte(fp, data[i]);
    return fp;
  }

  /// Extend a running fingerprint by one message byte.
  std::uint64_t push_byte(std::uint64_t fp, std::byte b) const noexcept {
    const auto top = static_cast<std::uint8_t>(fp >> 56);
    return ((fp << 8) | static_cast<std::uint64_t>(b)) ^ shift_[top];
  }

  /// Extend a running fingerprint by eight message bytes at once:
  /// fp·x^64 is reduced via eight independent per-byte tables while the
  /// new bytes enter unreduced (degree < 64) — the GF(2) analogue of
  /// slice-by-8 CRC.
  std::uint64_t push_block8(std::uint64_t fp,
                            const std::byte* p) const noexcept {
    const std::uint64_t incoming =
        (static_cast<std::uint64_t>(p[0]) << 56) |
        (static_cast<std::uint64_t>(p[1]) << 48) |
        (static_cast<std::uint64_t>(p[2]) << 40) |
        (static_cast<std::uint64_t>(p[3]) << 32) |
        (static_cast<std::uint64_t>(p[4]) << 24) |
        (static_cast<std::uint64_t>(p[5]) << 16) |
        (static_cast<std::uint64_t>(p[6]) << 8) |
        static_cast<std::uint64_t>(p[7]);
    return incoming ^ slice_[0][fp & 0xff] ^ slice_[1][(fp >> 8) & 0xff] ^
           slice_[2][(fp >> 16) & 0xff] ^ slice_[3][(fp >> 24) & 0xff] ^
           slice_[4][(fp >> 32) & 0xff] ^ slice_[5][(fp >> 40) & 0xff] ^
           slice_[6][(fp >> 48) & 0xff] ^ slice_[7][(fp >> 56) & 0xff];
  }

  /// (value(x) · x^(8·byte_count)) mod P — contribution of a byte string
  /// after byte_count further bytes have been appended. Used to build
  /// rolling-window removal tables.
  std::uint64_t shift_bytes(std::uint64_t value,
                            std::size_t byte_count) const noexcept;

  std::uint64_t polynomial() const noexcept { return poly_; }

  /// Reference implementation: bit-by-bit polynomial division (slow; used
  /// by tests to validate the table path).
  static std::uint64_t naive_fingerprint(ConstByteSpan data,
                                         std::uint64_t poly_low) noexcept;

 private:
  std::uint64_t poly_;
  std::array<std::uint64_t, 256> shift_;  // shift_[t] = t(x)·x^64 mod P
  // slice_[k][t] = t(x)·x^(64+8k) mod P — bulk-path reduction tables.
  std::array<std::array<std::uint64_t, 256>, 8> slice_;
};

/// Largest supported rolling-window width. Windows store their ring inline
/// (no heap), so instances are cheap to create on the stack per call.
inline constexpr std::size_t kMaxRabinWindowSize = 256;

/// Immutable per-(polynomial, width) state of a rolling window: the
/// departing-byte removal table. Built once and shared by any number of
/// RabinWindow instances (thread-safe after construction), so hot paths
/// never pay the ~2 KB table construction or copy per use.
class RabinWindowTable {
 public:
  RabinWindowTable(const RabinPoly& poly, std::size_t window_size);

  const RabinPoly& poly() const noexcept { return *poly_; }
  std::size_t window_size() const noexcept { return window_size_; }

  /// remove(b) = b(x)·x^(8W)·x^64 mod P — the contribution a byte still
  /// holds after W further bytes were appended.
  std::uint64_t remove(std::byte b) const noexcept {
    return remove_[static_cast<std::uint8_t>(b)];
  }

 private:
  const RabinPoly* poly_;
  std::size_t window_size_;
  std::array<std::uint64_t, 256> remove_;
};

/// Fixed-size rolling window over a byte stream, yielding the Rabin
/// fingerprint of the last `window_size` bytes after each push. This is the
/// inner loop of CDC: one push per input byte. Only mutable state lives
/// here (inline ring + cursor + fingerprint); the removal table is shared.
class RabinWindow {
 public:
  /// Roll against a shared table. Allocation-free; suited to constructing
  /// a fresh window per split() call on the stack.
  explicit RabinWindow(const RabinWindowTable& table);

  /// Convenience: build and own a private table (one 2 KB allocation).
  RabinWindow(const RabinPoly& poly, std::size_t window_size);

  /// Slide the window forward by one byte; returns the fingerprint of the
  /// latest `window_size` bytes (bytes pushed before the window filled are
  /// treated as leading zeros, matching the classic LBFS formulation).
  std::uint64_t push(std::byte b) noexcept {
    const std::byte oldest = ring_[pos_];
    ring_[pos_] = b;
    if (++pos_ == size_) pos_ = 0;  // wrap-on-compare: no integer divide
    fp_ = poly_->push_byte(fp_, b) ^ table_->remove(oldest);
    return fp_;
  }

  /// Reset to the all-zero window.
  void reset() noexcept;

  /// Prime the window as if reset() were followed by pushing every byte of
  /// `tail` — but via the slice-by-8 bulk fingerprint path instead of
  /// per-byte rolling. When `tail` is longer than the window only its last
  /// `window_size` bytes matter (exactly the rolling semantics).
  void warm(ConstByteSpan tail) noexcept {
    if (tail.size() > size_) tail = tail.subspan(tail.size() - size_);
    fp_ = poly_->fingerprint(tail);
    std::fill_n(ring_.begin(), size_, std::byte{0});
    std::copy(tail.begin(), tail.end(), ring_.begin());
    pos_ = tail.size() == size_ ? 0 : tail.size();
  }

  std::size_t window_size() const noexcept { return size_; }
  std::uint64_t value() const noexcept { return fp_; }

 private:
  std::shared_ptr<const RabinWindowTable> owned_;  // convenience ctor only
  const RabinWindowTable* table_;
  const RabinPoly* poly_;
  std::size_t size_;
  std::uint64_t fp_ = 0;
  std::size_t pos_ = 0;
  std::array<std::byte, kMaxRabinWindowSize> ring_{};
};

/// 12-byte (96-bit) extended Rabin fingerprint: 8 bytes under kRabinPolyA
/// concatenated with the low 4 bytes under kRabinPolyB.
class Rabin96 {
 public:
  static constexpr std::size_t kDigestSize = 12;

  Rabin96() noexcept = default;

  void reset() noexcept {
    fp_a_ = 0;
    fp_b_ = 0;
  }

  void update(ConstByteSpan data) noexcept {
    const RabinPoly& pa = poly_a();
    const RabinPoly& pb = poly_b();
    std::size_t i = 0;
    // Bulk path: both polynomials advance through independent slice-by-8
    // pipelines (no shared dependency chain).
    while (i + 8 <= data.size()) {
      fp_a_ = pa.push_block8(fp_a_, data.data() + i);
      fp_b_ = pb.push_block8(fp_b_, data.data() + i);
      i += 8;
    }
    for (; i < data.size(); ++i) {
      fp_a_ = pa.push_byte(fp_a_, data[i]);
      fp_b_ = pb.push_byte(fp_b_, data[i]);
    }
  }

  Digest finish() const noexcept {
    std::byte out[kDigestSize];
    store_le64(out, fp_a_);
    store_le32(out + 8, static_cast<std::uint32_t>(fp_b_ & 0xffffffffu));
    return Digest(ConstByteSpan{out, kDigestSize});
  }

  /// One-shot convenience.
  static Digest hash(ConstByteSpan data) noexcept {
    Rabin96 h;
    h.update(data);
    return h.finish();
  }

  /// Shared engine instances (immutable, thread-safe).
  static const RabinPoly& poly_a() noexcept;
  static const RabinPoly& poly_b() noexcept;

 private:
  std::uint64_t fp_a_ = 0;
  std::uint64_t fp_b_ = 0;
};

}  // namespace aadedupe::hash
