// 4-lane instantiation of the multi-buffer hash kernel.
//
// Compiled with the project's default flags: the generic vector code in
// mb_lanes.hpp lowers to SSE2 on x86-64 (part of the baseline ABI), so this
// kernel is always safe to call — no CPUID gate needed beyond the build
// itself.
#include "hash/mb_kernels.hpp"
#include "hash/mb_lanes.hpp"

namespace aadedupe::hash::detail {

void sha1_mb_x4(std::span<const ConstByteSpan> chunks, Digest* out) {
  mb_hash<4, Sha1Spec>(chunks, out);
}

void md5_mb_x4(std::span<const ConstByteSpan> chunks, Digest* out) {
  mb_hash<4, Md5Spec>(chunks, out);
}

}  // namespace aadedupe::hash::detail
