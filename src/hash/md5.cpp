#include "hash/md5.hpp"

#include <algorithm>
#include <cstring>

namespace aadedupe::hash {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

// Per-round shift amounts (RFC 1321 section 3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|) (RFC 1321).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

void Md5::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  total_bytes_ = 0;
}

void Md5::process_block(const std::byte* block) noexcept {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(ConstByteSpan data) noexcept {
  // An empty span's data() may be null; bail before the memcpy below.
  if (data.empty()) return;
  std::size_t fill = total_bytes_ % 64;
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (fill != 0) {
    const std::size_t take = std::min<std::size_t>(64 - fill, data.size());
    std::memcpy(buffer_.data() + fill, data.data(), take);
    fill += take;
    offset += take;
    if (fill < 64) return;
    process_block(buffer_.data());
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
  }
}

Digest Md5::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  static constexpr std::byte kPad[64] = {std::byte{0x80}};
  const std::size_t fill = total_bytes_ % 64;
  const std::size_t pad_len = (fill < 56) ? (56 - fill) : (120 - fill);
  update({kPad, pad_len});
  std::byte len_bytes[8];
  store_le64(len_bytes, bit_length);
  // Manually absorb the length so total_bytes_ bookkeeping stays simple:
  // after the padding above the buffer holds exactly 56 bytes.
  std::memcpy(buffer_.data() + 56, len_bytes, 8);
  process_block(buffer_.data());

  std::byte out[kDigestSize];
  for (std::size_t i = 0; i < 4; ++i) store_le32(out + 4 * i, state_[i]);
  return Digest(ConstByteSpan{out, kDigestSize});
}

}  // namespace aadedupe::hash
