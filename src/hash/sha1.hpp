// SHA-1 (RFC 3174), implemented from scratch.
//
// AA-Dedupe uses SHA-1 for CDC chunk fingerprints: in the CDC category the
// Rabin boundary scan dominates compute, so the stronger (and costlier)
// 20-byte hash is nearly free in relative terms (paper Section III.D).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::hash {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1() noexcept { reset(); }

  /// Reinitialize to the RFC 3174 starting state.
  void reset() noexcept;

  /// Absorb more message bytes (streaming).
  void update(ConstByteSpan data) noexcept;

  /// Finalize and return the 20-byte digest; reset() before reuse.
  Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(ConstByteSpan data) noexcept {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::byte* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::byte, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
};

}  // namespace aadedupe::hash
