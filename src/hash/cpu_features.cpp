#include "hash/cpu_features.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "telemetry/env.hpp"

namespace aadedupe::hash {

namespace {

#if defined(__x86_64__) || defined(__i386__)
// XGETBV with ECX=0: returns the XCR0 register describing which register
// states the OS saves on context switch. AVX2 is only safe when the OS
// preserves YMM (bits 1|2 == 0b110).
std::uint64_t xcr0() noexcept {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

}  // namespace

CpuFeatures detect_cpu_features() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.sse2 = (edx & (1u << 26)) != 0;
  f.ssse3 = (ecx & (1u << 9)) != 0;
  f.sse41 = (ecx & (1u << 19)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool ymm_saved = osxsave && avx && (xcr0() & 0x6u) == 0x6u;

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = ymm_saved && (ebx & (1u << 5)) != 0;
    f.sha_ni = (ebx & (1u << 29)) != 0;
  }
#endif
  return f;
}

bool parse_simd_disable_flag(const char* value) noexcept {
  // Kept as a thin alias so the veto's truth table has one home (the
  // shared env-flag parser) while the unit tests keep their entry point.
  return telemetry::parse_env_flag(value);
}

bool simd_disabled_by_env() noexcept {
  return telemetry::env_flag("AAD_DISABLE_SIMD");
}

}  // namespace aadedupe::hash
