// Multi-buffer (interleaved) SHA-1 / MD5 lane kernel.
//
// Internal header for the batched fingerprint engine: included only by the
// per-ISA translation units (mb_x4.cpp baseline, mb_x8.cpp compiled with
// -mavx2) and never installed behind a public API. The same templates
// instantiate at W=4 (one 128-bit vector register per state word, SSE2 on
// x86-64) and W=8 (one 256-bit register, AVX2).
//
// The trick is *transposition*: instead of vectorizing inside one message
// schedule (SHA-1/MD5 rounds form a serial dependency chain, so that gains
// nothing), we hash W independent chunk buffers at once with lane l of every
// vector holding buffer l's state. Each compression round then executes W
// hashes' worth of work per instruction, and the serial chain cost is paid
// once for all lanes.
//
// Unequal chunk lengths are the hard part. Each lane tracks its own block
// cursor; a lane that reaches its final (padding-bearing) blocks switches to
// a 128-byte scratch tail prepared at assignment time. When a lane finishes
// it emits its digest and immediately refills from the batch queue, so long
// batches keep all lanes busy; lanes with nothing left to do are masked out
// of the state update (state = (new & mask) | (old & ~mask)) and fed an
// arbitrary resident block so the vector loads stay in bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::hash::detail {

template <std::size_t W>
struct VecOf;

template <>
struct VecOf<4> {
  typedef std::uint32_t type __attribute__((vector_size(16)));
};

template <>
struct VecOf<8> {
  typedef std::uint32_t type __attribute__((vector_size(32)));
};

template <class V>
inline V vrotl(V x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

[[nodiscard]] inline std::uint32_t load_be32(const std::byte* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>((v >> 24) & 0xffu);
  p[1] = static_cast<std::byte>((v >> 16) & 0xffu);
  p[2] = static_cast<std::byte>((v >> 8) & 0xffu);
  p[3] = static_cast<std::byte>(v & 0xffu);
}

// One hash-in-flight. `tail` holds the final one or two 64-byte blocks with
// the 0x80 terminator and the (endianness-dependent) 64-bit bit length
// already in place, so the block loop never branches on "is this the last
// block" beyond comparing cursors.
struct Lane {
  const std::byte* data = nullptr;
  std::uint64_t full_blocks = 0;   // complete 64-byte blocks inside data
  std::uint64_t total_blocks = 0;  // full blocks + 1..2 padded tail blocks
  std::uint64_t next_block = 0;
  std::size_t out_index = 0;
  bool active = false;
  std::byte tail[128] = {};
};

inline void lane_assign(Lane& lane, ConstByteSpan chunk, std::size_t out_index,
                        bool big_endian_length) noexcept {
  const std::uint64_t len = chunk.size();
  lane.data = chunk.data();
  lane.full_blocks = len / 64;
  // Message + 0x80 + 8-byte length, rounded up to a 64-byte block:
  lane.total_blocks = ((len + 8) / 64) + 1;
  lane.next_block = 0;
  lane.out_index = out_index;
  lane.active = true;

  const std::size_t rem = static_cast<std::size_t>(len % 64);
  std::memset(lane.tail, 0, sizeof lane.tail);
  if (rem != 0) std::memcpy(lane.tail, chunk.data() + (len - rem), rem);
  lane.tail[rem] = std::byte{0x80};
  const std::uint64_t tail_blocks = lane.total_blocks - lane.full_blocks;
  std::byte* len_at = lane.tail + tail_blocks * 64 - 8;
  const std::uint64_t bits = len * 8;
  if (big_endian_length) {
    store_be32(len_at, static_cast<std::uint32_t>(bits >> 32));
    store_be32(len_at + 4, static_cast<std::uint32_t>(bits & 0xffffffffu));
  } else {
    store_le64(len_at, bits);
  }
}

[[nodiscard]] inline const std::byte* lane_block(const Lane& lane) noexcept {
  return lane.next_block < lane.full_blocks
             ? lane.data + lane.next_block * 64
             : lane.tail + (lane.next_block - lane.full_blocks) * 64;
}

// Transpose one 64-byte block per lane into 16 message-word vectors:
// w[i][l] = word i of lane l's block.
template <std::size_t W, bool BigEndian>
inline void gather_block(const std::byte* const blocks[W],
                         typename VecOf<W>::type w[16]) noexcept {
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      const std::byte* p = blocks[l] + 4 * i;
      w[i][l] = BigEndian ? load_be32(p) : load_le32(p);
    }
  }
}

// ---- SHA-1 (RFC 3174), W lanes wide. ----

struct Sha1Spec {
  static constexpr std::size_t kStateWords = 5;
  static constexpr bool kBigEndian = true;
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::uint32_t kInit[5] = {0x67452301u, 0xefcdab89u,
                                             0x98badcfeu, 0x10325476u,
                                             0xc3d2e1f0u};

  static void store_word(std::byte* p, std::uint32_t v) noexcept {
    store_be32(p, v);
  }

  template <std::size_t W>
  static void rounds(typename VecOf<W>::type state[5],
                     const typename VecOf<W>::type w16[16]) noexcept {
    using V = typename VecOf<W>::type;
    V w[16];
    for (int i = 0; i < 16; ++i) w[i] = w16[i];

    V a = state[0], b = state[1], c = state[2], d = state[3], e = state[4];
    for (int t = 0; t < 80; ++t) {
      V wt;
      if (t < 16) {
        wt = w[t];
      } else {
        wt = vrotl(w[(t - 3) & 15] ^ w[(t - 8) & 15] ^ w[(t - 14) & 15] ^
                       w[(t - 16) & 15],
                   1);
        w[t & 15] = wt;
      }
      V f;
      std::uint32_t k;
      if (t < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      const V tmp = vrotl(a, 5) + f + e + k + wt;
      e = d;
      d = c;
      c = vrotl(b, 30);
      b = a;
      a = tmp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
  }
};

// ---- MD5 (RFC 1321), W lanes wide. Tables match src/hash/md5.cpp. ----

struct Md5Spec {
  static constexpr std::size_t kStateWords = 4;
  static constexpr bool kBigEndian = false;
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u,
                                             0x98badcfeu, 0x10325476u};

  static void store_word(std::byte* p, std::uint32_t v) noexcept {
    store_le32(p, v);
  }

  template <std::size_t W>
  static void rounds(typename VecOf<W>::type state[4],
                     const typename VecOf<W>::type m[16]) noexcept {
    using V = typename VecOf<W>::type;
    static constexpr int kShift[64] = {
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
        5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};
    static constexpr std::uint32_t kSine[64] = {
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
        0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
        0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
        0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
        0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
        0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
        0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
        0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
        0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
        0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
        0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
        0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

    V a = state[0], b = state[1], c = state[2], d = state[3];
    for (int i = 0; i < 64; ++i) {
      V f;
      int g;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) & 15;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) & 15;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) & 15;
      }
      const V tmp = d;
      d = c;
      c = b;
      b = b + vrotl(a + f + kSine[i] + m[g], kShift[i]);
      a = tmp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
  }
};

// ---- Batch driver: W lanes over N chunks with refill. ----

template <std::size_t W, class Spec>
void mb_hash(std::span<const ConstByteSpan> chunks, Digest* out) {
  using V = typename VecOf<W>::type;
  constexpr std::size_t S = Spec::kStateWords;
  // Inactive lanes still need a readable 64-byte block for the transposed
  // load; they are masked out of the state update afterwards.
  static constexpr std::byte kZeroBlock[64] = {};

  Lane lanes[W];
  V state[S] = {};
  std::size_t next = 0;
  std::size_t active = 0;

  const auto feed = [&](std::size_t l) {
    if (next >= chunks.size()) {
      lanes[l].active = false;
      return false;
    }
    lane_assign(lanes[l], chunks[next], next, Spec::kBigEndian);
    for (std::size_t k = 0; k < S; ++k) state[k][l] = Spec::kInit[k];
    ++next;
    return true;
  };
  for (std::size_t l = 0; l < W; ++l) {
    if (feed(l)) ++active;
  }

  while (active > 0) {
    const std::byte* blocks[W];
    V mask{};
    for (std::size_t l = 0; l < W; ++l) {
      blocks[l] = lanes[l].active ? lane_block(lanes[l]) : kZeroBlock;
      mask[l] = lanes[l].active ? ~std::uint32_t{0} : std::uint32_t{0};
    }

    V w16[16];
    gather_block<W, Spec::kBigEndian>(blocks, w16);
    V saved[S];
    for (std::size_t k = 0; k < S; ++k) saved[k] = state[k];
    Spec::template rounds<W>(state, w16);
    for (std::size_t k = 0; k < S; ++k) {
      state[k] = (state[k] & mask) | (saved[k] & ~mask);
    }

    for (std::size_t l = 0; l < W; ++l) {
      if (!lanes[l].active) continue;
      if (++lanes[l].next_block < lanes[l].total_blocks) continue;
      std::byte digest[Spec::kDigestSize];
      for (std::size_t k = 0; k < S; ++k) {
        Spec::store_word(digest + 4 * k, state[k][l]);
      }
      out[lanes[l].out_index] = Digest(ConstByteSpan{digest, Spec::kDigestSize});
      if (!feed(l)) --active;
    }
  }
}

}  // namespace aadedupe::hash::detail
