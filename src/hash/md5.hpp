// MD5 message digest (RFC 1321), implemented from scratch.
//
// In AA-Dedupe MD5 fingerprints the 8 KB static chunks (SC category):
// 16 bytes is collision-safe at TB scale while costing measurably less CPU
// than SHA-1 (Observation 4 / Fig. 3 of the paper). Security is explicitly
// *not* a goal here — collision resistance against an adversary is not part
// of the paper's threat model.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::hash {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;

  Md5() noexcept { reset(); }

  /// Reinitialize to the RFC 1321 starting state.
  void reset() noexcept;

  /// Absorb more message bytes (streaming; call any number of times).
  void update(ConstByteSpan data) noexcept;

  /// Finalize and return the 16-byte digest. The object must be reset()
  /// before further use.
  Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(ConstByteSpan data) noexcept {
    Md5 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::byte* block) noexcept;

  std::array<std::uint32_t, 4> state_{};
  std::array<std::byte, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
};

}  // namespace aadedupe::hash
