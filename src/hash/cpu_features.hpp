// Runtime CPU capability probe for the fingerprint engine.
//
// The batched hasher (batch_hasher.hpp) picks its fastest compiled
// implementation once at startup. That decision needs two inputs: what the
// CPU reports via CPUID (and the OS via XGETBV for YMM state), and whether
// the operator vetoed SIMD entirely with the AAD_DISABLE_SIMD escape hatch.
// Both live here so they can be unit-tested away from the dispatch ladder.
#pragma once

namespace aadedupe::hash {

/// CPUID-derived feature bits relevant to the hash dispatch ladder. All
/// fields are false on non-x86 builds.
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool avx2 = false;    // requires OS YMM state support (XGETBV)
  bool sha_ni = false;  // SHA extensions (leaf 7, EBX bit 29)
};

/// Probe the executing CPU. Cheap enough to call freely, but callers
/// normally go through the cached result inside default_batch_hasher().
[[nodiscard]] CpuFeatures detect_cpu_features() noexcept;

/// True when the AAD_DISABLE_SIMD environment variable requests the scalar
/// fallback ("1", "true", "yes", "on"; case-insensitive).
[[nodiscard]] bool simd_disabled_by_env() noexcept;

/// Pure parser behind simd_disabled_by_env(), exposed for unit tests.
/// nullptr (unset) and explicit "0"/"false"/"no"/"off" both mean enabled.
[[nodiscard]] bool parse_simd_disable_flag(const char* value) noexcept;

}  // namespace aadedupe::hash
