#include "hash/sha1.hpp"

#include <algorithm>
#include <cstring>

namespace aadedupe::hash {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

inline std::uint32_t load_be32(const std::byte* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>((v >> 24) & 0xffu);
  p[1] = static_cast<std::byte>((v >> 16) & 0xffu);
  p[2] = static_cast<std::byte>((v >> 8) & 0xffu);
  p[3] = static_cast<std::byte>(v & 0xffu);
}
}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  total_bytes_ = 0;
}

void Sha1::process_block(const std::byte* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ConstByteSpan data) noexcept {
  // An empty span's data() may be null; bail before the memcpy below.
  if (data.empty()) return;
  std::size_t fill = total_bytes_ % 64;
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (fill != 0) {
    const std::size_t take = std::min<std::size_t>(64 - fill, data.size());
    std::memcpy(buffer_.data() + fill, data.data(), take);
    fill += take;
    offset += take;
    if (fill < 64) return;
    process_block(buffer_.data());
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
  }
}

Digest Sha1::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  static constexpr std::byte kPad[64] = {std::byte{0x80}};
  const std::size_t fill = total_bytes_ % 64;
  const std::size_t pad_len = (fill < 56) ? (56 - fill) : (120 - fill);
  update({kPad, pad_len});
  // Big-endian 64-bit message length in the final 8 bytes.
  store_be32(buffer_.data() + 56,
             static_cast<std::uint32_t>(bit_length >> 32));
  store_be32(buffer_.data() + 60,
             static_cast<std::uint32_t>(bit_length & 0xffffffffu));
  process_block(buffer_.data());

  std::byte out[kDigestSize];
  for (std::size_t i = 0; i < 5; ++i) store_be32(out + 4 * i, state_[i]);
  return Digest(ConstByteSpan{out, kDigestSize});
}

}  // namespace aadedupe::hash
