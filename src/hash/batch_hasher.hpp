// BatchHasher — batched, runtime-dispatched chunk fingerprinting.
//
// The session pipeline used to fingerprint chunks one at a time through
// compute_digest(), which left scalar SHA-1 (~160 MB/s) as the wall of the
// whole backup path. BatchHasher accepts N independent chunk buffers at once
// and routes them to the fastest implementation the executing CPU supports:
//
//   SHA-1:  SHA-NI single-lane  >  AVX2 x8  >  SSE2 x4  >  scalar
//   MD5:                           AVX2 x8  >  SSE2 x4  >  scalar
//   Rabin96:                       scalar (already >1.5 GB/s, not a wall)
//
// The ladder is resolved ONCE per hasher from CPUID (see cpu_features.hpp);
// the AAD_DISABLE_SIMD environment variable (or configuring the build with
// -DAAD_DISABLE_SIMD=ON) forces the always-correct scalar rung. Every rung
// produces bit-identical digests — guaranteed by the RFC known-answer and
// batch-vs-scalar differential suites in tests/test_batch_hasher.cpp — so
// dedup metrics cannot depend on which machine ran the backup.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hash/digest.hpp"
#include "hash/hash_kind.hpp"
#include "util/bytes.hpp"

namespace aadedupe::hash {

/// SHA-1 implementation rungs, weakest to strongest.
enum class Sha1Impl : std::uint8_t { kScalar, kSse2x4, kAvx2x8, kShaNi };

/// MD5 implementation rungs (MD5 has no dedicated CPU instructions).
enum class Md5Impl : std::uint8_t { kScalar, kSse2x4, kAvx2x8 };

[[nodiscard]] std::string_view to_string(Sha1Impl impl) noexcept;
[[nodiscard]] std::string_view to_string(Md5Impl impl) noexcept;

class BatchHasher {
 public:
  /// Auto-detect: pick the strongest rung per hash that both the build and
  /// the executing CPU support, honouring AAD_DISABLE_SIMD.
  BatchHasher();

  /// Pin specific rungs (tests and benchmarks). Throws PreconditionError if
  /// a requested rung is unsupported on this build/CPU.
  BatchHasher(Sha1Impl sha1, Md5Impl md5);

  /// Fingerprint every buffer in `chunks`; out[i] is the digest of
  /// chunks[i]. `out` is resized to chunks.size().
  void hash_batch(HashKind kind, std::span<const ConstByteSpan> chunks,
                  std::vector<Digest>& out) const;

  /// Single-buffer convenience routed through the same rung selection.
  [[nodiscard]] Digest hash_one(HashKind kind, ConstByteSpan data) const;

  [[nodiscard]] Sha1Impl sha1_impl() const noexcept { return sha1_; }
  [[nodiscard]] Md5Impl md5_impl() const noexcept { return md5_; }

  /// Short engine tag for the hash that `kind` maps to ("shani", "avx2x8",
  /// "sse2x4", "scalar") — used to label telemetry fingerprint spans.
  [[nodiscard]] std::string_view impl_tag(HashKind kind) const noexcept;

  /// Every rung usable on this build + CPU, weakest first (always includes
  /// kScalar). The KAT/differential tests iterate these.
  [[nodiscard]] static std::vector<Sha1Impl> supported_sha1_impls();
  [[nodiscard]] static std::vector<Md5Impl> supported_md5_impls();

 private:
  Sha1Impl sha1_;
  Md5Impl md5_;
};

/// Process-wide auto-detected instance (detection runs once, thread-safe).
/// hash_batch() is const and stateless, so sharing across workers is free.
[[nodiscard]] const BatchHasher& default_batch_hasher();

}  // namespace aadedupe::hash
