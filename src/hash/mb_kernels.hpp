// Entry points of the ISA-specific hash kernels.
//
// Declarations only — each function is defined in a translation unit that
// CMake compiles with the matching target flags (mb_x4.cpp with the default
// flags, mb_x8.cpp with -mavx2, sha1_shani.cpp with -msha). batch_hasher.cpp
// references a kernel only when the corresponding AAD_HAVE_* definition says
// it was actually built, and only calls it after the CPUID probe confirms
// the executing machine supports the instructions.
#pragma once

#include <span>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::hash::detail {

// 4-lane interleaved kernels (one 128-bit vector per state word). Written
// with GCC generic vector extensions, so the baseline target flags lower
// them to SSE2 on x86-64 (and to NEON or scalar code elsewhere).
void sha1_mb_x4(std::span<const ConstByteSpan> chunks, Digest* out);
void md5_mb_x4(std::span<const ConstByteSpan> chunks, Digest* out);

// 8-lane interleaved kernels (256-bit vectors, compiled with -mavx2).
void sha1_mb_x8(std::span<const ConstByteSpan> chunks, Digest* out);
void md5_mb_x8(std::span<const ConstByteSpan> chunks, Digest* out);

// Single-buffer SHA-1 over the SHA-NI extension (compiled with -msha).
Digest sha1_shani_one(ConstByteSpan data);

}  // namespace aadedupe::hash::detail
