#include "hash/batch_hasher.hpp"

#include "hash/cpu_features.hpp"
#include "hash/mb_kernels.hpp"
#include "util/check.hpp"

namespace aadedupe::hash {

namespace {

struct BuildSupport {
  bool mb4 = false;
  bool mb8 = false;
  bool shani = false;
};

// What this *binary* contains. CMake defines AAD_HAVE_* exactly for the
// kernel TUs it compiled (none under -DAAD_DISABLE_SIMD=ON), so referencing
// a kernel symbol is always guarded by the same macro that built it.
constexpr BuildSupport build_support() noexcept {
  BuildSupport s;
#if defined(AAD_HAVE_MB4)
  s.mb4 = true;
#endif
#if defined(AAD_HAVE_MB8)
  s.mb8 = true;
#endif
#if defined(AAD_HAVE_SHANI)
  s.shani = true;
#endif
  return s;
}

struct RuntimeSupport {
  bool mb4 = false;
  bool mb8 = false;
  bool shani = false;
};

RuntimeSupport runtime_support() {
  RuntimeSupport r;
  if (simd_disabled_by_env()) return r;
  constexpr BuildSupport built = build_support();
  const CpuFeatures cpu = detect_cpu_features();
  // The x4 kernel is generic vector code lowered with the baseline target
  // flags — if the binary runs at all, the kernel runs.
  r.mb4 = built.mb4;
  r.mb8 = built.mb8 && cpu.avx2;
  r.shani = built.shani && cpu.sha_ni && cpu.ssse3 && cpu.sse41;
  return r;
}

const RuntimeSupport& cached_runtime_support() {
  static const RuntimeSupport support = runtime_support();
  return support;
}

bool sha1_supported(Sha1Impl impl) {
  const RuntimeSupport& r = cached_runtime_support();
  switch (impl) {
    case Sha1Impl::kScalar:
      return true;
    case Sha1Impl::kSse2x4:
      return r.mb4;
    case Sha1Impl::kAvx2x8:
      return r.mb8;
    case Sha1Impl::kShaNi:
      return r.shani;
  }
  return false;
}

bool md5_supported(Md5Impl impl) {
  const RuntimeSupport& r = cached_runtime_support();
  switch (impl) {
    case Md5Impl::kScalar:
      return true;
    case Md5Impl::kSse2x4:
      return r.mb4;
    case Md5Impl::kAvx2x8:
      return r.mb8;
  }
  return false;
}

Sha1Impl best_sha1() {
  const RuntimeSupport& r = cached_runtime_support();
  if (r.shani) return Sha1Impl::kShaNi;
  if (r.mb8) return Sha1Impl::kAvx2x8;
  if (r.mb4) return Sha1Impl::kSse2x4;
  return Sha1Impl::kScalar;
}

Md5Impl best_md5() {
  const RuntimeSupport& r = cached_runtime_support();
  if (r.mb8) return Md5Impl::kAvx2x8;
  if (r.mb4) return Md5Impl::kSse2x4;
  return Md5Impl::kScalar;
}

}  // namespace

std::string_view to_string(Sha1Impl impl) noexcept {
  switch (impl) {
    case Sha1Impl::kScalar:
      return "scalar";
    case Sha1Impl::kSse2x4:
      return "sse2x4";
    case Sha1Impl::kAvx2x8:
      return "avx2x8";
    case Sha1Impl::kShaNi:
      return "shani";
  }
  return "?";
}

std::string_view to_string(Md5Impl impl) noexcept {
  switch (impl) {
    case Md5Impl::kScalar:
      return "scalar";
    case Md5Impl::kSse2x4:
      return "sse2x4";
    case Md5Impl::kAvx2x8:
      return "avx2x8";
  }
  return "?";
}

BatchHasher::BatchHasher() : sha1_(best_sha1()), md5_(best_md5()) {}

BatchHasher::BatchHasher(Sha1Impl sha1, Md5Impl md5)
    : sha1_(sha1), md5_(md5) {
  AAD_EXPECTS(sha1_supported(sha1));
  AAD_EXPECTS(md5_supported(md5));
}

void BatchHasher::hash_batch(HashKind kind,
                             std::span<const ConstByteSpan> chunks,
                             std::vector<Digest>& out) const {
  out.resize(chunks.size());
  if (chunks.empty()) return;

  switch (kind) {
    case HashKind::kRabin96:
      // Rabin-96 is a rolling fingerprint already north of 1.5 GB/s; the
      // scalar loop is not the wall and has no vector form here.
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        out[i] = Rabin96::hash(chunks[i]);
      }
      return;

    case HashKind::kSha1:
      switch (sha1_) {
#if defined(AAD_HAVE_SHANI)
        case Sha1Impl::kShaNi:
          for (std::size_t i = 0; i < chunks.size(); ++i) {
            out[i] = detail::sha1_shani_one(chunks[i]);
          }
          return;
#endif
#if defined(AAD_HAVE_MB8)
        case Sha1Impl::kAvx2x8:
          detail::sha1_mb_x8(chunks, out.data());
          return;
#endif
#if defined(AAD_HAVE_MB4)
        case Sha1Impl::kSse2x4:
          detail::sha1_mb_x4(chunks, out.data());
          return;
#endif
        default:
          break;
      }
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        out[i] = Sha1::hash(chunks[i]);
      }
      return;

    case HashKind::kMd5:
      switch (md5_) {
#if defined(AAD_HAVE_MB8)
        case Md5Impl::kAvx2x8:
          detail::md5_mb_x8(chunks, out.data());
          return;
#endif
#if defined(AAD_HAVE_MB4)
        case Md5Impl::kSse2x4:
          detail::md5_mb_x4(chunks, out.data());
          return;
#endif
        default:
          break;
      }
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        out[i] = Md5::hash(chunks[i]);
      }
      return;
  }
}

Digest BatchHasher::hash_one(HashKind kind, ConstByteSpan data) const {
  const ConstByteSpan one[1] = {data};
  std::vector<Digest> out;
  hash_batch(kind, one, out);
  return out[0];
}

std::string_view BatchHasher::impl_tag(HashKind kind) const noexcept {
  switch (kind) {
    case HashKind::kRabin96:
      return "scalar";
    case HashKind::kMd5:
      return to_string(md5_);
    case HashKind::kSha1:
      return to_string(sha1_);
  }
  return "?";
}

std::vector<Sha1Impl> BatchHasher::supported_sha1_impls() {
  std::vector<Sha1Impl> impls;
  for (Sha1Impl impl : {Sha1Impl::kScalar, Sha1Impl::kSse2x4,
                        Sha1Impl::kAvx2x8, Sha1Impl::kShaNi}) {
    if (sha1_supported(impl)) impls.push_back(impl);
  }
  return impls;
}

std::vector<Md5Impl> BatchHasher::supported_md5_impls() {
  std::vector<Md5Impl> impls;
  for (Md5Impl impl :
       {Md5Impl::kScalar, Md5Impl::kSse2x4, Md5Impl::kAvx2x8}) {
    if (md5_supported(impl)) impls.push_back(impl);
  }
  return impls;
}

const BatchHasher& default_batch_hasher() {
  static const BatchHasher hasher;
  return hasher;
}

}  // namespace aadedupe::hash
