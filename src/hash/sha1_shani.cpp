// SHA-1 over the x86 SHA New Instructions (compiled with -msha).
//
// A single sha1rnds4 instruction retires four SHA-1 rounds, so one lane of
// SHA-NI outperforms even the 8-wide interleaved AVX2 kernel — this is the
// top rung of the SHA-1 dispatch ladder. The round sequence follows the
// canonical Intel scheduling: message quads feed forward through
// sha1msg1/sha1msg2 while sha1nexte folds the rotated E term, four rounds
// per step, twenty steps per block.
//
// Only batch_hasher.cpp may call this, and only after the CPUID probe
// reports SHA-NI (plus SSSE3/SSE4.1 for pshufb/extract).
#include "hash/mb_kernels.hpp"

#if defined(__SHA__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace aadedupe::hash::detail {

namespace {

// Process `blocks` consecutive 64-byte blocks into `state`.
void shani_process(std::uint32_t state[5], const std::byte* data,
                   std::size_t blocks) noexcept {
  // pshufb mask flipping each 32-bit word's bytes to big-endian.
  const __m128i kMask =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  abcd = _mm_shuffle_epi32(abcd, 0x1B);

  while (blocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;
    __m128i e1;
    __m128i msg0, msg1, msg2, msg3;

    // Rounds 0-3
    msg0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kMask);
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kMask);
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kMask);
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 12-15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kMask);
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    // Fold into the running state.
    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);

    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

}  // namespace

Digest sha1_shani_one(ConstByteSpan data) {
  std::uint32_t state[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                            0x10325476u, 0xc3d2e1f0u};
  const std::uint64_t len = data.size();
  const std::size_t full_blocks = data.size() / 64;
  shani_process(state, data.data(), full_blocks);

  // Pad the remainder (RFC 3174): 0x80, zeros, 64-bit big-endian bit count.
  const std::size_t rem = data.size() % 64;
  std::byte tail[128] = {};
  if (rem != 0) std::memcpy(tail, data.data() + (len - rem), rem);
  tail[rem] = std::byte{0x80};
  const std::size_t tail_blocks = rem < 56 ? 1 : 2;
  const std::uint64_t bits = len * 8;
  std::byte* len_at = tail + tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) {
    len_at[i] = static_cast<std::byte>((bits >> (56 - 8 * i)) & 0xffu);
  }
  shani_process(state, tail, tail_blocks);

  std::byte out[20];
  for (std::size_t i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::byte>((state[i] >> 24) & 0xffu);
    out[4 * i + 1] = static_cast<std::byte>((state[i] >> 16) & 0xffu);
    out[4 * i + 2] = static_cast<std::byte>((state[i] >> 8) & 0xffu);
    out[4 * i + 3] = static_cast<std::byte>(state[i] & 0xffu);
  }
  return Digest(ConstByteSpan{out, 20});
}

}  // namespace aadedupe::hash::detail

#endif  // defined(__SHA__)
