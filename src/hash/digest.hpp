// Digest — a variable-width chunk fingerprint value.
//
// AA-Dedupe deliberately mixes fingerprint widths per application category
// (Section III.D of the paper): 12-byte extended Rabin for whole-file
// chunks, 16-byte MD5 for static chunks, 20-byte SHA-1 for CDC chunks.
// Digest holds up to 20 bytes plus the actual width so the three kinds can
// share index and container plumbing without ambiguity (digests of
// different widths never compare equal).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "util/bytes.hpp"
#include "util/check.hpp"

namespace aadedupe::hash {

class Digest {
 public:
  static constexpr std::size_t kMaxSize = 20;

  /// Zero-width digest (distinct from any real fingerprint).
  constexpr Digest() noexcept : bytes_{}, size_(0) {}

  /// Construct from raw fingerprint bytes (1..20 bytes).
  explicit Digest(ConstByteSpan bytes) : bytes_{}, size_(0) {
    AAD_EXPECTS(bytes.size() >= 1 && bytes.size() <= kMaxSize);
    size_ = static_cast<std::uint8_t>(bytes.size());
    std::memcpy(bytes_.data(), bytes.data(), bytes.size());
  }

  [[nodiscard]] ConstByteSpan bytes() const noexcept {
    return {bytes_.data(), size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Lower-case hex rendering, e.g. "d41d8cd98f00b204e9800998ecf8427e".
  [[nodiscard]] std::string hex() const { return to_hex(bytes()); }

  /// First 8 bytes folded into a u64 — used for index bucketing. A real
  /// fingerprint always has >= 12 bytes here, so this never truncates to
  /// fewer than 8 meaningful bytes for real digests.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    std::uint64_t v = 0;
    const std::size_t n = size_ < 8 ? size_ : std::size_t{8};
    std::memcpy(&v, bytes_.data(), n);
    return v;
  }

  friend bool operator==(const Digest& a, const Digest& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.bytes_.data(), b.bytes_.data(), a.size_) == 0;
  }

  friend std::strong_ordering operator<=>(const Digest& a,
                                          const Digest& b) noexcept {
    const int c = std::memcmp(a.bytes_.data(), b.bytes_.data(),
                              a.size_ < b.size_ ? a.size_ : b.size_);
    if (c != 0) return c < 0 ? std::strong_ordering::less
                             : std::strong_ordering::greater;
    return a.size_ <=> b.size_;
  }

  struct Hasher {
    std::size_t operator()(const Digest& d) const noexcept {
      // Digest bytes are already uniformly distributed; the prefix is a
      // perfectly good hash.
      return static_cast<std::size_t>(d.prefix64());
    }
  };

 private:
  std::array<std::byte, kMaxSize> bytes_;
  std::uint8_t size_;
};

}  // namespace aadedupe::hash
