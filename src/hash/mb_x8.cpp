// 8-lane instantiation of the multi-buffer hash kernel.
//
// This TU is the only one compiled with -mavx2 (set in src/hash/CMakeLists
// via per-source COMPILE_OPTIONS), so the 256-bit vectors in mb_lanes.hpp
// lower to real YMM instructions. It must only be reached through the
// batch_hasher dispatch ladder after the CPUID probe confirms AVX2 and OS
// YMM-state support.
#include "hash/mb_kernels.hpp"
#include "hash/mb_lanes.hpp"

namespace aadedupe::hash::detail {

void sha1_mb_x8(std::span<const ConstByteSpan> chunks, Digest* out) {
  mb_hash<8, Sha1Spec>(chunks, out);
}

void md5_mb_x8(std::span<const ConstByteSpan> chunks, Digest* out) {
  mb_hash<8, Md5Spec>(chunks, out);
}

}  // namespace aadedupe::hash::detail
