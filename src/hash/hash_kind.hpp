// Uniform fingerprint-function dispatch.
//
// The paper's deduplicator selects the hash per application category
// (Section III.D): Rabin-96 for whole-file chunks, MD5 for static chunks,
// SHA-1 for CDC chunks. HashKind names the choice; compute_digest() is the
// single dispatch point used by schemes and benchmarks.
#pragma once

#include <cstdint>
#include <string_view>

#include "hash/digest.hpp"
#include "hash/md5.hpp"
#include "hash/rabin.hpp"
#include "hash/sha1.hpp"

namespace aadedupe::hash {

enum class HashKind : std::uint8_t {
  kRabin96,  // 12-byte extended Rabin fingerprint (weak, cheap)
  kMd5,      // 16-byte MD5
  kSha1,     // 20-byte SHA-1
};

/// Fingerprint `data` with the selected function.
inline Digest compute_digest(HashKind kind, ConstByteSpan data) noexcept {
  switch (kind) {
    case HashKind::kRabin96:
      return Rabin96::hash(data);
    case HashKind::kMd5:
      return Md5::hash(data);
    case HashKind::kSha1:
      return Sha1::hash(data);
  }
  return Digest{};  // unreachable for valid enum values
}

/// Digest width in bytes for the selected function.
constexpr std::size_t digest_size(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kRabin96:
      return Rabin96::kDigestSize;
    case HashKind::kMd5:
      return Md5::kDigestSize;
    case HashKind::kSha1:
      return Sha1::kDigestSize;
  }
  return 0;
}

constexpr std::string_view to_string(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kRabin96:
      return "rabin96";
    case HashKind::kMd5:
      return "md5";
    case HashKind::kSha1:
      return "sha1";
  }
  return "?";
}

}  // namespace aadedupe::hash
