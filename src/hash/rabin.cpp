#include "hash/rabin.hpp"

#include <algorithm>

namespace aadedupe::hash {

namespace {
/// Multiply a (degree < 64) polynomial by x, reducing mod (x^64 + poly_low).
inline std::uint64_t mul_x(std::uint64_t v, std::uint64_t poly_low) noexcept {
  const bool carry = (v >> 63) & 1;
  v <<= 1;
  if (carry) v ^= poly_low;
  return v;
}
}  // namespace

RabinPoly::RabinPoly(std::uint64_t poly_low) noexcept : poly_(poly_low) {
  // x64_mod = x^64 mod P = poly_low by definition of the implicit top term.
  // shift_[t] = t(x) · x^64 mod P, computed bit-by-bit from x64_mod.
  std::uint64_t power = poly_low;  // x^64 · x^0 mod P
  std::array<std::uint64_t, 8> bit_contrib{};
  for (int bit = 0; bit < 8; ++bit) {
    bit_contrib[static_cast<std::size_t>(bit)] = power;
    power = mul_x(power, poly_low);  // x^64 · x^(bit+1) mod P
  }
  for (unsigned t = 0; t < 256; ++t) {
    std::uint64_t v = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if ((t >> bit) & 1u) v ^= bit_contrib[static_cast<std::size_t>(bit)];
    }
    shift_[t] = v;
  }
  // Bulk-path tables: slice_[k][t] = t(x)·x^(64+8k) mod P. slice_[0] is
  // shift_ itself; each further slice multiplies by x^8.
  slice_[0] = shift_;
  for (std::size_t k = 1; k < 8; ++k) {
    for (unsigned t = 0; t < 256; ++t) {
      std::uint64_t v = slice_[k - 1][t];
      for (int i = 0; i < 8; ++i) v = mul_x(v, poly_low);
      slice_[k][t] = v;
    }
  }
}

std::uint64_t RabinPoly::shift_bytes(std::uint64_t value,
                                     std::size_t byte_count) const noexcept {
  for (std::size_t i = 0; i < byte_count * 8; ++i) {
    value = mul_x(value, poly_);
  }
  return value;
}

std::uint64_t RabinPoly::naive_fingerprint(ConstByteSpan data,
                                           std::uint64_t poly_low) noexcept {
  // fp = m(x) mod P, processing one message bit at a time: appending bit v
  // maps fp -> fp·x + v (mod P). This is the same convention as
  // push_byte(), which appends eight bits at once via the table.
  std::uint64_t fp = 0;
  for (std::byte byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const std::uint64_t v = (static_cast<std::uint64_t>(byte) >> bit) & 1u;
      fp = mul_x(fp, poly_low) ^ v;
    }
  }
  return fp;
}

RabinWindowTable::RabinWindowTable(const RabinPoly& poly,
                                   std::size_t window_size)
    : poly_(&poly), window_size_(window_size) {
  AAD_EXPECTS(window_size >= 1 && window_size <= kMaxRabinWindowSize);
  // When the window slides, the departing byte's contribution must be
  // XORed out. A byte that sat at the head of a W-byte window and is then
  // pushed past contributes b(x)·x^(8W)·x^64 mod P — i.e. exactly the
  // fingerprint of the message (b followed by W zero bytes). Tabulate that
  // by direct simulation so the removal convention can never drift from
  // push_byte's append convention.
  for (unsigned b = 0; b < 256; ++b) {
    std::uint64_t fp = poly.push_byte(0, static_cast<std::byte>(b));
    for (std::size_t i = 0; i < window_size; ++i) {
      fp = poly.push_byte(fp, std::byte{0});
    }
    remove_[b] = fp;
  }
}

RabinWindow::RabinWindow(const RabinWindowTable& table)
    : table_(&table), poly_(&table.poly()), size_(table.window_size()) {}

RabinWindow::RabinWindow(const RabinPoly& poly, std::size_t window_size)
    : owned_(std::make_shared<RabinWindowTable>(poly, window_size)),
      table_(owned_.get()),
      poly_(&poly),
      size_(window_size) {}

void RabinWindow::reset() noexcept {
  std::fill_n(ring_.begin(), size_, std::byte{0});
  fp_ = 0;
  pos_ = 0;
}

const RabinPoly& Rabin96::poly_a() noexcept {
  static const RabinPoly poly(kRabinPolyA);
  return poly;
}

const RabinPoly& Rabin96::poly_b() noexcept {
  static const RabinPoly poly(kRabinPolyB);
  return poly;
}

}  // namespace aadedupe::hash
