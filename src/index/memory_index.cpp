#include "index/memory_index.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace aadedupe::index {

void serialize_entry(ByteBuffer& out, const hash::Digest& digest,
                     const ChunkLocation& location) {
  out.push_back(static_cast<std::byte>(digest.size()));
  append(out, digest.bytes());
  append_le64(out, location.container_id);
  append_le32(out, location.offset);
  append_le32(out, location.length);
}

std::pair<hash::Digest, ChunkLocation> deserialize_entry(ConstByteSpan image,
                                                         std::size_t& pos) {
  if (pos >= image.size()) throw FormatError("index image: truncated entry");
  const auto digest_size = static_cast<std::size_t>(image[pos]);
  ++pos;
  if (digest_size == 0 || digest_size > hash::Digest::kMaxSize ||
      pos + digest_size + 16 > image.size()) {
    throw FormatError("index image: bad digest size or truncated entry");
  }
  hash::Digest digest(image.subspan(pos, digest_size));
  pos += digest_size;
  ChunkLocation loc;
  loc.container_id = load_le64(image.data() + pos);
  pos += 8;
  loc.offset = load_le32(image.data() + pos);
  pos += 4;
  loc.length = load_le32(image.data() + pos);
  pos += 4;
  return {digest, loc};
}

std::optional<ChunkLocation> MemoryChunkIndex::lookup(
    const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  ++stats_.lookups;
  ++stats_.probe_steps;  // hash-map probe: one step per lookup
  const auto it = map_.find(digest);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second;
}

bool MemoryChunkIndex::insert(const hash::Digest& digest,
                              const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = map_.emplace(digest, location);
  if (inserted) ++stats_.inserts;
  return inserted;
}

bool MemoryChunkIndex::remove(const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  return map_.erase(digest) > 0;
}

bool MemoryChunkIndex::update(const hash::Digest& digest,
                              const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(digest);
  if (it == map_.end()) return false;
  it->second = location;
  return true;
}

std::uint64_t MemoryChunkIndex::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

IndexStats MemoryChunkIndex::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

ByteBuffer MemoryChunkIndex::serialize() const {
  std::lock_guard lock(mutex_);
  ByteBuffer out;
  append_le64(out, map_.size());
  for (const auto& [digest, loc] : map_) {
    serialize_entry(out, digest, loc);
  }
  return out;
}

void MemoryChunkIndex::deserialize(ConstByteSpan image) {
  if (image.size() < 8) throw FormatError("index image: missing header");
  const std::uint64_t count = load_le64(image.data());
  std::size_t pos = 8;
  decltype(map_) fresh;
  // A corrupted count must not drive a huge allocation: each entry takes
  // at least 17 bytes on the wire.
  fresh.reserve(std::min<std::uint64_t>(count, (image.size() - pos) / 17));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto [digest, loc] = deserialize_entry(image, pos);
    fresh.emplace(digest, loc);
  }
  if (pos != image.size()) throw FormatError("index image: trailing bytes");
  std::lock_guard lock(mutex_);
  map_ = std::move(fresh);
}

}  // namespace aadedupe::index
