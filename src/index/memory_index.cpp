#include "index/memory_index.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace aadedupe::index {

std::optional<ChunkLocation> MemoryChunkIndex::lookup(
    const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  ++stats_.lookups;
  ++stats_.probe_steps;  // hash-map probe: one step per lookup
  const auto it = map_.find(digest);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second;
}

void MemoryChunkIndex::lookup_batch(
    std::span<const hash::Digest> digests,
    std::vector<std::optional<ChunkLocation>>& out) {
  out.clear();
  out.reserve(digests.size());
  std::lock_guard lock(mutex_);  // one lock per batch, not per chunk
  for (const hash::Digest& digest : digests) {
    ++stats_.lookups;
    ++stats_.probe_steps;
    const auto it = map_.find(digest);
    if (it == map_.end()) {
      out.emplace_back(std::nullopt);
    } else {
      ++stats_.hits;
      out.emplace_back(it->second);
    }
  }
}

bool MemoryChunkIndex::insert(const hash::Digest& digest,
                              const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = map_.emplace(digest, location);
  if (inserted) {
    ++stats_.inserts;
    journal_.record(encode_insert_record(digest, location));
  }
  return inserted;
}

bool MemoryChunkIndex::remove(const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  if (map_.erase(digest) == 0) return false;
  journal_.record(encode_remove_record(digest));
  return true;
}

bool MemoryChunkIndex::update(const hash::Digest& digest,
                              const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(digest);
  if (it == map_.end()) return false;
  it->second = location;
  journal_.record(encode_update_record(digest, location));
  return true;
}

std::uint64_t MemoryChunkIndex::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

IndexStats MemoryChunkIndex::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void MemoryChunkIndex::checkpoint(CheckpointSink& sink) {
  std::lock_guard lock(mutex_);
  // Re-base when no base exists yet, or when the accumulated delta has
  // outgrown a fresh snapshot (heavy churn): a base is then both smaller
  // and cheaper to replay.
  if (!journal_.active() || journal_.pending() > map_.size()) {
    sink.write(encode_base_record(serialize_locked()));
    journal_.mark_base();
    return;
  }
  journal_.drain(sink);
}

void MemoryChunkIndex::checkpoint_full(CheckpointSink& sink) const {
  std::lock_guard lock(mutex_);
  sink.write(encode_base_record(serialize_locked()));
}

void MemoryChunkIndex::apply_checkpoint_record(ConstByteSpan record) {
  const DecodedRecord decoded = decode_record(record);
  std::lock_guard lock(mutex_);
  // Replayed records bypass the journal: re-emitting them at the next
  // checkpoint would duplicate history the consumer chain already holds.
  switch (decoded.op) {
    case CheckpointOp::kBase:
      deserialize_locked(decoded.payload);
      break;
    case CheckpointOp::kInsert: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      map_[digest] = loc;
      break;
    }
    case CheckpointOp::kRemove:
      map_.erase(decode_remove_payload(decoded.payload));
      break;
    case CheckpointOp::kUpdate: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      map_[digest] = loc;
      break;
    }
    default:
      throw FormatError(
          "checkpoint record: partition-level opcode sent to a shard");
  }
}

ByteBuffer MemoryChunkIndex::serialize_locked() const {
  ByteBuffer out;
  append_le64(out, map_.size());
  for (const auto& [digest, loc] : map_) {
    serialize_entry(out, digest, loc);
  }
  return out;
}

ByteBuffer MemoryChunkIndex::serialize() const {
  std::lock_guard lock(mutex_);
  return serialize_locked();
}

void MemoryChunkIndex::deserialize_locked(ConstByteSpan image) {
  if (image.size() < 8) throw FormatError("index image: missing header");
  const std::uint64_t count = load_le64(image.data());
  std::size_t pos = 8;
  decltype(map_) fresh;
  // A corrupted count must not drive a huge allocation: each entry takes
  // at least 17 bytes on the wire.
  fresh.reserve(std::min<std::uint64_t>(count, (image.size() - pos) / 17));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto [digest, loc] = deserialize_entry(image, pos);
    fresh.emplace(digest, loc);
  }
  if (pos != image.size()) throw FormatError("index image: trailing bytes");
  map_ = std::move(fresh);
  // The image is a known base shared with whoever wrote it: journal deltas
  // against it from here on.
  journal_.mark_base();
}

void MemoryChunkIndex::deserialize(ConstByteSpan image) {
  std::lock_guard lock(mutex_);
  deserialize_locked(image);
}

}  // namespace aadedupe::index
