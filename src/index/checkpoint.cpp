#include "index/checkpoint.hpp"

#include "util/check.hpp"

namespace aadedupe::index {

bool is_checkpoint_stream(ConstByteSpan stream) noexcept {
  if (stream.size() < kCheckpointMagic.size()) return false;
  return to_string(stream.first(kCheckpointMagic.size())) == kCheckpointMagic;
}

BufferCheckpointSource::BufferCheckpointSource(ConstByteSpan stream)
    : stream_(stream) {
  if (!is_checkpoint_stream(stream_)) {
    throw FormatError("checkpoint stream: missing AADCKPT1 magic");
  }
  pos_ = kCheckpointMagic.size();
}

std::optional<ConstByteSpan> BufferCheckpointSource::next() {
  if (pos_ == stream_.size()) return std::nullopt;
  if (pos_ + 8 > stream_.size()) {
    throw FormatError("checkpoint stream: truncated record length");
  }
  const std::uint64_t len = load_le64(stream_.data() + pos_);
  pos_ += 8;
  if (len > stream_.size() - pos_) {
    throw FormatError("checkpoint stream: truncated record");
  }
  ConstByteSpan record = stream_.subspan(pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return record;
}

}  // namespace aadedupe::index
