// Chunk-index abstraction: fingerprint -> cloud location.
//
// The index answers the central deduplication question — "is this chunk
// already stored?" — and is exactly the structure the paper redesigns:
// a traditional scheme keeps ONE index over all chunks (which outgrows RAM
// and hits the disk-lookup bottleneck), while AA-Dedupe keeps one SMALL
// index per application (Section III.E), safe because cross-application
// sharing is negligible (Observation 2).
//
// API surface (redesigned for the on-disk log-structured backend):
//   * maybe_contains()  — filter probe; false means definitely absent, so
//     negative lookups (the common case for new data) skip the index.
//   * lookup_batch()    — amortizes virtual-call + lock overhead across a
//     file's worth of fingerprints in the parallel front end.
//   * checkpoint()/restore() — incremental delta streams for state
//     persistence and the periodic cloud index sync. These SUPERSEDE the
//     wholesale serialize()/deserialize() image pair, which is deprecated:
//     it remains only as the base-record payload codec and as the compat
//     loader for pre-checkpoint images, and will not grow new callers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "hash/digest.hpp"
#include "index/checkpoint.hpp"
#include "util/bytes.hpp"

namespace aadedupe::index {

/// Where a stored chunk lives in the cloud.
struct ChunkLocation {
  std::uint64_t container_id = 0;  // container object holding the chunk
  std::uint32_t offset = 0;        // byte offset within the container payload
  std::uint32_t length = 0;        // chunk length in bytes

  friend bool operator==(const ChunkLocation&, const ChunkLocation&) = default;
};

/// Counters for efficiency analysis and the index ablation bench.
struct IndexStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t disk_reads = 0;   // bucket/slot reads that went to storage
  std::uint64_t disk_writes = 0;  // slot writes that went to storage
  std::uint64_t probe_steps = 0;  // slots examined across all lookups
  // Filter/cache counters (log-structured backend; zero elsewhere). These
  // make the paper's Section II.C bottleneck directly measurable: how many
  // lookups the bloom filter absorbed, how often it lied, and how well the
  // hot-set entry cache holds the working set.
  std::uint64_t filter_probes = 0;     // maybe_contains() calls answered
  std::uint64_t filter_negatives = 0;  // probes answered "definitely absent"
  std::uint64_t filter_false_positives = 0;  // filter said maybe, disk said no
  std::uint64_t cache_hits = 0;        // lookups served by the entry cache
  std::uint64_t cache_evictions = 0;   // entries evicted to hold capacity

  IndexStats& operator+=(const IndexStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    inserts += o.inserts;
    disk_reads += o.disk_reads;
    disk_writes += o.disk_writes;
    probe_steps += o.probe_steps;
    filter_probes += o.filter_probes;
    filter_negatives += o.filter_negatives;
    filter_false_positives += o.filter_false_positives;
    cache_hits += o.cache_hits;
    cache_evictions += o.cache_evictions;
    return *this;
  }
};

/// Opcode of one checkpoint record. Shard-level records describe one
/// index's contents; the partition-level pair wraps shard records with the
/// partition key (see PartitionedIndex).
enum class CheckpointOp : std::uint8_t {
  kBase = 1,    // payload: legacy serialize() image (replaces contents)
  kInsert = 2,  // payload: one entry (serialize_entry format)
  kRemove = 3,  // payload: digest_size u8 | digest bytes
  kUpdate = 4,  // payload: one entry (repoint existing fingerprint)
  kReset = 0x10,  // partition-level: drop every shard (no payload)
  kShard = 0x11,  // partition-level: key_len u32 | key | nested record
};

/// Thread-safe fingerprint index. All implementations synchronize
/// internally so independent shards can be probed concurrently.
class ChunkIndex {
 public:
  virtual ~ChunkIndex() = default;

  /// Find a previously stored chunk with this fingerprint.
  [[nodiscard]] virtual std::optional<ChunkLocation> lookup(
      const hash::Digest& digest) = 0;

  /// Filter probe: false means the fingerprint is DEFINITELY absent (the
  /// caller can skip lookup entirely); true means "maybe present". The
  /// default has no filter and always says maybe.
  [[nodiscard]] virtual bool maybe_contains(const hash::Digest& digest) {
    (void)digest;
    return true;
  }

  /// Look up a batch of fingerprints in one call, writing one result per
  /// digest into `out` (resized to match). Implementations override this
  /// to take their internal lock once per batch instead of once per chunk;
  /// the default loops over lookup().
  virtual void lookup_batch(std::span<const hash::Digest> digests,
                            std::vector<std::optional<ChunkLocation>>& out);

  /// Record a new chunk. Returns false (and leaves the existing mapping)
  /// if the fingerprint was already present.
  virtual bool insert(const hash::Digest& digest,
                      const ChunkLocation& location) = 0;

  /// Drop a fingerprint (file deletion / garbage collection). Returns
  /// false if it was not present.
  virtual bool remove(const hash::Digest& digest) = 0;

  /// Repoint an existing fingerprint at a new location (container
  /// rewrite during garbage collection). Returns false if absent.
  virtual bool update(const hash::Digest& digest,
                      const ChunkLocation& location) = 0;

  /// Number of distinct fingerprints stored.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  [[nodiscard]] virtual IndexStats stats() const = 0;

  /// Write an INCREMENTAL checkpoint: the first call (or the first after
  /// clearing) emits a full base record, later calls emit only the
  /// mutations since the previous checkpoint(). The default (for
  /// implementations without a delta journal) always emits a base.
  virtual void checkpoint(CheckpointSink& sink);

  /// Write a full self-contained snapshot (always a base record) without
  /// disturbing the incremental checkpoint chain. Used by export_state.
  virtual void checkpoint_full(CheckpointSink& sink) const;

  /// Replay a checkpoint stream into this index. A base record replaces
  /// the contents; delta records apply on top. Throws FormatError on
  /// malformed records.
  virtual void restore(CheckpointSource& source);

  /// Apply one checkpoint record (bypasses any delta journal: replayed
  /// records must not be re-emitted by the next checkpoint).
  virtual void apply_checkpoint_record(ConstByteSpan record);

  /// DEPRECATED image pair, superseded by checkpoint()/restore(). Kept as
  /// the kBase payload codec and the compat path for images written before
  /// the checkpoint format existed. Do not add new callers.
  [[nodiscard]] virtual ByteBuffer serialize() const = 0;

  /// Replace contents from a previously serialized image.
  /// Throws FormatError on malformed input.
  virtual void deserialize(ConstByteSpan image) = 0;
};

/// Shared serialization helpers (one entry = digest size, digest bytes,
/// location triple; all little-endian).
void serialize_entry(ByteBuffer& out, const hash::Digest& digest,
                     const ChunkLocation& location);

/// Reads one entry at `pos`, advancing it. Throws FormatError on overrun.
std::pair<hash::Digest, ChunkLocation> deserialize_entry(ConstByteSpan image,
                                                         std::size_t& pos);

// ---- Checkpoint record codec (shared by every implementation). ----

[[nodiscard]] ByteBuffer encode_base_record(ConstByteSpan image);
[[nodiscard]] ByteBuffer encode_insert_record(const hash::Digest& digest,
                                              const ChunkLocation& location);
[[nodiscard]] ByteBuffer encode_remove_record(const hash::Digest& digest);
[[nodiscard]] ByteBuffer encode_update_record(const hash::Digest& digest,
                                              const ChunkLocation& location);

/// A decoded record header: opcode plus its payload bytes (view into the
/// input record).
struct DecodedRecord {
  CheckpointOp op;
  ConstByteSpan payload;
};

/// Splits a record into opcode + payload. Throws FormatError on an empty
/// record or unknown opcode.
[[nodiscard]] DecodedRecord decode_record(ConstByteSpan record);

/// Decodes the digest of a kRemove payload. Throws FormatError.
[[nodiscard]] hash::Digest decode_remove_payload(ConstByteSpan payload);

/// Decodes the entry of a kInsert/kUpdate payload. Throws FormatError.
[[nodiscard]] std::pair<hash::Digest, ChunkLocation> decode_entry_payload(
    ConstByteSpan payload);

}  // namespace aadedupe::index
