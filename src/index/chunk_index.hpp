// Chunk-index abstraction: fingerprint -> cloud location.
//
// The index answers the central deduplication question — "is this chunk
// already stored?" — and is exactly the structure the paper redesigns:
// a traditional scheme keeps ONE index over all chunks (which outgrows RAM
// and hits the disk-lookup bottleneck), while AA-Dedupe keeps one SMALL
// index per application (Section III.E), safe because cross-application
// sharing is negligible (Observation 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "hash/digest.hpp"
#include "util/bytes.hpp"

namespace aadedupe::index {

/// Where a stored chunk lives in the cloud.
struct ChunkLocation {
  std::uint64_t container_id = 0;  // container object holding the chunk
  std::uint32_t offset = 0;        // byte offset within the container payload
  std::uint32_t length = 0;        // chunk length in bytes

  friend bool operator==(const ChunkLocation&, const ChunkLocation&) = default;
};

/// Counters for efficiency analysis and the index ablation bench.
struct IndexStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t disk_reads = 0;   // bucket/slot reads that went to storage
  std::uint64_t disk_writes = 0;  // slot writes that went to storage
  std::uint64_t probe_steps = 0;  // slots examined across all lookups

  IndexStats& operator+=(const IndexStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    inserts += o.inserts;
    disk_reads += o.disk_reads;
    disk_writes += o.disk_writes;
    probe_steps += o.probe_steps;
    return *this;
  }
};

/// Thread-safe fingerprint index. All implementations synchronize
/// internally so independent shards can be probed concurrently.
class ChunkIndex {
 public:
  virtual ~ChunkIndex() = default;

  /// Find a previously stored chunk with this fingerprint.
  [[nodiscard]] virtual std::optional<ChunkLocation> lookup(
      const hash::Digest& digest) = 0;

  /// Record a new chunk. Returns false (and leaves the existing mapping)
  /// if the fingerprint was already present.
  virtual bool insert(const hash::Digest& digest,
                      const ChunkLocation& location) = 0;

  /// Drop a fingerprint (file deletion / garbage collection). Returns
  /// false if it was not present.
  virtual bool remove(const hash::Digest& digest) = 0;

  /// Repoint an existing fingerprint at a new location (container
  /// rewrite during garbage collection). Returns false if absent.
  virtual bool update(const hash::Digest& digest,
                      const ChunkLocation& location) = 0;

  /// Number of distinct fingerprints stored.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  [[nodiscard]] virtual IndexStats stats() const = 0;

  /// Serialize the full index for the paper's periodic cloud sync of
  /// index state (Section III.E).
  [[nodiscard]] virtual ByteBuffer serialize() const = 0;

  /// Replace contents from a previously serialized image.
  /// Throws FormatError on malformed input.
  virtual void deserialize(ConstByteSpan image) = 0;
};

/// Shared serialization helpers (one entry = digest size, digest bytes,
/// location triple; all little-endian).
void serialize_entry(ByteBuffer& out, const hash::Digest& digest,
                     const ChunkLocation& location);

/// Reads one entry at `pos`, advancing it. Throws FormatError on overrun.
std::pair<hash::Digest, ChunkLocation> deserialize_entry(ConstByteSpan image,
                                                         std::size_t& pos);

}  // namespace aadedupe::index
