#include "index/sim_disk_index.hpp"

#include "util/check.hpp"

namespace aadedupe::index {

SimulatedDiskIndex::SimulatedDiskIndex(std::unique_ptr<ChunkIndex> inner,
                                       SimDiskOptions options,
                                       SimTimeSink sink)
    : inner_(std::move(inner)), options_(options), sink_(std::move(sink)) {
  AAD_EXPECTS(inner_ != nullptr);
  AAD_EXPECTS(sink_ != nullptr);
  AAD_EXPECTS(options_.cache_entries >= 1);
}

bool SimulatedDiskIndex::cache_touch_locked(const hash::Digest& digest) {
  const auto it = cache_.find(digest);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return true;
}

void SimulatedDiskIndex::cache_add_locked(const hash::Digest& digest) {
  if (cache_.contains(digest)) return;
  lru_.push_front(digest);
  cache_.emplace(digest, lru_.begin());
  if (cache_.size() > options_.cache_entries) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++cache_evictions_;
  }
}

std::optional<ChunkLocation> SimulatedDiskIndex::lookup(
    const hash::Digest& digest) {
  double charge = 0.0;
  {
    std::lock_guard lock(mutex_);
    if (cache_touch_locked(digest)) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
      charge = options_.miss_seek_seconds;
      cache_add_locked(digest);
    }
  }
  if (charge > 0.0) sink_(charge);
  return inner_->lookup(digest);
}

bool SimulatedDiskIndex::insert(const hash::Digest& digest,
                                const ChunkLocation& location) {
  {
    std::lock_guard lock(mutex_);
    cache_add_locked(digest);
  }
  sink_(options_.insert_seconds);
  return inner_->insert(digest, location);
}

bool SimulatedDiskIndex::remove(const hash::Digest& digest) {
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(digest);
    if (it != cache_.end()) {
      lru_.erase(it->second);
      cache_.erase(it);
    }
  }
  sink_(options_.insert_seconds);  // a delete is an index write too
  return inner_->remove(digest);
}

bool SimulatedDiskIndex::update(const hash::Digest& digest,
                                const ChunkLocation& location) {
  sink_(options_.insert_seconds);
  return inner_->update(digest, location);
}

std::uint64_t SimulatedDiskIndex::size() const { return inner_->size(); }

bool SimulatedDiskIndex::maybe_contains(const hash::Digest& digest) {
  // Filter probes are RAM-resident in the simulated model: no seek charge.
  return inner_->maybe_contains(digest);
}

IndexStats SimulatedDiskIndex::stats() const {
  IndexStats s = inner_->stats();
  std::lock_guard lock(mutex_);
  // Surface the simulated disk traffic through the standard counters.
  s.disk_reads = cache_misses_;
  s.cache_hits = cache_hits_;
  s.cache_evictions = cache_evictions_;
  return s;
}

void SimulatedDiskIndex::checkpoint(CheckpointSink& sink) {
  inner_->checkpoint(sink);
}

void SimulatedDiskIndex::checkpoint_full(CheckpointSink& sink) const {
  inner_->checkpoint_full(sink);
}

void SimulatedDiskIndex::apply_checkpoint_record(ConstByteSpan record) {
  inner_->apply_checkpoint_record(record);
  if (decode_record(record).op == CheckpointOp::kBase) {
    std::lock_guard lock(mutex_);
    lru_.clear();
    cache_.clear();
  }
}

ByteBuffer SimulatedDiskIndex::serialize() const { return inner_->serialize(); }

void SimulatedDiskIndex::deserialize(ConstByteSpan image) {
  inner_->deserialize(image);
  std::lock_guard lock(mutex_);
  lru_.clear();
  cache_.clear();
}

std::uint64_t SimulatedDiskIndex::cache_hits() const {
  std::lock_guard lock(mutex_);
  return cache_hits_;
}

std::uint64_t SimulatedDiskIndex::cache_misses() const {
  std::lock_guard lock(mutex_);
  return cache_misses_;
}

}  // namespace aadedupe::index
