// Persistent on-disk chunk index: an open-addressing hash table in a file.
//
// This models (with real file I/O) the monolithic full-fingerprint index of
// traditional source dedup: once it outgrows its RAM cache, every lookup
// costs disk reads — the "on-disk index lookup bottleneck" (paper Sections
// II.C and III.E, citing DDFS and Sparse Indexing). The application-aware
// design keeps each per-app index small enough to live in MemoryChunkIndex
// instead; this class exists so the baseline cost is real and measurable,
// and serves as the durable store for index cloud-sync round trips.
//
// On-disk layout (little-endian):
//   header  : magic "AADIDX01" | slot_count u64 | entry_count u64 |
//             tombstone_count u64 | pad
//   slots[] : digest_size u8 (0 = empty, 0xff = tombstone) |
//             digest bytes [20] | container_id u64 | offset u32 |
//             length u32 | pad -> 40 bytes
// Collisions use linear probing; deletions leave tombstones (reused by
// inserts, dropped on growth); the table grows (2x rebuild) when live
// entries plus tombstones exceed a 0.7 load factor.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "hash/digest.hpp"
#include "index/chunk_index.hpp"

namespace aadedupe::index {

class PersistentChunkIndex final : public ChunkIndex {
 public:
  struct Options {
    std::uint64_t initial_slots = 1024;
    /// Read-through entry cache; 0 disables caching entirely.
    std::size_t cache_entries = 4096;
    /// Simulated seek cost charged per slot read that reaches the file,
    /// to model rotational media in benchmarks (0 = off). Charged to the
    /// SIMULATED transfer clock — either `latency_sink` or the internal
    /// simulated_read_seconds() accumulator — never slept for real, so
    /// benches don't burn CPU to model seeks (consistent with
    /// retrying_backend's ChargeFn and sim_disk_index's SimTimeSink).
    std::uint64_t simulated_read_latency_us = 0;
    /// Receives each simulated latency charge in seconds. When null,
    /// charges accumulate in simulated_read_seconds() instead.
    std::function<void(double seconds)> latency_sink;
  };

  /// Opens (or creates) the index file at `path`.
  explicit PersistentChunkIndex(std::string path)
      : PersistentChunkIndex(std::move(path), Options{}) {}
  PersistentChunkIndex(std::string path, Options options);
  ~PersistentChunkIndex() override;

  PersistentChunkIndex(const PersistentChunkIndex&) = delete;
  PersistentChunkIndex& operator=(const PersistentChunkIndex&) = delete;

  std::optional<ChunkLocation> lookup(const hash::Digest& digest) override;
  void lookup_batch(std::span<const hash::Digest> digests,
                    std::vector<std::optional<ChunkLocation>>& out) override;
  bool insert(const hash::Digest& digest,
              const ChunkLocation& location) override;
  bool remove(const hash::Digest& digest) override;
  bool update(const hash::Digest& digest,
              const ChunkLocation& location) override;
  std::uint64_t size() const override;
  IndexStats stats() const override;
  ByteBuffer serialize() const override;
  void deserialize(ConstByteSpan image) override;

  /// Flush file contents to stable storage (fsync).
  void flush();

  std::uint64_t slot_count() const;
  const std::string& path() const noexcept { return path_; }

  /// Total simulated seek time charged so far (only accumulates when
  /// Options::latency_sink is null).
  double simulated_read_seconds() const;

 private:
  static constexpr std::uint64_t kHeaderSize = 64;
  static constexpr std::uint64_t kSlotSize = 40;

  /// Deleted entries leave a tombstone so linear-probe chains stay
  /// intact; tombstones are reused by inserts and dropped on growth.
  static constexpr std::uint8_t kTombstoneMarker = 0xff;

  struct Slot {
    hash::Digest digest;  // empty() == free slot (unless tombstone)
    ChunkLocation location;
    bool tombstone = false;
  };

  void create_file(std::uint64_t slots);
  void load_header();
  void persist_counters();
  Slot read_slot(std::uint64_t slot_index);        // counts disk_reads
  void write_slot(std::uint64_t slot_index, const Slot& slot);
  void grow_locked();
  bool insert_locked(const hash::Digest& digest, const ChunkLocation& loc,
                     bool count_stats);
  std::optional<ChunkLocation> lookup_locked(const hash::Digest& digest);
  void cache_put(const hash::Digest& digest, const ChunkLocation& loc);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t slot_count_ = 0;
  std::uint64_t entry_count_ = 0;
  std::uint64_t tombstone_count_ = 0;
  mutable std::mutex mutex_;
  IndexStats stats_;
  double simulated_read_seconds_ = 0.0;
  // Read-through cache, evicted FIFO (simple and adequate: dedup lookups
  // have little short-term reuse beyond the working set).
  std::unordered_map<hash::Digest, ChunkLocation, hash::Digest::Hasher>
      cache_;
  std::vector<hash::Digest> cache_order_;
  std::size_t cache_evict_pos_ = 0;
};

}  // namespace aadedupe::index
