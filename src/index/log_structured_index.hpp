// Log-structured on-disk chunk index — the durable per-(tenant,
// application) shard behind ROADMAP item 2.
//
// The RAM-resident MemoryChunkIndex realizes the paper's design point for
// one personal computer; at cloud-provider scale (millions of users, one
// shard per (tenant, application)) shards must live on disk and page in
// only their hot set. This index keeps the paper's lookup economics anyway:
//   * a bloom filter in front of the shard answers the common case — "this
//     chunk is new" — from RAM with ZERO disk reads (Section II.C's
//     disk-lookup bottleneck only ever applies to likely-positive probes);
//   * a capacity-bounded entry cache holds the hot set with HPDedup-style
//     locality-weighted eviction (frequency-decaying CLOCK: fingerprints
//     re-referenced by the backup stream survive, one-shot probes are
//     recycled first);
//   * everything else is append-only, so checkpoints are incremental and
//     crash recovery is log replay.
//
// On-disk layout (all little-endian), one directory per shard:
//   MANIFEST     : magic "AADLSMF1" | live_count u64 | next_segment_id u64 |
//                  segment_count u32 | { id u64 | record_count u64 }* |
//                  fnv1a-32 checksum of all preceding bytes.
//                  Written to MANIFEST.tmp then atomically renamed.
//   seg-<id>.idx : magic "AADLSSG1" | record_count u64 | records sorted by
//                  digest. Record (40 B): flags u8 (bit0 = tombstone) |
//                  digest_size u8 | digest [20] | container_id u64 |
//                  offset u32 | length u32 | pad [2].
//   wal.log      : { payload_len u32 | fnv1a-32(payload) u32 | payload }*.
//                  Payload: op u8 (1 = insert, 2 = remove, 3 = update) |
//                  entry (serialize_entry format) or digest_size+digest.
//
// Mutations append to the WAL and land in a RAM memtable; at
// `memtable_limit` entries the memtable is sealed into a sorted segment
// (fence pointers every `fence_interval` records keep lookups at one
// block read), the MANIFEST is atomically replaced, and the WAL is
// truncated. Crash anywhere in that window is safe: an unreferenced
// segment file is ignored, and WAL replay re-applies (idempotently) any
// ops the manifest already covers. A torn WAL tail is detected by the
// per-record checksum and truncated. When the segment count exceeds
// `max_segments`, all segments merge (newest record wins, tombstones
// drop) into one.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hash/digest.hpp"
#include "index/bloom_filter.hpp"
#include "index/checkpoint.hpp"
#include "index/chunk_index.hpp"

namespace aadedupe::index {

class LogStructuredIndex final : public ChunkIndex {
 public:
  struct Options {
    /// Memtable entries before sealing into a sorted segment.
    std::size_t memtable_limit = 16384;
    /// Bloom filter false-positive target; the filter is rebuilt at twice
    /// the capacity whenever the live set outgrows it.
    double bloom_fp_target = 0.01;
    /// Keys the initial bloom filter is sized for.
    std::uint64_t bloom_initial_capacity = 16384;
    /// Hot-set entry cache budget in bytes (0 disables the cache).
    std::size_t cache_capacity_bytes = 64ull << 20;
    /// Records per fence-pointer block (one disk read per probed block).
    std::size_t fence_interval = 64;
    /// Segment-count threshold that triggers a full merge.
    std::size_t max_segments = 10;
  };

  /// Opens (creating if needed) the shard directory, loads the manifest
  /// and segment fences, rebuilds the bloom filter, and replays the WAL.
  /// Throws FormatError on corrupt files.
  explicit LogStructuredIndex(std::filesystem::path directory)
      : LogStructuredIndex(std::move(directory), Options{}) {}
  LogStructuredIndex(std::filesystem::path directory, Options options);
  ~LogStructuredIndex() override;

  LogStructuredIndex(const LogStructuredIndex&) = delete;
  LogStructuredIndex& operator=(const LogStructuredIndex&) = delete;

  std::optional<ChunkLocation> lookup(const hash::Digest& digest) override;
  bool maybe_contains(const hash::Digest& digest) override;
  void lookup_batch(std::span<const hash::Digest> digests,
                    std::vector<std::optional<ChunkLocation>>& out) override;
  bool insert(const hash::Digest& digest,
              const ChunkLocation& location) override;
  bool remove(const hash::Digest& digest) override;
  bool update(const hash::Digest& digest,
              const ChunkLocation& location) override;
  std::uint64_t size() const override;
  IndexStats stats() const override;
  void checkpoint(CheckpointSink& sink) override;
  void checkpoint_full(CheckpointSink& sink) const override;
  void apply_checkpoint_record(ConstByteSpan record) override;
  ByteBuffer serialize() const override;
  void deserialize(ConstByteSpan image) override;

  /// Seal the memtable (if non-empty) and fsync everything: after flush()
  /// returns, the index survives an unclean shutdown without WAL replay.
  void flush();

  const std::filesystem::path& directory() const noexcept {
    return directory_;
  }
  /// Sealed segments currently referenced by the manifest.
  std::size_t segment_count() const;

 private:
  friend class SegmentFileWriter;  // builds Fence vectors while writing

  struct Entry {
    ChunkLocation location;
    bool tombstone = false;
  };

  struct Fence {
    hash::Digest first;        // first digest of the block
    std::uint64_t record_idx;  // index of that record in the segment
  };

  struct Segment {
    std::uint64_t id = 0;
    std::uint64_t record_count = 0;
    int fd = -1;
    std::vector<Fence> fences;
  };

  struct CacheSlot {
    hash::Digest digest;
    ChunkLocation location;
    std::uint8_t freq = 0;
  };

  // -- open/recovery --
  void load_manifest();
  void load_segment(Segment& segment);
  void replay_wal();
  void write_manifest_locked();

  // -- lookup path --
  std::optional<ChunkLocation> lookup_locked(const hash::Digest& digest);
  /// Entry as stored (tombstones included); nullopt if truly absent.
  std::optional<Entry> find_locked(const hash::Digest& digest);
  std::optional<Entry> search_segment(Segment& segment,
                                      const hash::Digest& digest);

  // -- mutation path --
  void wal_append_locked(ConstByteSpan payload);
  bool insert_locked(const hash::Digest& digest, const ChunkLocation& loc,
                     bool journal, bool count_stats);
  bool remove_locked(const hash::Digest& digest, bool journal);
  bool update_locked(const hash::Digest& digest, const ChunkLocation& loc,
                     bool journal);
  void bloom_add_locked(const hash::Digest& digest);
  void rebuild_bloom_locked(std::uint64_t capacity);
  void seal_memtable_locked();
  void compact_locked();
  void reset_storage_locked();
  void deserialize_locked(ConstByteSpan image);
  ByteBuffer serialize_locked() const;

  // -- hot-set entry cache (frequency-decaying CLOCK) --
  void cache_put_locked(const hash::Digest& digest, const ChunkLocation& loc);
  std::optional<ChunkLocation> cache_get_locked(const hash::Digest& digest);
  void cache_erase_locked(const hash::Digest& digest);

  std::filesystem::path directory_;
  Options options_;
  mutable std::mutex mutex_;

  std::vector<Segment> segments_;  // oldest first
  std::uint64_t next_segment_id_ = 1;
  std::uint64_t live_count_ = 0;

  int wal_fd_ = -1;
  std::uint64_t wal_bytes_ = 0;

  std::unordered_map<hash::Digest, Entry, hash::Digest::Hasher> memtable_;
  BloomFilter bloom_;

  std::size_t cache_capacity_ = 0;
  std::vector<CacheSlot> cache_slots_;
  std::unordered_map<hash::Digest, std::size_t, hash::Digest::Hasher>
      cache_pos_;
  std::size_t clock_hand_ = 0;

  IndexStats stats_;
  CheckpointJournal journal_;
};

/// Factory for PartitionedIndex: one LogStructuredIndex directory per
/// partition under `base_dir` (keys are hex-encoded into directory names
/// so arbitrary application tags stay filesystem-safe).
[[nodiscard]] std::function<std::unique_ptr<ChunkIndex>(const std::string&)>
log_structured_shard_factory(std::filesystem::path base_dir,
                             LogStructuredIndex::Options options = {});

}  // namespace aadedupe::index
