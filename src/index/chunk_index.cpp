#include "index/chunk_index.hpp"

#include "util/check.hpp"

namespace aadedupe::index {

void serialize_entry(ByteBuffer& out, const hash::Digest& digest,
                     const ChunkLocation& location) {
  out.push_back(static_cast<std::byte>(digest.size()));
  append(out, digest.bytes());
  append_le64(out, location.container_id);
  append_le32(out, location.offset);
  append_le32(out, location.length);
}

std::pair<hash::Digest, ChunkLocation> deserialize_entry(ConstByteSpan image,
                                                         std::size_t& pos) {
  if (pos >= image.size()) throw FormatError("index image: truncated entry");
  const auto digest_size = static_cast<std::size_t>(image[pos]);
  ++pos;
  if (digest_size == 0 || digest_size > hash::Digest::kMaxSize ||
      pos + digest_size + 16 > image.size()) {
    throw FormatError("index image: bad digest size or truncated entry");
  }
  hash::Digest digest(image.subspan(pos, digest_size));
  pos += digest_size;
  ChunkLocation loc;
  loc.container_id = load_le64(image.data() + pos);
  pos += 8;
  loc.offset = load_le32(image.data() + pos);
  pos += 4;
  loc.length = load_le32(image.data() + pos);
  pos += 4;
  return {digest, loc};
}

void ChunkIndex::lookup_batch(std::span<const hash::Digest> digests,
                              std::vector<std::optional<ChunkLocation>>& out) {
  out.clear();
  out.reserve(digests.size());
  for (const hash::Digest& digest : digests) out.push_back(lookup(digest));
}

void ChunkIndex::checkpoint(CheckpointSink& sink) {
  // No delta journal at this level: every checkpoint is a fresh base.
  checkpoint_full(sink);
}

void ChunkIndex::checkpoint_full(CheckpointSink& sink) const {
  sink.write(encode_base_record(serialize()));
}

void ChunkIndex::restore(CheckpointSource& source) {
  while (const auto record = source.next()) {
    apply_checkpoint_record(*record);
  }
}

void ChunkIndex::apply_checkpoint_record(ConstByteSpan record) {
  const DecodedRecord decoded = decode_record(record);
  switch (decoded.op) {
    case CheckpointOp::kBase:
      deserialize(decoded.payload);
      break;
    case CheckpointOp::kInsert: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      if (!insert(digest, loc)) update(digest, loc);
      break;
    }
    case CheckpointOp::kRemove:
      remove(decode_remove_payload(decoded.payload));
      break;
    case CheckpointOp::kUpdate: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      if (!update(digest, loc)) insert(digest, loc);
      break;
    }
    case CheckpointOp::kReset:
    case CheckpointOp::kShard:
      throw FormatError(
          "checkpoint record: partition-level opcode sent to a shard");
  }
}

ByteBuffer encode_base_record(ConstByteSpan image) {
  ByteBuffer out;
  out.reserve(1 + image.size());
  out.push_back(static_cast<std::byte>(CheckpointOp::kBase));
  append(out, image);
  return out;
}

ByteBuffer encode_insert_record(const hash::Digest& digest,
                                const ChunkLocation& location) {
  ByteBuffer out;
  out.push_back(static_cast<std::byte>(CheckpointOp::kInsert));
  serialize_entry(out, digest, location);
  return out;
}

ByteBuffer encode_remove_record(const hash::Digest& digest) {
  ByteBuffer out;
  out.push_back(static_cast<std::byte>(CheckpointOp::kRemove));
  out.push_back(static_cast<std::byte>(digest.size()));
  append(out, digest.bytes());
  return out;
}

ByteBuffer encode_update_record(const hash::Digest& digest,
                                const ChunkLocation& location) {
  ByteBuffer out;
  out.push_back(static_cast<std::byte>(CheckpointOp::kUpdate));
  serialize_entry(out, digest, location);
  return out;
}

DecodedRecord decode_record(ConstByteSpan record) {
  if (record.empty()) throw FormatError("checkpoint record: empty");
  const auto op = static_cast<std::uint8_t>(record[0]);
  switch (static_cast<CheckpointOp>(op)) {
    case CheckpointOp::kBase:
    case CheckpointOp::kInsert:
    case CheckpointOp::kRemove:
    case CheckpointOp::kUpdate:
    case CheckpointOp::kReset:
    case CheckpointOp::kShard:
      return {static_cast<CheckpointOp>(op), record.subspan(1)};
  }
  throw FormatError("checkpoint record: unknown opcode " +
                    std::to_string(op));
}

hash::Digest decode_remove_payload(ConstByteSpan payload) {
  if (payload.empty()) {
    throw FormatError("checkpoint remove: missing digest size");
  }
  const auto digest_size = static_cast<std::size_t>(payload[0]);
  if (digest_size == 0 || digest_size > hash::Digest::kMaxSize ||
      payload.size() != 1 + digest_size) {
    throw FormatError("checkpoint remove: bad digest");
  }
  return hash::Digest(payload.subspan(1, digest_size));
}

std::pair<hash::Digest, ChunkLocation> decode_entry_payload(
    ConstByteSpan payload) {
  std::size_t pos = 0;
  auto entry = deserialize_entry(payload, pos);
  if (pos != payload.size()) {
    throw FormatError("checkpoint entry: trailing bytes");
  }
  return entry;
}

}  // namespace aadedupe::index
