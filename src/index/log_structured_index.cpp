#include "index/log_structured_index.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace aadedupe::index {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'A', 'A', 'D', 'L', 'S', 'M', 'F', '1'};
constexpr char kSegmentMagic[8] = {'A', 'A', 'D', 'L', 'S', 'S', 'G', '1'};
constexpr std::size_t kSegmentHeaderSize = 16;
constexpr std::size_t kRecordSize = 40;
// WAL ops (payload byte 0).
constexpr std::uint8_t kWalInsert = 1;
constexpr std::uint8_t kWalRemove = 2;
constexpr std::uint8_t kWalUpdate = 3;
// A WAL payload is one op over one entry; anything bigger is corruption.
constexpr std::uint32_t kMaxWalPayload = 1u << 20;
// Estimated RAM per cached entry (slot + hash-map node overhead); the
// byte budget divides by this to get the slot count.
constexpr std::size_t kCacheEntryCost = 96;

std::uint32_t fnv1a32(ConstByteSpan data) noexcept {
  std::uint32_t h = 2166136261u;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint32_t>(b);
    h *= 16777619u;
  }
  return h;
}

void pread_exact(int fd, std::byte* buf, std::size_t len, std::uint64_t off) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(off + done));
    if (n < 0) throw FormatError("log index: read error");
    if (n == 0) throw FormatError("log index: unexpected EOF");
    done += static_cast<std::size_t>(n);
  }
}

void write_exact(int fd, const std::byte* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, buf + done, len - done);
    if (n < 0) throw FormatError("log index: write error");
    done += static_cast<std::size_t>(n);
  }
}

struct RawRecord {
  hash::Digest digest;
  ChunkLocation location;
  bool tombstone = false;
};

void encode_segment_record(std::byte* p, const RawRecord& rec) {
  std::memset(p, 0, kRecordSize);
  p[0] = static_cast<std::byte>(rec.tombstone ? 1 : 0);
  p[1] = static_cast<std::byte>(rec.digest.size());
  std::memcpy(p + 2, rec.digest.bytes().data(), rec.digest.size());
  store_le64(p + 22, rec.location.container_id);
  store_le32(p + 30, rec.location.offset);
  store_le32(p + 34, rec.location.length);
}

RawRecord decode_segment_record(const std::byte* p) {
  const auto flags = static_cast<std::uint8_t>(p[0]);
  const auto digest_size = static_cast<std::size_t>(p[1]);
  if (flags > 1 || digest_size == 0 || digest_size > hash::Digest::kMaxSize) {
    throw FormatError("log index segment: corrupt record");
  }
  RawRecord rec;
  rec.tombstone = (flags & 1) != 0;
  rec.digest = hash::Digest(ConstByteSpan{p + 2, digest_size});
  rec.location.container_id = load_le64(p + 22);
  rec.location.offset = load_le32(p + 30);
  rec.location.length = load_le32(p + 34);
  return rec;
}

std::string segment_file_name(std::uint64_t id) {
  return "seg-" + std::to_string(id) + ".idx";
}

}  // namespace

// Streams sorted records into a new segment file: chunked writes, fence
// pointers built on the fly, record count patched into the header at the
// end (so producers need not know it up front).
class SegmentFileWriter {
 public:
  SegmentFileWriter(const fs::path& path, std::size_t fence_interval)
      : fence_interval_(fence_interval) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      throw FormatError("log index: cannot create segment " + path.string());
    }
    std::byte header[kSegmentHeaderSize] = {};
    std::memcpy(header, kSegmentMagic, sizeof(kSegmentMagic));
    write_exact(fd_, header, kSegmentHeaderSize);
  }

  ~SegmentFileWriter() {
    if (fd_ >= 0) ::close(fd_);  // abandoned: caller unlinks
  }

  void add(const RawRecord& rec) {
    if (count_ % fence_interval_ == 0) {
      fences_.push_back({rec.digest, count_});
    }
    buffer_.resize(buffer_.size() + kRecordSize);
    encode_segment_record(buffer_.data() + buffer_.size() - kRecordSize, rec);
    ++count_;
    if (buffer_.size() >= (std::size_t{4096} * kRecordSize)) flush_buffer();
  }

  /// Patches the header, fsyncs, and releases the (kept-open) fd.
  std::pair<int, std::uint64_t> finish() {
    flush_buffer();
    std::byte count_le[8];
    store_le64(count_le, count_);
    std::size_t done = 0;
    while (done < 8) {
      const ssize_t n = ::pwrite(fd_, count_le + done, 8 - done,
                                 static_cast<off_t>(8 + done));
      if (n < 0) throw FormatError("log index: segment header write error");
      done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
      throw FormatError("log index: segment fsync failed");
    }
    return {std::exchange(fd_, -1), count_};
  }

  std::vector<LogStructuredIndex::Fence>&& take_fences() {
    return std::move(fences_);
  }

 private:
  void flush_buffer() {
    if (buffer_.empty()) return;
    write_exact(fd_, buffer_.data(), buffer_.size());
    buffer_.clear();
  }

  int fd_ = -1;
  std::size_t fence_interval_;
  std::uint64_t count_ = 0;
  ByteBuffer buffer_;
  std::vector<LogStructuredIndex::Fence> fences_;
};

namespace {

/// Sequential block reader over one sealed segment (for merges/scans).
class SegmentCursor {
 public:
  SegmentCursor(int fd, std::uint64_t record_count)
      : fd_(fd), record_count_(record_count) {}

  bool next(RawRecord& out) {
    if (idx_ >= record_count_) return false;
    if (block_pos_ >= block_records_) {
      block_records_ = static_cast<std::size_t>(
          std::min<std::uint64_t>(4096, record_count_ - idx_));
      block_.resize(block_records_ * kRecordSize);
      pread_exact(fd_, block_.data(), block_.size(),
                  kSegmentHeaderSize + idx_ * kRecordSize);
      block_pos_ = 0;
    }
    out = decode_segment_record(block_.data() + block_pos_ * kRecordSize);
    ++block_pos_;
    ++idx_;
    return true;
  }

 private:
  int fd_;
  std::uint64_t record_count_;
  std::uint64_t idx_ = 0;
  ByteBuffer block_;
  std::size_t block_pos_ = 0;
  std::size_t block_records_ = 0;
};

/// K-way merge over sorted sources; ties resolve to the highest-priority
/// (newest) source, and every tied cursor advances past the key.
class MergeCursorSet {
 public:
  void add_segment(int fd, std::uint64_t record_count) {
    cursors_.emplace_back(fd, record_count);
    heads_.emplace_back();
    alive_.push_back(cursors_.back().next(heads_.back()));
  }

  /// Overlay entries (sorted, unique) that outrank every segment.
  void set_overlay(std::vector<RawRecord> overlay) {
    overlay_ = std::move(overlay);
  }

  /// Next key in digest order, newest version. False at end.
  bool next(RawRecord& out) {
    while (true) {
      const hash::Digest* min_digest = nullptr;
      if (overlay_pos_ < overlay_.size()) {
        min_digest = &overlay_[overlay_pos_].digest;
      }
      for (std::size_t i = 0; i < cursors_.size(); ++i) {
        if (!alive_[i]) continue;
        if (min_digest == nullptr || heads_[i].digest < *min_digest) {
          min_digest = &heads_[i].digest;
        }
      }
      if (min_digest == nullptr) return false;
      const hash::Digest key = *min_digest;

      bool have = false;
      // Overlay (memtable) outranks all segments; later segments outrank
      // earlier ones, so scan newest-to-oldest and keep the first match.
      if (overlay_pos_ < overlay_.size() &&
          overlay_[overlay_pos_].digest == key) {
        out = overlay_[overlay_pos_];
        ++overlay_pos_;
        have = true;
      }
      for (std::size_t i = cursors_.size(); i-- > 0;) {
        if (!alive_[i] || !(heads_[i].digest == key)) continue;
        if (!have) {
          out = heads_[i];
          have = true;
        }
        alive_[i] = cursors_[i].next(heads_[i]);
      }
      return true;
    }
  }

 private:
  std::vector<SegmentCursor> cursors_;
  std::vector<RawRecord> heads_;
  std::vector<bool> alive_;
  std::vector<RawRecord> overlay_;
  std::size_t overlay_pos_ = 0;
};

}  // namespace

LogStructuredIndex::LogStructuredIndex(fs::path directory, Options options)
    : directory_(std::move(directory)), options_(options) {
  AAD_EXPECTS(options_.memtable_limit >= 1);
  AAD_EXPECTS(options_.fence_interval >= 1);
  AAD_EXPECTS(options_.max_segments >= 2);
  AAD_EXPECTS(options_.bloom_fp_target > 0.0 &&
              options_.bloom_fp_target < 1.0);
  AAD_EXPECTS(options_.bloom_initial_capacity >= 1);
  cache_capacity_ = options_.cache_capacity_bytes / kCacheEntryCost;

  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw FormatError("log index: cannot create directory " +
                      directory_.string());
  }
  // A stale MANIFEST.tmp is a torn checkpoint from a crashed writer;
  // the real MANIFEST (if any) is authoritative.
  fs::remove(directory_ / "MANIFEST.tmp", ec);

  load_manifest();
  std::uint64_t total_records = 0;
  for (const Segment& seg : segments_) total_records += seg.record_count;
  bloom_ = BloomFilter(
      std::max(options_.bloom_initial_capacity,
               std::max<std::uint64_t>(1, 2 * total_records)),
      options_.bloom_fp_target);
  for (Segment& seg : segments_) load_segment(seg);

  const fs::path wal_path = directory_ / "wal.log";
  wal_fd_ = ::open(wal_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (wal_fd_ < 0) {
    throw FormatError("log index: cannot open WAL " + wal_path.string());
  }
  replay_wal();
}

LogStructuredIndex::~LogStructuredIndex() {
  if (wal_fd_ >= 0) {
    ::fsync(wal_fd_);  // best effort: make the tail durable on clean exit
    ::close(wal_fd_);
  }
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

void LogStructuredIndex::load_manifest() {
  const fs::path path = directory_ / "MANIFEST";
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // fresh shard: nothing sealed yet
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    ::close(fd);
    throw FormatError("log index: cannot stat MANIFEST");
  }
  ByteBuffer raw(static_cast<std::size_t>(file_size));
  try {
    pread_exact(fd, raw.data(), raw.size(), 0);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  if (raw.size() < 8 + 8 + 8 + 4 + 4 ||
      std::memcmp(raw.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    throw FormatError("log index: bad MANIFEST magic");
  }
  const ConstByteSpan body{raw.data(), raw.size() - 4};
  if (fnv1a32(body) != load_le32(raw.data() + raw.size() - 4)) {
    throw FormatError("log index: MANIFEST checksum mismatch");
  }
  live_count_ = load_le64(raw.data() + 8);
  next_segment_id_ = load_le64(raw.data() + 16);
  const std::uint32_t count = load_le32(raw.data() + 24);
  std::size_t pos = 28;
  if (raw.size() != pos + static_cast<std::size_t>(count) * 16 + 4) {
    throw FormatError("log index: MANIFEST size mismatch");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    Segment seg;
    seg.id = load_le64(raw.data() + pos);
    seg.record_count = load_le64(raw.data() + pos + 8);
    pos += 16;
    if (seg.id >= next_segment_id_) {
      throw FormatError("log index: MANIFEST segment id out of range");
    }
    segments_.push_back(std::move(seg));
  }
}

void LogStructuredIndex::write_manifest_locked() {
  ByteBuffer out;
  append(out, ConstByteSpan{reinterpret_cast<const std::byte*>(kManifestMagic),
                            sizeof(kManifestMagic)});
  append_le64(out, live_count_);
  append_le64(out, next_segment_id_);
  append_le32(out, static_cast<std::uint32_t>(segments_.size()));
  for (const Segment& seg : segments_) {
    append_le64(out, seg.id);
    append_le64(out, seg.record_count);
  }
  append_le32(out, fnv1a32(out));

  const fs::path tmp = directory_ / "MANIFEST.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw FormatError("log index: cannot write MANIFEST.tmp");
  try {
    write_exact(fd, out.data(), out.size());
    if (::fsync(fd) != 0) throw FormatError("log index: MANIFEST fsync");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, directory_ / "MANIFEST", ec);
  if (ec) throw FormatError("log index: MANIFEST rename failed");
  // Persist the rename itself before anything depends on it (the WAL is
  // truncated right after a seal).
  const int dir_fd = ::open(directory_.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void LogStructuredIndex::load_segment(Segment& segment) {
  const fs::path path = directory_ / segment_file_name(segment.id);
  segment.fd = ::open(path.c_str(), O_RDWR);
  if (segment.fd < 0) {
    throw FormatError("log index: missing segment " + path.string());
  }
  std::byte header[kSegmentHeaderSize];
  pread_exact(segment.fd, header, kSegmentHeaderSize, 0);
  if (std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    throw FormatError("log index: bad segment magic in " + path.string());
  }
  if (load_le64(header + 8) != segment.record_count) {
    throw FormatError("log index: segment record count mismatch in " +
                      path.string());
  }
  // One sequential scan builds the fence pointers and feeds the bloom
  // filter; after this, lookups touch at most one block per segment.
  SegmentCursor cursor(segment.fd, segment.record_count);
  RawRecord rec;
  std::uint64_t idx = 0;
  while (cursor.next(rec)) {
    if (idx % options_.fence_interval == 0) {
      segment.fences.push_back({rec.digest, idx});
    }
    bloom_.add(rec.digest);
    ++idx;
  }
}

void LogStructuredIndex::replay_wal() {
  const off_t end = ::lseek(wal_fd_, 0, SEEK_END);
  if (end < 0) throw FormatError("log index: cannot stat WAL");
  const auto size = static_cast<std::uint64_t>(end);
  std::uint64_t pos = 0;
  bool torn = false;
  while (pos < size) {
    if (pos + 8 > size) {
      torn = true;
      break;
    }
    std::byte hdr[8];
    pread_exact(wal_fd_, hdr, 8, pos);
    const std::uint32_t len = load_le32(hdr);
    const std::uint32_t checksum = load_le32(hdr + 4);
    if (len == 0 || len > kMaxWalPayload || pos + 8 + len > size) {
      torn = true;
      break;
    }
    ByteBuffer payload(len);
    pread_exact(wal_fd_, payload.data(), len, pos + 8);
    if (fnv1a32(payload) != checksum) {
      torn = true;
      break;
    }
    try {
      const auto op = static_cast<std::uint8_t>(payload[0]);
      const ConstByteSpan body = ConstByteSpan(payload).subspan(1);
      if (op == kWalInsert || op == kWalUpdate) {
        std::size_t entry_pos = 0;
        const auto [digest, loc] = deserialize_entry(body, entry_pos);
        if (entry_pos != body.size()) {
          throw FormatError("log index WAL: trailing bytes in entry");
        }
        // Replay is idempotent across the seal crash window (ops already
        // sealed into a segment must not re-count).
        const auto existing = find_locked(digest);
        if (op == kWalInsert) {
          if (!existing || existing->tombstone) {
            memtable_[digest] = Entry{loc, false};
            bloom_add_locked(digest);
            ++live_count_;
          }
        } else {
          if (existing && !existing->tombstone) {
            memtable_[digest] = Entry{loc, false};
          }
        }
      } else if (op == kWalRemove) {
        if (body.empty() ||
            static_cast<std::size_t>(body[0]) == 0 ||
            static_cast<std::size_t>(body[0]) > hash::Digest::kMaxSize ||
            body.size() != 1 + static_cast<std::size_t>(body[0])) {
          throw FormatError("log index WAL: bad remove record");
        }
        const hash::Digest digest(
            body.subspan(1, static_cast<std::size_t>(body[0])));
        const auto existing = find_locked(digest);
        if (existing && !existing->tombstone) {
          memtable_[digest] = Entry{{}, true};
          --live_count_;
        }
      } else {
        throw FormatError("log index WAL: unknown op");
      }
    } catch (const FormatError&) {
      // Checksummed-but-unparseable: treat like a torn tail and recover
      // everything before it.
      torn = true;
      break;
    }
    pos += 8 + len;
  }
  wal_bytes_ = pos;
  if (torn && ::ftruncate(wal_fd_, static_cast<off_t>(pos)) != 0) {
    throw FormatError("log index: WAL truncate failed");
  }
}

std::optional<LogStructuredIndex::Entry> LogStructuredIndex::search_segment(
    Segment& segment, const hash::Digest& digest) {
  if (segment.fences.empty() || digest < segment.fences.front().first) {
    return std::nullopt;
  }
  auto it = std::upper_bound(
      segment.fences.begin(), segment.fences.end(), digest,
      [](const hash::Digest& d, const Fence& f) { return d < f.first; });
  --it;
  const std::uint64_t start = it->record_idx;
  const std::uint64_t stop = (it + 1 == segment.fences.end())
                                 ? segment.record_count
                                 : (it + 1)->record_idx;
  const auto count = static_cast<std::size_t>(stop - start);
  ByteBuffer block(count * kRecordSize);
  pread_exact(segment.fd, block.data(), block.size(),
              kSegmentHeaderSize + start * kRecordSize);
  ++stats_.disk_reads;  // one fence-bounded block read per probed segment
  ++stats_.probe_steps;
  // Binary search within the (sorted) block.
  std::size_t lo = 0;
  std::size_t hi = count;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const RawRecord rec =
        decode_segment_record(block.data() + mid * kRecordSize);
    if (rec.digest == digest) {
      return Entry{rec.location, rec.tombstone};
    }
    if (rec.digest < digest) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

std::optional<LogStructuredIndex::Entry> LogStructuredIndex::find_locked(
    const hash::Digest& digest) {
  if (const auto it = memtable_.find(digest); it != memtable_.end()) {
    return it->second;
  }
  ++stats_.filter_probes;
  if (!bloom_.maybe_contains(digest)) {
    ++stats_.filter_negatives;  // definitely absent: zero disk reads
    return std::nullopt;
  }
  for (std::size_t i = segments_.size(); i-- > 0;) {
    if (auto found = search_segment(segments_[i], digest)) return found;
  }
  ++stats_.filter_false_positives;
  return std::nullopt;
}

std::optional<ChunkLocation> LogStructuredIndex::lookup_locked(
    const hash::Digest& digest) {
  ++stats_.lookups;
  if (auto cached = cache_get_locked(digest)) {
    ++stats_.cache_hits;
    ++stats_.hits;
    return cached;
  }
  const auto entry = find_locked(digest);
  if (!entry || entry->tombstone) return std::nullopt;
  ++stats_.hits;
  cache_put_locked(digest, entry->location);
  return entry->location;
}

std::optional<ChunkLocation> LogStructuredIndex::lookup(
    const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  return lookup_locked(digest);
}

bool LogStructuredIndex::maybe_contains(const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  ++stats_.filter_probes;
  if (!bloom_.maybe_contains(digest)) {
    ++stats_.filter_negatives;
    return false;
  }
  return true;
}

void LogStructuredIndex::lookup_batch(
    std::span<const hash::Digest> digests,
    std::vector<std::optional<ChunkLocation>>& out) {
  out.clear();
  out.reserve(digests.size());
  std::lock_guard lock(mutex_);  // one lock per batch, not per chunk
  for (const hash::Digest& digest : digests) {
    out.push_back(lookup_locked(digest));
  }
}

void LogStructuredIndex::wal_append_locked(ConstByteSpan payload) {
  ByteBuffer rec;
  rec.reserve(8 + payload.size());
  append_le32(rec, static_cast<std::uint32_t>(payload.size()));
  append_le32(rec, fnv1a32(payload));
  append(rec, payload);
  write_exact(wal_fd_, rec.data(), rec.size());  // O_APPEND
  wal_bytes_ += rec.size();
  ++stats_.disk_writes;
}

void LogStructuredIndex::bloom_add_locked(const hash::Digest& digest) {
  bloom_.add(digest);
  if (bloom_.saturated()) {
    rebuild_bloom_locked(std::max<std::uint64_t>(64, bloom_.capacity() * 2));
  }
}

void LogStructuredIndex::rebuild_bloom_locked(std::uint64_t capacity) {
  bloom_ = BloomFilter(capacity, options_.bloom_fp_target);
  for (Segment& seg : segments_) {
    SegmentCursor cursor(seg.fd, seg.record_count);
    RawRecord rec;
    while (cursor.next(rec)) bloom_.add(rec.digest);
  }
  for (const auto& [digest, entry] : memtable_) bloom_.add(digest);
}

bool LogStructuredIndex::insert_locked(const hash::Digest& digest,
                                       const ChunkLocation& loc, bool journal,
                                       bool count_stats) {
  const auto existing = find_locked(digest);
  if (existing && !existing->tombstone) return false;
  ByteBuffer payload;
  payload.push_back(static_cast<std::byte>(kWalInsert));
  serialize_entry(payload, digest, loc);
  wal_append_locked(payload);
  memtable_[digest] = Entry{loc, false};
  bloom_add_locked(digest);
  ++live_count_;
  if (count_stats) ++stats_.inserts;
  if (journal) journal_.record(encode_insert_record(digest, loc));
  cache_put_locked(digest, loc);
  if (memtable_.size() >= options_.memtable_limit) seal_memtable_locked();
  return true;
}

bool LogStructuredIndex::remove_locked(const hash::Digest& digest,
                                       bool journal) {
  const auto existing = find_locked(digest);
  if (!existing || existing->tombstone) return false;
  ByteBuffer payload;
  payload.push_back(static_cast<std::byte>(kWalRemove));
  payload.push_back(static_cast<std::byte>(digest.size()));
  append(payload, digest.bytes());
  wal_append_locked(payload);
  memtable_[digest] = Entry{{}, true};
  --live_count_;
  if (journal) journal_.record(encode_remove_record(digest));
  cache_erase_locked(digest);
  if (memtable_.size() >= options_.memtable_limit) seal_memtable_locked();
  return true;
}

bool LogStructuredIndex::update_locked(const hash::Digest& digest,
                                       const ChunkLocation& loc,
                                       bool journal) {
  const auto existing = find_locked(digest);
  if (!existing || existing->tombstone) return false;
  ByteBuffer payload;
  payload.push_back(static_cast<std::byte>(kWalUpdate));
  serialize_entry(payload, digest, loc);
  wal_append_locked(payload);
  memtable_[digest] = Entry{loc, false};
  if (journal) journal_.record(encode_update_record(digest, loc));
  cache_put_locked(digest, loc);
  if (memtable_.size() >= options_.memtable_limit) seal_memtable_locked();
  return true;
}

bool LogStructuredIndex::insert(const hash::Digest& digest,
                                const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  return insert_locked(digest, location, /*journal=*/true,
                       /*count_stats=*/true);
}

bool LogStructuredIndex::remove(const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  return remove_locked(digest, /*journal=*/true);
}

bool LogStructuredIndex::update(const hash::Digest& digest,
                                const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  return update_locked(digest, location, /*journal=*/true);
}

void LogStructuredIndex::seal_memtable_locked() {
  if (memtable_.empty()) return;
  std::vector<std::pair<hash::Digest, Entry>> sorted(memtable_.begin(),
                                                     memtable_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Segment seg;
  seg.id = next_segment_id_++;
  SegmentFileWriter writer(directory_ / segment_file_name(seg.id),
                           options_.fence_interval);
  for (const auto& [digest, entry] : sorted) {
    writer.add(RawRecord{digest, entry.location, entry.tombstone});
  }
  seg.fences = writer.take_fences();
  std::tie(seg.fd, seg.record_count) = writer.finish();
  segments_.push_back(std::move(seg));
  ++stats_.disk_writes;

  // Ordering is the crash-consistency protocol: segment is durable, then
  // the manifest references it, then (and only then) the WAL entries it
  // covers are dropped. A crash between any two steps replays cleanly.
  write_manifest_locked();
  if (::ftruncate(wal_fd_, 0) != 0) {
    throw FormatError("log index: WAL truncate after seal failed");
  }
  wal_bytes_ = 0;
  memtable_.clear();

  if (segments_.size() > options_.max_segments) compact_locked();
}

void LogStructuredIndex::compact_locked() {
  MergeCursorSet merge;
  for (Segment& seg : segments_) merge.add_segment(seg.fd, seg.record_count);

  Segment merged;
  merged.id = next_segment_id_++;
  SegmentFileWriter writer(directory_ / segment_file_name(merged.id),
                           options_.fence_interval);
  RawRecord rec;
  while (merge.next(rec)) {
    // Full merge: no older data can resurrect a deleted key, so
    // tombstones drop entirely.
    if (!rec.tombstone) writer.add(rec);
  }
  merged.fences = writer.take_fences();
  std::tie(merged.fd, merged.record_count) = writer.finish();
  ++stats_.disk_writes;

  const std::uint64_t merged_count = merged.record_count;
  std::vector<Segment> old = std::exchange(segments_, {});
  segments_.push_back(std::move(merged));
  write_manifest_locked();
  for (Segment& seg : old) {
    if (seg.fd >= 0) ::close(seg.fd);
    std::error_code ec;
    fs::remove(directory_ / segment_file_name(seg.id), ec);
  }
  // Dropping tombstone records shrinks the key universe: rebuild the
  // filter at the live size so its false-positive rate recovers.
  rebuild_bloom_locked(std::max(
      options_.bloom_initial_capacity,
      std::max<std::uint64_t>(1, 2 * merged_count)));
}

std::uint64_t LogStructuredIndex::size() const {
  std::lock_guard lock(mutex_);
  return live_count_;
}

std::size_t LogStructuredIndex::segment_count() const {
  std::lock_guard lock(mutex_);
  return segments_.size();
}

IndexStats LogStructuredIndex::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void LogStructuredIndex::checkpoint(CheckpointSink& sink) {
  std::lock_guard lock(mutex_);
  // Re-base when no base exists yet or the delta outgrew a snapshot.
  if (!journal_.active() || journal_.pending() > live_count_) {
    sink.write(encode_base_record(serialize_locked()));
    journal_.mark_base();
  } else {
    journal_.drain(sink);
  }
  // A checkpoint is a durability point: everything it claims is on disk.
  if (::fsync(wal_fd_) != 0) {
    throw FormatError("log index: WAL fsync failed");
  }
}

void LogStructuredIndex::checkpoint_full(CheckpointSink& sink) const {
  std::lock_guard lock(mutex_);
  sink.write(encode_base_record(serialize_locked()));
}

void LogStructuredIndex::apply_checkpoint_record(ConstByteSpan record) {
  const DecodedRecord decoded = decode_record(record);
  std::lock_guard lock(mutex_);
  // Replayed records bypass the journal: re-emitting them at the next
  // checkpoint would duplicate history the consumer chain already holds.
  switch (decoded.op) {
    case CheckpointOp::kBase:
      deserialize_locked(decoded.payload);
      break;
    case CheckpointOp::kInsert: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      if (!insert_locked(digest, loc, false, false)) {
        update_locked(digest, loc, false);
      }
      break;
    }
    case CheckpointOp::kRemove:
      remove_locked(decode_remove_payload(decoded.payload), false);
      break;
    case CheckpointOp::kUpdate: {
      const auto [digest, loc] = decode_entry_payload(decoded.payload);
      if (!update_locked(digest, loc, false)) {
        insert_locked(digest, loc, false, false);
      }
      break;
    }
    default:
      throw FormatError(
          "checkpoint record: partition-level opcode sent to a shard");
  }
}

ByteBuffer LogStructuredIndex::serialize_locked() const {
  std::vector<RawRecord> overlay;
  overlay.reserve(memtable_.size());
  for (const auto& [digest, entry] : memtable_) {
    overlay.push_back(RawRecord{digest, entry.location, entry.tombstone});
  }
  std::sort(overlay.begin(), overlay.end(),
            [](const RawRecord& a, const RawRecord& b) {
              return a.digest < b.digest;
            });

  MergeCursorSet merge;
  for (const Segment& seg : segments_) {
    merge.add_segment(seg.fd, seg.record_count);
  }
  merge.set_overlay(std::move(overlay));

  ByteBuffer entries;
  std::uint64_t count = 0;
  RawRecord rec;
  while (merge.next(rec)) {
    if (rec.tombstone) continue;
    serialize_entry(entries, rec.digest, rec.location);
    ++count;
  }
  ByteBuffer out;
  out.reserve(8 + entries.size());
  append_le64(out, count);
  append(out, entries);
  return out;
}

ByteBuffer LogStructuredIndex::serialize() const {
  std::lock_guard lock(mutex_);
  return serialize_locked();
}

void LogStructuredIndex::reset_storage_locked() {
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
    std::error_code ec;
    fs::remove(directory_ / segment_file_name(seg.id), ec);
  }
  segments_.clear();
  if (::ftruncate(wal_fd_, 0) != 0) {
    throw FormatError("log index: WAL truncate failed");
  }
  wal_bytes_ = 0;
  memtable_.clear();
  live_count_ = 0;
  next_segment_id_ = 1;
  bloom_ = BloomFilter(options_.bloom_initial_capacity,
                       options_.bloom_fp_target);
  cache_slots_.clear();
  cache_pos_.clear();
  clock_hand_ = 0;
  write_manifest_locked();
}

void LogStructuredIndex::deserialize_locked(ConstByteSpan image) {
  if (image.size() < 8) throw FormatError("index image: missing header");
  const std::uint64_t count = load_le64(image.data());
  std::size_t pos = 8;
  std::vector<std::pair<hash::Digest, ChunkLocation>> entries;
  entries.reserve(std::min<std::uint64_t>(count, (image.size() - pos) / 17));
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back(deserialize_entry(image, pos));
  }
  if (pos != image.size()) throw FormatError("index image: trailing bytes");

  reset_storage_locked();
  for (const auto& [digest, loc] : entries) {
    if (memtable_.insert_or_assign(digest, Entry{loc, false}).second) {
      ++live_count_;
      bloom_add_locked(digest);
    }
    ByteBuffer payload;
    payload.push_back(static_cast<std::byte>(kWalInsert));
    serialize_entry(payload, digest, loc);
    wal_append_locked(payload);
    if (memtable_.size() >= options_.memtable_limit) seal_memtable_locked();
  }
  journal_.mark_base();
}

void LogStructuredIndex::deserialize(ConstByteSpan image) {
  std::lock_guard lock(mutex_);
  deserialize_locked(image);
}

void LogStructuredIndex::flush() {
  std::lock_guard lock(mutex_);
  seal_memtable_locked();
  if (::fsync(wal_fd_) != 0) {
    throw FormatError("log index: WAL fsync failed");
  }
}

// ---- Hot-set entry cache: CLOCK with frequency decay. ----
//
// HPDedup's insight (PAPERS.md): fingerprint-cache residency should follow
// estimated stream locality, not raw recency. The frequency byte is the
// locality estimate — fingerprints the backup stream re-references climb,
// one-shot probes stay at zero — and the clock hand halves it on each
// pass, so bursts age out and a plain LRU's scan-flush weakness is gone.

std::optional<ChunkLocation> LogStructuredIndex::cache_get_locked(
    const hash::Digest& digest) {
  if (cache_capacity_ == 0) return std::nullopt;
  const auto it = cache_pos_.find(digest);
  if (it == cache_pos_.end()) return std::nullopt;
  CacheSlot& slot = cache_slots_[it->second];
  if (slot.freq < 255) ++slot.freq;
  return slot.location;
}

void LogStructuredIndex::cache_put_locked(const hash::Digest& digest,
                                          const ChunkLocation& loc) {
  if (cache_capacity_ == 0) return;
  if (const auto it = cache_pos_.find(digest); it != cache_pos_.end()) {
    CacheSlot& slot = cache_slots_[it->second];
    slot.location = loc;
    if (slot.freq < 255) ++slot.freq;
    return;
  }
  if (cache_slots_.size() < cache_capacity_) {
    cache_slots_.push_back(CacheSlot{digest, loc, std::uint8_t{1}});
    cache_pos_.emplace(digest, cache_slots_.size() - 1);
    return;
  }
  // Advance the clock hand, decaying locality scores, until a cold slot
  // turns up (bounded: two full sweeps zero every score).
  for (std::size_t step = 0; step < 2 * cache_capacity_; ++step) {
    if (cache_slots_[clock_hand_].freq == 0) break;
    cache_slots_[clock_hand_].freq >>= 1;
    clock_hand_ = (clock_hand_ + 1) % cache_capacity_;
  }
  CacheSlot& victim = cache_slots_[clock_hand_];
  cache_pos_.erase(victim.digest);
  ++stats_.cache_evictions;
  victim = CacheSlot{digest, loc, std::uint8_t{1}};
  cache_pos_.emplace(digest, clock_hand_);
  clock_hand_ = (clock_hand_ + 1) % cache_capacity_;
}

void LogStructuredIndex::cache_erase_locked(const hash::Digest& digest) {
  const auto it = cache_pos_.find(digest);
  if (it == cache_pos_.end()) return;
  cache_slots_[it->second] = CacheSlot{};  // empty digest: recycled next
  cache_pos_.erase(it);
}

std::function<std::unique_ptr<ChunkIndex>(const std::string&)>
log_structured_shard_factory(fs::path base_dir,
                             LogStructuredIndex::Options options) {
  return [base_dir = std::move(base_dir),
          options](const std::string& name) -> std::unique_ptr<ChunkIndex> {
    return std::make_unique<LogStructuredIndex>(
        base_dir / ("shard-" + to_hex(as_bytes(name))), options);
  };
}

}  // namespace aadedupe::index
