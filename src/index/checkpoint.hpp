// Incremental checkpoint plumbing for the redesigned ChunkIndex API.
//
// A checkpoint is an ordered stream of self-describing RECORDS. Producers
// push records into a CheckpointSink; consumers pull them back out of a
// CheckpointSource. The indirection keeps the record codec (chunk_index.cpp)
// independent of where the stream lives: the Buffer* pair frames records
// into a single ByteBuffer for the cloud sync / AADSTAT2 paths, while tests
// can interpose truncating or counting sinks.
//
// Buffer stream framing (little-endian):
//   magic "AADCKPT1" | repeated { record_len u64 | record bytes }
//
// Record contents are owned by chunk_index.hpp (opcode + payload); this
// header only moves opaque byte ranges around.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace aadedupe::index {

/// Magic prefix of a buffered checkpoint stream. Distinguishes the new
/// incremental format from legacy serialize() images (compat loaders key
/// off this).
inline constexpr std::string_view kCheckpointMagic = "AADCKPT1";

/// Consumes checkpoint records in order. Implementations must not throw
/// from write(): a failed sink can lose the delta the producer just
/// drained, so fallible destinations buffer first (BufferCheckpointSink)
/// and fail afterwards.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void write(ConstByteSpan record) = 0;
};

/// Produces checkpoint records in order; nullopt at end of stream.
/// Returned spans stay valid until the next call.
class CheckpointSource {
 public:
  virtual ~CheckpointSource() = default;
  virtual std::optional<ConstByteSpan> next() = 0;
};

/// Frames records into one owning buffer (magic + length-prefixed records).
class BufferCheckpointSink final : public CheckpointSink {
 public:
  BufferCheckpointSink() { append(buffer_, as_bytes(kCheckpointMagic)); }

  void write(ConstByteSpan record) override {
    append_le64(buffer_, record.size());
    append(buffer_, record);
    ++records_;
  }

  [[nodiscard]] const ByteBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] ByteBuffer take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t records() const noexcept { return records_; }

 private:
  ByteBuffer buffer_;
  std::size_t records_ = 0;
};

/// True if `stream` carries the buffered-checkpoint magic (vs a legacy
/// serialize() image).
[[nodiscard]] bool is_checkpoint_stream(ConstByteSpan stream) noexcept;

/// Reads records back out of a buffer written by BufferCheckpointSink.
/// Throws FormatError on a missing magic or truncated record.
class BufferCheckpointSource final : public CheckpointSource {
 public:
  explicit BufferCheckpointSource(ConstByteSpan stream);

  std::optional<ConstByteSpan> next() override;

 private:
  ConstByteSpan stream_;
  std::size_t pos_ = 0;
};

/// Tracks the delta an index has accumulated since its last checkpoint.
//
// Lifecycle: the journal starts INACTIVE (no base emitted) and records
// nothing — a standalone index that never checkpoints pays zero memory.
// The first checkpoint() emits a full base record and activates the
// journal; from then on mutations are recorded and the next checkpoint()
// drains only the delta. deserialize()/restore() count as receiving a
// base (the consumer chain is known to share it); clear() deactivates the
// journal so the next checkpoint re-emits a base.
class CheckpointJournal {
 public:
  /// True once a base record has been emitted (or received): mutations
  /// must be recorded from now on.
  [[nodiscard]] bool active() const noexcept { return base_emitted_; }

  /// Record one encoded delta record. No-op while inactive.
  void record(ByteBuffer rec) {
    if (base_emitted_) records_.push_back(std::move(rec));
  }

  /// A base record was emitted to (or received from) the checkpoint
  /// chain; start journaling deltas against it.
  void mark_base() noexcept {
    base_emitted_ = true;
    records_.clear();
  }

  /// Forget everything (index was cleared); next checkpoint re-bases.
  void reset() noexcept {
    base_emitted_ = false;
    records_.clear();
  }

  /// Write all pending delta records to `sink` and forget them.
  void drain(CheckpointSink& sink) {
    for (const ByteBuffer& rec : records_) sink.write(rec);
    records_.clear();
  }

  [[nodiscard]] std::size_t pending() const noexcept {
    return records_.size();
  }

 private:
  std::vector<ByteBuffer> records_;
  bool base_emitted_ = false;
};

}  // namespace aadedupe::index
