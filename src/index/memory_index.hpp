// In-memory chunk index: a mutex-guarded hash map.
//
// This is the index AA-Dedupe actually runs with per application shard —
// small enough to stay resident (Observation 2 ensures each shard stays
// small), so lookups never touch disk. Mutations are journaled (once the
// first checkpoint establishes a base) so checkpoint() ships only the
// delta since the previous one.
#pragma once

#include <mutex>
#include <unordered_map>

#include "hash/digest.hpp"
#include "index/checkpoint.hpp"
#include "index/chunk_index.hpp"

namespace aadedupe::index {

class MemoryChunkIndex final : public ChunkIndex {
 public:
  MemoryChunkIndex() = default;

  std::optional<ChunkLocation> lookup(const hash::Digest& digest) override;
  void lookup_batch(std::span<const hash::Digest> digests,
                    std::vector<std::optional<ChunkLocation>>& out) override;
  bool insert(const hash::Digest& digest,
              const ChunkLocation& location) override;
  bool remove(const hash::Digest& digest) override;
  bool update(const hash::Digest& digest,
              const ChunkLocation& location) override;
  std::uint64_t size() const override;
  IndexStats stats() const override;
  void checkpoint(CheckpointSink& sink) override;
  void checkpoint_full(CheckpointSink& sink) const override;
  void apply_checkpoint_record(ConstByteSpan record) override;
  ByteBuffer serialize() const override;
  void deserialize(ConstByteSpan image) override;

 private:
  ByteBuffer serialize_locked() const;
  void deserialize_locked(ConstByteSpan image);

  mutable std::mutex mutex_;
  std::unordered_map<hash::Digest, ChunkLocation, hash::Digest::Hasher> map_;
  IndexStats stats_;
  CheckpointJournal journal_;
};

}  // namespace aadedupe::index
