#include "index/partitioned_index.hpp"

#include "index/memory_index.hpp"
#include "util/check.hpp"

namespace aadedupe::index {

namespace {

/// Wraps every record a shard writes into a partition-level kShard record
/// carrying the partition key, and forwards it to the outer sink.
class KeyFramingSink final : public CheckpointSink {
 public:
  KeyFramingSink(CheckpointSink& out, const std::string& key)
      : out_(out), key_(key) {}

  void write(ConstByteSpan record) override {
    ByteBuffer framed;
    framed.reserve(5 + key_.size() + record.size());
    framed.push_back(static_cast<std::byte>(CheckpointOp::kShard));
    append_le32(framed, static_cast<std::uint32_t>(key_.size()));
    append(framed, as_bytes(key_));
    append(framed, record);
    out_.write(framed);
  }

 private:
  CheckpointSink& out_;
  const std::string& key_;
};

/// Splits a kShard payload into (partition key, nested shard record).
std::pair<std::string, ConstByteSpan> decode_shard_payload(
    ConstByteSpan payload) {
  if (payload.size() < 4) {
    throw FormatError("checkpoint shard record: truncated key length");
  }
  const std::uint32_t key_len = load_le32(payload.data());
  if (payload.size() < 4 + static_cast<std::size_t>(key_len)) {
    throw FormatError("checkpoint shard record: truncated key");
  }
  return {to_string(payload.subspan(4, key_len)),
          payload.subspan(4 + key_len)};
}

}  // namespace

PartitionedIndex::PartitionedIndex()
    : PartitionedIndex(
          [](const std::string&) { return std::make_unique<MemoryChunkIndex>(); }) {}

PartitionedIndex::PartitionedIndex(ShardFactory factory)
    : factory_(std::move(factory)) {
  AAD_EXPECTS(factory_ != nullptr);
}

ChunkIndex& PartitionedIndex::shard_locked(const std::string& partition) {
  auto it = shards_.find(partition);
  if (it == shards_.end()) {
    it = shards_.emplace(partition, factory_(partition)).first;
  }
  return *it->second;
}

ChunkIndex& PartitionedIndex::shard(const std::string& partition) {
  std::lock_guard lock(mutex_);
  return shard_locked(partition);
}

void PartitionedIndex::clear() {
  std::lock_guard lock(mutex_);
  shards_.clear();
  reset_pending_ = true;
}

std::vector<std::string> PartitionedIndex::partitions() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;  // std::map iterates sorted
}

std::uint64_t PartitionedIndex::total_size() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, shard] : shards_) total += shard->size();
  return total;
}

IndexStats PartitionedIndex::total_stats() const {
  std::lock_guard lock(mutex_);
  IndexStats total;
  for (const auto& [key, shard] : shards_) total += shard->stats();
  return total;
}

void PartitionedIndex::checkpoint(CheckpointSink& sink) {
  std::lock_guard lock(mutex_);
  if (reset_pending_) {
    const std::byte reset = static_cast<std::byte>(CheckpointOp::kReset);
    sink.write({&reset, 1});
    reset_pending_ = false;
  }
  for (const auto& [key, shard] : shards_) {
    KeyFramingSink framed(sink, key);
    shard->checkpoint(framed);
  }
}

void PartitionedIndex::checkpoint_full(CheckpointSink& sink) const {
  std::lock_guard lock(mutex_);
  const std::byte reset = static_cast<std::byte>(CheckpointOp::kReset);
  sink.write({&reset, 1});
  for (const auto& [key, shard] : shards_) {
    KeyFramingSink framed(sink, key);
    shard->checkpoint_full(framed);
  }
}

void PartitionedIndex::restore(CheckpointSource& source) {
  // Decode every record before touching any shard, so framing errors in a
  // malformed stream cannot leave the index half-replayed.
  struct Step {
    bool reset = false;
    std::string key;
    ByteBuffer record;
  };
  std::vector<Step> steps;
  while (const auto record = source.next()) {
    const DecodedRecord decoded = decode_record(*record);
    Step step;
    if (decoded.op == CheckpointOp::kReset) {
      if (!decoded.payload.empty()) {
        throw FormatError("checkpoint reset record: unexpected payload");
      }
      step.reset = true;
    } else if (decoded.op == CheckpointOp::kShard) {
      auto [key, nested] = decode_shard_payload(decoded.payload);
      // Validate the nested record header now; the shard re-decodes the
      // payload when the step is applied.
      (void)decode_record(nested);
      step.key = std::move(key);
      step.record.assign(nested.begin(), nested.end());
    } else {
      throw FormatError(
          "checkpoint stream: shard-level record at partition level");
    }
    steps.push_back(std::move(step));
  }

  std::lock_guard lock(mutex_);
  for (const Step& step : steps) {
    if (step.reset) {
      shards_.clear();
      continue;
    }
    shard_locked(step.key).apply_checkpoint_record(step.record);
  }
  reset_pending_ = false;
}

ByteBuffer PartitionedIndex::serialize() const {
  std::lock_guard lock(mutex_);
  ByteBuffer out;
  append_le32(out, static_cast<std::uint32_t>(shards_.size()));
  for (const auto& [key, shard] : shards_) {
    append_le32(out, static_cast<std::uint32_t>(key.size()));
    append(out, as_bytes(key));
    const ByteBuffer image = shard->serialize();
    append_le64(out, image.size());
    append(out, image);
  }
  return out;
}

void PartitionedIndex::deserialize(ConstByteSpan image) {
  if (image.size() < 4) throw FormatError("partitioned index: no header");
  const std::uint32_t count = load_le32(image.data());
  std::size_t pos = 4;
  std::map<std::string, std::unique_ptr<ChunkIndex>> fresh;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > image.size()) {
      throw FormatError("partitioned index: truncated key length");
    }
    const std::uint32_t key_len = load_le32(image.data() + pos);
    pos += 4;
    if (pos + key_len + 8 > image.size()) {
      throw FormatError("partitioned index: truncated key");
    }
    std::string key = to_string(image.subspan(pos, key_len));
    pos += key_len;
    const std::uint64_t image_len = load_le64(image.data() + pos);
    pos += 8;
    if (pos + image_len > image.size()) {
      throw FormatError("partitioned index: truncated shard image");
    }
    auto shard = factory_(key);
    shard->deserialize(image.subspan(pos, image_len));
    pos += image_len;
    fresh.emplace(std::move(key), std::move(shard));
  }
  if (pos != image.size()) {
    throw FormatError("partitioned index: trailing bytes");
  }
  std::lock_guard lock(mutex_);
  shards_ = std::move(fresh);
  // Whoever wrote this image holds the same state: deltas from here on.
  reset_pending_ = false;
}

}  // namespace aadedupe::index
