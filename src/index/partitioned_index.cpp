#include "index/partitioned_index.hpp"

#include "index/memory_index.hpp"
#include "util/check.hpp"

namespace aadedupe::index {

PartitionedIndex::PartitionedIndex()
    : PartitionedIndex(
          [](const std::string&) { return std::make_unique<MemoryChunkIndex>(); }) {}

PartitionedIndex::PartitionedIndex(ShardFactory factory)
    : factory_(std::move(factory)) {
  AAD_EXPECTS(factory_ != nullptr);
}

ChunkIndex& PartitionedIndex::shard(const std::string& partition) {
  std::lock_guard lock(mutex_);
  auto it = shards_.find(partition);
  if (it == shards_.end()) {
    it = shards_.emplace(partition, factory_(partition)).first;
  }
  return *it->second;
}

void PartitionedIndex::clear() {
  std::lock_guard lock(mutex_);
  shards_.clear();
}

std::vector<std::string> PartitionedIndex::partitions() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, shard] : shards_) keys.push_back(key);
  return keys;  // std::map iterates sorted
}

std::uint64_t PartitionedIndex::total_size() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, shard] : shards_) total += shard->size();
  return total;
}

IndexStats PartitionedIndex::total_stats() const {
  std::lock_guard lock(mutex_);
  IndexStats total;
  for (const auto& [key, shard] : shards_) total += shard->stats();
  return total;
}

ByteBuffer PartitionedIndex::serialize() const {
  std::lock_guard lock(mutex_);
  ByteBuffer out;
  append_le32(out, static_cast<std::uint32_t>(shards_.size()));
  for (const auto& [key, shard] : shards_) {
    append_le32(out, static_cast<std::uint32_t>(key.size()));
    append(out, as_bytes(key));
    const ByteBuffer image = shard->serialize();
    append_le64(out, image.size());
    append(out, image);
  }
  return out;
}

void PartitionedIndex::deserialize(ConstByteSpan image) {
  if (image.size() < 4) throw FormatError("partitioned index: no header");
  const std::uint32_t count = load_le32(image.data());
  std::size_t pos = 4;
  std::map<std::string, std::unique_ptr<ChunkIndex>> fresh;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > image.size()) {
      throw FormatError("partitioned index: truncated key length");
    }
    const std::uint32_t key_len = load_le32(image.data() + pos);
    pos += 4;
    if (pos + key_len + 8 > image.size()) {
      throw FormatError("partitioned index: truncated key");
    }
    std::string key = to_string(image.subspan(pos, key_len));
    pos += key_len;
    const std::uint64_t image_len = load_le64(image.data() + pos);
    pos += 8;
    if (pos + image_len > image.size()) {
      throw FormatError("partitioned index: truncated shard image");
    }
    auto shard = factory_(key);
    shard->deserialize(image.subspan(pos, image_len));
    pos += image_len;
    fresh.emplace(std::move(key), std::move(shard));
  }
  if (pos != image.size()) {
    throw FormatError("partitioned index: trailing bytes");
  }
  std::lock_guard lock(mutex_);
  shards_ = std::move(fresh);
}

}  // namespace aadedupe::index
