// SimulatedDiskIndex — a ChunkIndex decorator that models the on-disk
// fingerprint-index lookup bottleneck of monolithic-index deduplication
// (paper Sections II.C / III.E, citing DDFS and Sparse Indexing).
//
// At the paper's scale a full chunk index (hundreds of GB of data ->
// millions of fingerprints) cannot stay RAM-resident, so misses of the RAM
// cache cost a disk seek. This reproduction's datasets are ~3 orders of
// magnitude smaller, so a *real* on-disk index would trivially fit any
// cache and the bottleneck would vanish — a pure scale artifact. The
// decorator therefore keeps the data in memory but charges *simulated*
// time for cache-missing lookups and for index writes, with the cache
// budget and seek costs scaled in proportion to the dataset (see
// EXPERIMENTS.md for the calibration note). AA-Dedupe's per-application
// indices are deliberately NOT decorated: keeping each shard small enough
// to stay RAM-resident is exactly the paper's design point.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hash/digest.hpp"
#include "index/checkpoint.hpp"
#include "index/chunk_index.hpp"

namespace aadedupe::index {

struct SimDiskOptions {
  /// Fingerprints that fit the simulated RAM cache (scaled RAM budget).
  std::size_t cache_entries = 2048;
  /// Simulated time per lookup that misses the cache (scaled seek).
  double miss_seek_seconds = 0.00012;
  /// Simulated time per index insert (buffered write, amortized).
  double insert_seconds = 0.00006;
};

/// Receives the simulated seconds charged by the decorator; wired to the
/// owning scheme's session accounting.
using SimTimeSink = std::function<void(double seconds)>;

class SimulatedDiskIndex final : public ChunkIndex {
 public:
  SimulatedDiskIndex(std::unique_ptr<ChunkIndex> inner, SimDiskOptions options,
                     SimTimeSink sink);

  std::optional<ChunkLocation> lookup(const hash::Digest& digest) override;
  bool maybe_contains(const hash::Digest& digest) override;
  bool insert(const hash::Digest& digest,
              const ChunkLocation& location) override;
  bool remove(const hash::Digest& digest) override;
  bool update(const hash::Digest& digest,
              const ChunkLocation& location) override;
  std::uint64_t size() const override;
  IndexStats stats() const override;
  void checkpoint(CheckpointSink& sink) override;
  void checkpoint_full(CheckpointSink& sink) const override;
  void apply_checkpoint_record(ConstByteSpan record) override;
  ByteBuffer serialize() const override;
  void deserialize(ConstByteSpan image) override;

  /// Simulated cache hits/misses so far (for the ablation bench).
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;

 private:
  bool cache_touch_locked(const hash::Digest& digest);  // true = hit
  void cache_add_locked(const hash::Digest& digest);

  std::unique_ptr<ChunkIndex> inner_;
  SimDiskOptions options_;
  SimTimeSink sink_;

  mutable std::mutex mutex_;
  // LRU cache of recently referenced fingerprints.
  std::list<hash::Digest> lru_;
  std::unordered_map<hash::Digest, std::list<hash::Digest>::iterator,
                     hash::Digest::Hasher>
      cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
};

}  // namespace aadedupe::index
