#include "index/persistent_index.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/check.hpp"

namespace aadedupe::index {

namespace {
constexpr char kMagic[8] = {'A', 'A', 'D', 'I', 'D', 'X', '0', '1'};

void pread_exact(int fd, std::byte* buf, std::size_t len, std::uint64_t off) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(off + done));
    if (n < 0) throw FormatError("index file: read error");
    if (n == 0) throw FormatError("index file: unexpected EOF");
    done += static_cast<std::size_t>(n);
  }
}

void pwrite_exact(int fd, const std::byte* buf, std::size_t len,
                  std::uint64_t off) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, buf + done, len - done,
                               static_cast<off_t>(off + done));
    if (n < 0) throw FormatError("index file: write error");
    done += static_cast<std::size_t>(n);
  }
}
}  // namespace

PersistentChunkIndex::PersistentChunkIndex(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  AAD_EXPECTS(options_.initial_slots >= 8);
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd_ >= 0) {
    load_header();
  } else {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
    if (fd_ < 0) throw FormatError("index file: cannot open " + path_);
    create_file(options_.initial_slots);
  }
}

PersistentChunkIndex::~PersistentChunkIndex() {
  if (fd_ >= 0) ::close(fd_);
}

void PersistentChunkIndex::create_file(std::uint64_t slots) {
  slot_count_ = slots;
  entry_count_ = 0;
  tombstone_count_ = 0;
  std::byte header[kHeaderSize] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  store_le64(header + 8, slot_count_);
  store_le64(header + 16, entry_count_);
  store_le64(header + 24, tombstone_count_);
  // Truncate to zero first: a grow/rebuild must not leave stale slot data
  // visible in the (sparse-zero) re-extended region.
  if (::ftruncate(fd_, 0) != 0 ||
      ::ftruncate(fd_, static_cast<off_t>(kHeaderSize +
                                          slot_count_ * kSlotSize)) != 0) {
    throw FormatError("index file: ftruncate failed");
  }
  pwrite_exact(fd_, header, kHeaderSize, 0);
}

void PersistentChunkIndex::load_header() {
  std::byte header[kHeaderSize];
  pread_exact(fd_, header, kHeaderSize, 0);
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    throw FormatError("index file: bad magic in " + path_);
  }
  slot_count_ = load_le64(header + 8);
  entry_count_ = load_le64(header + 16);
  tombstone_count_ = load_le64(header + 24);
  if (slot_count_ < 8 || entry_count_ + tombstone_count_ > slot_count_) {
    throw FormatError("index file: corrupt header in " + path_);
  }
}

PersistentChunkIndex::Slot PersistentChunkIndex::read_slot(
    std::uint64_t slot_index) {
  std::byte raw[kSlotSize];
  pread_exact(fd_, raw, kSlotSize, kHeaderSize + slot_index * kSlotSize);
  ++stats_.disk_reads;
  if (options_.simulated_read_latency_us > 0) {
    // Charge the simulated transfer clock instead of sleeping: modeled
    // seek time must not cost real CPU or wall time in benches.
    const double seconds =
        static_cast<double>(options_.simulated_read_latency_us) / 1e6;
    if (options_.latency_sink) {
      options_.latency_sink(seconds);
    } else {
      simulated_read_seconds_ += seconds;
    }
  }
  Slot slot;
  const auto digest_size = static_cast<std::size_t>(raw[0]);
  if (digest_size == kTombstoneMarker) {
    slot.tombstone = true;
  } else if (digest_size > 0) {
    if (digest_size > hash::Digest::kMaxSize) {
      throw FormatError("index file: corrupt slot digest size");
    }
    slot.digest = hash::Digest(ConstByteSpan{raw + 1, digest_size});
    slot.location.container_id = load_le64(raw + 21);
    slot.location.offset = load_le32(raw + 29);
    slot.location.length = load_le32(raw + 33);
  }
  return slot;
}

void PersistentChunkIndex::write_slot(std::uint64_t slot_index,
                                      const Slot& slot) {
  std::byte raw[kSlotSize] = {};
  raw[0] = slot.tombstone ? static_cast<std::byte>(kTombstoneMarker)
                          : static_cast<std::byte>(slot.digest.size());
  std::memcpy(raw + 1, slot.digest.bytes().data(), slot.digest.size());
  store_le64(raw + 21, slot.location.container_id);
  store_le32(raw + 29, slot.location.offset);
  store_le32(raw + 33, slot.location.length);
  pwrite_exact(fd_, raw, kSlotSize, kHeaderSize + slot_index * kSlotSize);
  ++stats_.disk_writes;
}

void PersistentChunkIndex::cache_put(const hash::Digest& digest,
                                     const ChunkLocation& loc) {
  if (options_.cache_entries == 0) return;
  if (cache_.size() >= options_.cache_entries &&
      !cache_order_.empty()) {
    // FIFO eviction.
    const hash::Digest& victim = cache_order_[cache_evict_pos_];
    cache_.erase(victim);
    cache_order_[cache_evict_pos_] = digest;
    cache_evict_pos_ = (cache_evict_pos_ + 1) % cache_order_.size();
  } else {
    cache_order_.push_back(digest);
  }
  cache_[digest] = loc;
}

std::optional<ChunkLocation> PersistentChunkIndex::lookup_locked(
    const hash::Digest& digest) {
  if (const auto it = cache_.find(digest); it != cache_.end()) {
    return it->second;
  }
  const std::uint64_t home = digest.prefix64() % slot_count_;
  for (std::uint64_t probe = 0; probe < slot_count_; ++probe) {
    const std::uint64_t slot_index = (home + probe) % slot_count_;
    Slot slot = read_slot(slot_index);
    ++stats_.probe_steps;
    if (slot.tombstone) continue;  // deleted entry: probe chain continues
    if (slot.digest.empty()) return std::nullopt;
    if (slot.digest == digest) {
      cache_put(digest, slot.location);
      return slot.location;
    }
  }
  return std::nullopt;
}

std::optional<ChunkLocation> PersistentChunkIndex::lookup(
    const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  ++stats_.lookups;
  auto result = lookup_locked(digest);
  if (result) ++stats_.hits;
  return result;
}

void PersistentChunkIndex::lookup_batch(
    std::span<const hash::Digest> digests,
    std::vector<std::optional<ChunkLocation>>& out) {
  out.clear();
  out.reserve(digests.size());
  std::lock_guard lock(mutex_);  // one lock per batch, not per chunk
  for (const hash::Digest& digest : digests) {
    ++stats_.lookups;
    auto result = lookup_locked(digest);
    if (result) ++stats_.hits;
    out.push_back(std::move(result));
  }
}

bool PersistentChunkIndex::insert_locked(const hash::Digest& digest,
                                         const ChunkLocation& loc,
                                         bool count_stats) {
  const std::uint64_t home = digest.prefix64() % slot_count_;
  std::uint64_t first_tombstone = slot_count_;  // sentinel: none seen
  for (std::uint64_t probe = 0; probe < slot_count_; ++probe) {
    const std::uint64_t slot_index = (home + probe) % slot_count_;
    Slot slot = read_slot(slot_index);
    if (slot.tombstone) {
      if (first_tombstone == slot_count_) first_tombstone = slot_index;
      continue;
    }
    if (slot.digest == digest) return false;
    if (slot.digest.empty()) {
      const bool reuse = first_tombstone != slot_count_;
      write_slot(reuse ? first_tombstone : slot_index, Slot{digest, loc});
      ++entry_count_;
      if (reuse) --tombstone_count_;
      if (count_stats) ++stats_.inserts;
      persist_counters();
      cache_put(digest, loc);
      return true;
    }
  }
  throw InvariantError("index file: table full before growth triggered");
}

bool PersistentChunkIndex::remove(const hash::Digest& digest) {
  std::lock_guard lock(mutex_);
  const std::uint64_t home = digest.prefix64() % slot_count_;
  for (std::uint64_t probe = 0; probe < slot_count_; ++probe) {
    const std::uint64_t slot_index = (home + probe) % slot_count_;
    Slot slot = read_slot(slot_index);
    if (slot.tombstone) continue;
    if (slot.digest.empty()) return false;
    if (slot.digest == digest) {
      Slot dead;
      dead.tombstone = true;
      write_slot(slot_index, dead);
      --entry_count_;
      ++tombstone_count_;
      persist_counters();
      cache_.erase(digest);
      return true;
    }
  }
  return false;
}

bool PersistentChunkIndex::update(const hash::Digest& digest,
                                  const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  const std::uint64_t home = digest.prefix64() % slot_count_;
  for (std::uint64_t probe = 0; probe < slot_count_; ++probe) {
    const std::uint64_t slot_index = (home + probe) % slot_count_;
    Slot slot = read_slot(slot_index);
    if (slot.tombstone) continue;
    if (slot.digest.empty()) return false;
    if (slot.digest == digest) {
      write_slot(slot_index, Slot{digest, location});
      if (cache_.contains(digest)) cache_[digest] = location;
      return true;
    }
  }
  return false;
}

void PersistentChunkIndex::persist_counters() {
  std::byte counters[16];
  store_le64(counters, entry_count_);
  store_le64(counters + 8, tombstone_count_);
  pwrite_exact(fd_, counters, 16, 16);
}

bool PersistentChunkIndex::insert(const hash::Digest& digest,
                                  const ChunkLocation& location) {
  std::lock_guard lock(mutex_);
  if ((entry_count_ + tombstone_count_) * 10 >= slot_count_ * 7) {
    grow_locked();
  }
  return insert_locked(digest, location, /*count_stats=*/true);
}

void PersistentChunkIndex::grow_locked() {
  // Read every occupied slot, rebuild the file with twice the slots.
  std::vector<Slot> live;
  live.reserve(entry_count_);
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    Slot slot = read_slot(i);
    if (!slot.tombstone && !slot.digest.empty()) {
      live.push_back(std::move(slot));
    }
  }
  create_file(slot_count_ * 2);
  for (const Slot& slot : live) {
    insert_locked(slot.digest, slot.location, /*count_stats=*/false);
  }
}

std::uint64_t PersistentChunkIndex::size() const {
  std::lock_guard lock(mutex_);
  return entry_count_;
}

std::uint64_t PersistentChunkIndex::slot_count() const {
  std::lock_guard lock(mutex_);
  return slot_count_;
}

IndexStats PersistentChunkIndex::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

double PersistentChunkIndex::simulated_read_seconds() const {
  std::lock_guard lock(mutex_);
  return simulated_read_seconds_;
}

ByteBuffer PersistentChunkIndex::serialize() const {
  std::lock_guard lock(mutex_);
  ByteBuffer out;
  append_le64(out, entry_count_);
  // const_cast is safe: read_slot only mutates stats counters.
  auto* self = const_cast<PersistentChunkIndex*>(this);
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    Slot slot = self->read_slot(i);
    if (!slot.tombstone && !slot.digest.empty()) {
      serialize_entry(out, slot.digest, slot.location);
    }
  }
  return out;
}

void PersistentChunkIndex::deserialize(ConstByteSpan image) {
  if (image.size() < 8) throw FormatError("index image: missing header");
  const std::uint64_t count = load_le64(image.data());
  std::size_t pos = 8;
  std::vector<std::pair<hash::Digest, ChunkLocation>> entries;
  // Bound by what could fit (>= 17 bytes/entry): a corrupted count must
  // not drive a huge allocation.
  entries.reserve(std::min<std::uint64_t>(count, (image.size() - pos) / 17));
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back(deserialize_entry(image, pos));
  }
  if (pos != image.size()) throw FormatError("index image: trailing bytes");

  std::lock_guard lock(mutex_);
  cache_.clear();
  cache_order_.clear();
  cache_evict_pos_ = 0;
  std::uint64_t slots = options_.initial_slots;
  while (count * 10 >= slots * 7) slots *= 2;
  create_file(slots);
  for (const auto& [digest, loc] : entries) {
    insert_locked(digest, loc, /*count_stats=*/false);
  }
}

void PersistentChunkIndex::flush() {
  std::lock_guard lock(mutex_);
  if (::fsync(fd_) != 0) throw FormatError("index file: fsync failed");
}

}  // namespace aadedupe::index
