// Application-aware partitioned index (the paper's novel data structure,
// Section III.E / Fig. 6).
//
// Instead of one full, unclassified fingerprint index, AA-Dedupe maintains
// one small independent index per application/file type (".doc index",
// ".mp3 index", ...). An incoming chunk is routed to the index matching its
// file type. Benefits realized here:
//   * each shard stays small enough to remain RAM-resident, dodging the
//     on-disk lookup bottleneck of a monolithic index;
//   * shards synchronize independently, so lookups for different
//     applications proceed concurrently (exploited by the parallel
//     per-application dedup pipeline and the ablation benches).
//
// Checkpoint streams wrap each shard's records with the partition key
// (CheckpointOp::kShard) and mark wholesale drops with kReset, so the
// periodic cloud sync ships only per-shard deltas instead of a full image.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/checkpoint.hpp"
#include "index/chunk_index.hpp"

namespace aadedupe::index {

class PartitionedIndex {
 public:
  /// Builds the per-partition index (e.g. a MemoryChunkIndex, or a
  /// LogStructuredIndex for on-disk shards).
  using ShardFactory =
      std::function<std::unique_ptr<ChunkIndex>(const std::string& name)>;

  /// Default factory: in-memory shards.
  PartitionedIndex();
  explicit PartitionedIndex(ShardFactory factory);

  /// Get (creating on first use) the index shard for a partition key —
  /// in AA-Dedupe the key is the application/file-type tag.
  ChunkIndex& shard(const std::string& partition);

  /// Partition keys seen so far, sorted.
  std::vector<std::string> partitions() const;

  /// Drop every shard (used when rebuilding the index, e.g. after
  /// garbage collection). The next checkpoint() re-bases with a kReset.
  void clear();

  std::uint64_t total_size() const;
  IndexStats total_stats() const;

  /// Incremental checkpoint: the first call (or the first after clear())
  /// emits kReset plus a full base per shard; later calls emit only each
  /// shard's delta since the previous checkpoint.
  void checkpoint(CheckpointSink& sink);

  /// Full self-contained snapshot (kReset + every shard's base record)
  /// that leaves the incremental chain undisturbed. Used by export_state.
  void checkpoint_full(CheckpointSink& sink) const;

  /// Replay a checkpoint stream: kReset drops every shard, kShard records
  /// route to the named shard (created on demand). Records are validated
  /// up front so malformed streams throw FormatError before any state
  /// changes.
  void restore(CheckpointSource& source);

  /// DEPRECATED image pair, superseded by checkpoint()/restore(); kept as
  /// the compat loader for pre-checkpoint cloud objects and state files.
  ByteBuffer serialize() const;

  /// Restore all shards from a serialized image (replaces current state).
  /// Throws FormatError on malformed input.
  void deserialize(ConstByteSpan image);

 private:
  ChunkIndex& shard_locked(const std::string& partition);

  ShardFactory factory_;
  mutable std::mutex mutex_;  // guards the map, not the shards themselves
  std::map<std::string, std::unique_ptr<ChunkIndex>> shards_;
  // True when the consumer of the incremental chain must drop its state
  // before applying what the next checkpoint() writes (initially, and
  // after clear()). deserialize()/restore() leave producer and consumer
  // in sync, so they clear it.
  bool reset_pending_ = true;
};

}  // namespace aadedupe::index
