// Application-aware partitioned index (the paper's novel data structure,
// Section III.E / Fig. 6).
//
// Instead of one full, unclassified fingerprint index, AA-Dedupe maintains
// one small independent index per application/file type (".doc index",
// ".mp3 index", ...). An incoming chunk is routed to the index matching its
// file type. Benefits realized here:
//   * each shard stays small enough to remain RAM-resident, dodging the
//     on-disk lookup bottleneck of a monolithic index;
//   * shards synchronize independently, so lookups for different
//     applications proceed concurrently (exploited by the parallel
//     per-application dedup pipeline and the ablation benches).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/chunk_index.hpp"

namespace aadedupe::index {

class PartitionedIndex {
 public:
  /// Builds the per-partition index (e.g. a MemoryChunkIndex, or a
  /// PersistentChunkIndex under tests that exercise durability).
  using ShardFactory =
      std::function<std::unique_ptr<ChunkIndex>(const std::string& name)>;

  /// Default factory: in-memory shards.
  PartitionedIndex();
  explicit PartitionedIndex(ShardFactory factory);

  /// Get (creating on first use) the index shard for a partition key —
  /// in AA-Dedupe the key is the application/file-type tag.
  ChunkIndex& shard(const std::string& partition);

  /// Partition keys seen so far, sorted.
  std::vector<std::string> partitions() const;

  /// Drop every shard (used when rebuilding the index, e.g. after
  /// garbage collection).
  void clear();

  std::uint64_t total_size() const;
  IndexStats total_stats() const;

  /// Serialize every shard for the periodic cloud backup of index state.
  ByteBuffer serialize() const;

  /// Restore all shards from a serialized image (replaces current state).
  /// Throws FormatError on malformed input.
  void deserialize(ConstByteSpan image);

 private:
  ShardFactory factory_;
  mutable std::mutex mutex_;  // guards the map, not the shards themselves
  std::map<std::string, std::unique_ptr<ChunkIndex>> shards_;
};

}  // namespace aadedupe::index
