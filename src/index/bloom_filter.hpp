// Bloom filter over chunk fingerprints, sized for a target false-positive
// rate. Sits in front of each log-structured shard so negative lookups —
// the common case for new data — are answered from RAM without touching
// any segment file (paper Section II.C's disk-lookup bottleneck).
//
// The k probe positions use Kirsch-Mitzenmacher double hashing derived
// entirely from the digest bytes: a fingerprint is already a uniform hash,
// so no extra randomness is needed (and none is allowed — fingerprints
// must probe identically across runs).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "hash/digest.hpp"
#include "util/check.hpp"

namespace aadedupe::index {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the bit array and probe count for `expected_entries` keys at
  /// roughly `fp_target` false-positive probability.
  BloomFilter(std::uint64_t expected_entries, double fp_target) {
    AAD_EXPECTS(expected_entries >= 1);
    AAD_EXPECTS(fp_target > 0.0 && fp_target < 1.0);
    const double n = static_cast<double>(expected_entries);
    const double ln2 = 0.6931471805599453;
    const double bits = std::ceil(-n * std::log(fp_target) / (ln2 * ln2));
    bit_count_ = std::max<std::uint64_t>(64, static_cast<std::uint64_t>(bits));
    words_.assign((bit_count_ + 63) / 64, 0);
    const double k = std::round(static_cast<double>(bit_count_) / n * ln2);
    hash_count_ = static_cast<std::uint32_t>(
        std::min(16.0, std::max(1.0, k)));
    capacity_ = expected_entries;
  }

  void add(const hash::Digest& digest) noexcept {
    const auto [h1, h2] = seeds(digest);
    for (std::uint32_t i = 0; i < hash_count_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % bit_count_;
      words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    }
    ++added_;
  }

  [[nodiscard]] bool maybe_contains(const hash::Digest& digest) const noexcept {
    if (bit_count_ == 0) return false;  // empty filter: nothing was added
    const auto [h1, h2] = seeds(digest);
    for (std::uint32_t i = 0; i < hash_count_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % bit_count_;
      if ((words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
        return false;
      }
    }
    return true;
  }

  /// Keys the filter was sized for; adding more than this degrades the
  /// false-positive rate, so the owner rebuilds at saturation.
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t added() const noexcept { return added_; }
  [[nodiscard]] bool saturated() const noexcept { return added_ > capacity_; }
  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] std::uint32_t hash_count() const noexcept {
    return hash_count_;
  }

 private:
  /// Two independent 64-bit seeds from the digest bytes. h1 is the
  /// fingerprint prefix; h2 folds ALL bytes through FNV-1a (covers short
  /// digests whose prefix is the whole value) and is forced odd so the
  /// double-hash stride cycles the full bit array.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> seeds(
      const hash::Digest& digest) const noexcept {
    const std::uint64_t h1 = digest.prefix64();
    std::uint64_t h2 = 14695981039346656037ull;  // FNV offset basis
    for (const std::byte b : digest.bytes()) {
      h2 ^= static_cast<std::uint64_t>(b);
      h2 *= 1099511628211ull;  // FNV prime
    }
    return {h1, h2 | 1};
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t bit_count_ = 0;
  std::uint32_t hash_count_ = 1;
  std::uint64_t capacity_ = 0;
  std::uint64_t added_ = 0;
};

}  // namespace aadedupe::index
