// The application-aware deduplication policy (paper Sections III.C/III.D):
// which chunking engine and which fingerprint function each application
// category gets, and how files are routed to index partitions.
//
//   compressed files          -> WFC  + 12-byte extended Rabin
//   static uncompressed files -> SC   + 16-byte MD5
//   dynamic uncompressed      -> CDC  + 20-byte SHA-1
//
// The partition key of the application-aware index is the file extension,
// matching Fig. 6's ".doc index / .mp3 index / ..." structure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "chunk/cdc_chunker.hpp"
#include "chunk/chunker.hpp"
#include "chunk/fastcdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "chunk/whole_file_chunker.hpp"
#include "dataset/file_kind.hpp"
#include "hash/batch_hasher.hpp"
#include "hash/digest.hpp"
#include "hash/hash_kind.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace aadedupe::core {

/// The per-category chunker+hash assignment.
struct CategoryPolicy {
  const chunk::Chunker* chunker = nullptr;
  hash::HashKind hash_kind = hash::HashKind::kSha1;
};

/// Tunables for the policy table. The defaults match the paper's setup with
/// one deliberate upgrade: the dynamic category runs the (post-paper)
/// FastCDC engine, which produces the same expected/min/max chunk-size
/// distribution as the paper's Rabin CDC at ~4x the scan throughput. The
/// kRabinCdc knob keeps the paper-exact engine available for ablations.
struct PolicyConfig {
  /// Engine for dynamic uncompressed files.
  enum class DynamicEngine : std::uint8_t { kRabinCdc, kFastCdc };
  DynamicEngine dynamic_engine = DynamicEngine::kFastCdc;
  /// Fixed chunk size for the static category.
  std::size_t static_chunk_size = chunk::StaticChunker::kDefaultChunkSize;
  /// CDC parameters (expected/min/max) for the dynamic category.
  chunk::CdcParams cdc;
};

/// Immutable policy table; owns one chunker instance per engine. Thread-
/// safe after construction (chunkers are stateless per call).
class DedupPolicy {
 public:
  DedupPolicy() : DedupPolicy(PolicyConfig{}) {}

  explicit DedupPolicy(const PolicyConfig& config)
      : wfc_(std::make_unique<chunk::WholeFileChunker>()),
        sc_(std::make_unique<chunk::StaticChunker>(config.static_chunk_size)) {
    if (config.dynamic_engine == PolicyConfig::DynamicEngine::kFastCdc) {
      chunk::FastCdcParams params;
      params.expected_size = config.cdc.expected_size;
      params.min_size = config.cdc.min_size;
      params.max_size = config.cdc.max_size;
      dynamic_ = std::make_unique<chunk::FastCdcChunker>(params);
    } else {
      dynamic_ = std::make_unique<chunk::CdcChunker>(config.cdc);
    }
  }

  CategoryPolicy for_category(dataset::AppCategory category) const {
    switch (category) {
      case dataset::AppCategory::kCompressed:
        return {wfc_.get(), hash::HashKind::kRabin96};
      case dataset::AppCategory::kStaticUncompressed:
        return {sc_.get(), hash::HashKind::kMd5};
      case dataset::AppCategory::kDynamicUncompressed:
        return {dynamic_.get(), hash::HashKind::kSha1};
    }
    return {dynamic_.get(), hash::HashKind::kSha1};  // unreachable
  }

  CategoryPolicy for_kind(dataset::FileKind kind) const {
    return for_category(dataset::category_of(kind));
  }

  /// Index-partition key for a file kind (Fig. 6: one small index per
  /// application/file type).
  static std::string partition_key(dataset::FileKind kind) {
    return std::string(dataset::extension(kind));
  }

 private:
  std::unique_ptr<chunk::WholeFileChunker> wfc_;
  std::unique_ptr<chunk::StaticChunker> sc_;
  std::unique_ptr<chunk::Chunker> dynamic_;  // Rabin CDC or FastCDC
};

/// Output of the pure chunk+fingerprint front end for one file:
/// digests[i] fingerprints chunks[i].
struct FileChunkPlan {
  std::vector<chunk::ChunkRef> chunks;
  std::vector<hash::Digest> digests;
};

/// Fingerprint every chunk of one file as a single batch through the
/// runtime-dispatched BatchHasher (SHA-NI / AVX2 / SSE2 multi-buffer with a
/// scalar fallback — see hash/batch_hasher.hpp). All rungs are bit-exact
/// with compute_digest(), so dedup metrics are identical to the historical
/// one-digest-at-a-time loop on every machine.
inline void fingerprint_chunks(const CategoryPolicy& policy,
                               ConstByteSpan content, FileChunkPlan& plan) {
  std::vector<ConstByteSpan> views;
  views.reserve(plan.chunks.size());
  for (const chunk::ChunkRef& ref : plan.chunks) {
    views.push_back(content.subspan(ref.offset, ref.length));
  }
  hash::default_batch_hasher().hash_batch(policy.hash_kind, views,
                                          plan.digests);
}

/// Stateless front end of the deduplication pipeline: split `content` with
/// the category's engine and fingerprint every chunk with the category's
/// hash (Rabin-96 / MD5 / SHA-1 per the policy table). Touches no shared
/// state, so any number of files may be processed concurrently — this is
/// what the file-granularity parallel session phase fans out, each worker
/// handing its file's chunks to the batch hasher in one call.
inline FileChunkPlan chunk_and_fingerprint(const CategoryPolicy& policy,
                                           ConstByteSpan content) {
  FileChunkPlan plan;
  plan.chunks = policy.chunker->split(content);
  fingerprint_chunks(policy, content, plan);
  return plan;
}

/// Instrumented variant: attributes the split to a kChunk span and the
/// hashing batch to a kFingerprint span labelled "<category>@<engine>"
/// (e.g. "doc@shani"), so run reports show which dispatch rung actually
/// executed. With a null telemetry context this is exactly the plain
/// overload — two spans per *file* keeps observation cost negligible.
inline FileChunkPlan chunk_and_fingerprint(const CategoryPolicy& policy,
                                           ConstByteSpan content,
                                           telemetry::Telemetry* telemetry,
                                           std::string_view category) {
  if (telemetry == nullptr) return chunk_and_fingerprint(policy, content);
  FileChunkPlan plan;
  {
    telemetry::TraceSpan span(&telemetry->trace, telemetry::Stage::kChunk,
                              category);
    plan.chunks = policy.chunker->split(content);
  }
  std::string label(category);
  label += '@';
  label += hash::default_batch_hasher().impl_tag(policy.hash_kind);
  telemetry::TraceSpan span(&telemetry->trace, telemetry::Stage::kFingerprint,
                            label);
  fingerprint_chunks(policy, content, plan);
  return plan;
}

/// File size filter (paper Section III.B): files below the threshold skip
/// deduplication entirely and are only packed into containers.
class FileSizeFilter {
 public:
  static constexpr std::uint64_t kDefaultThreshold = 10 * 1024;

  explicit FileSizeFilter(std::uint64_t threshold = kDefaultThreshold)
      : threshold_(threshold) {}

  bool is_tiny(std::uint64_t file_size) const noexcept {
    return file_size < threshold_;
  }

  std::uint64_t threshold() const noexcept { return threshold_; }

 private:
  std::uint64_t threshold_;
};

}  // namespace aadedupe::core
