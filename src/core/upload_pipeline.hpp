// Pipelined uploader (paper Section IV.D: "our pipelined design for the
// deduplication processes and the data transfer operations") — now fault
// tolerant.
//
// Deduplication workers enqueue typed UploadItems (sealed containers vs.
// session metadata) on a bounded queue; a dedicated uploader thread ships
// them through the CloudTarget's transport stack concurrently with further
// deduplication. The bounded queue gives backpressure: a slow (simulated)
// WAN throttles the producers instead of buffering the whole backup in
// memory.
//
// Failure handling, in escalation order:
//   1. The target's RetryingBackend absorbs retryable errors per request.
//   2. On terminal failure the pipeline re-attempts the item a per-kind
//      number of extra times (metadata objects — the durability anchor of
//      a session — get more than bulk containers).
//   3. Still-failed items are parked in the UploadJournal (graceful
//      degradation; the next session replays them), or, when no journal is
//      configured, finish() throws a typed CloudTransportError.
// An exception escaping the uploader thread is captured and rethrown from
// finish() instead of std::terminate-ing the process.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/cloud_result.hpp"
#include "cloud/cloud_target.hpp"
#include "core/upload_item.hpp"
#include "core/upload_journal.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bounded_queue.hpp"

namespace aadedupe::core {

struct UploadPipelineOptions {
  std::size_t queue_capacity = 64;
  /// Extra pipeline-level attempts after the transport stack gives up.
  std::uint32_t container_requeues = 0;
  std::uint32_t metadata_requeues = 1;
  /// Where terminally failed items go. Without a journal, finish() throws
  /// CloudTransportError on the first terminal failure instead.
  UploadJournal* journal = nullptr;
  /// Nullable observability context: kUpload trace spans per shipped item,
  /// an enqueue-backpressure stall histogram + quantile sketch, and a
  /// payload-size histogram.
  telemetry::Telemetry* telemetry = nullptr;
  /// When non-empty, every pipeline instrument carries a `tenant` label so
  /// N concurrent sessions sharing one registry aggregate per tenant
  /// instead of blending (the fleet-harness regime).
  std::string tenant;
};

class UploadPipeline {
 public:
  /// Ships one item; returns the transport result. Overridable so tests
  /// and alternative transports can stand in for a CloudTarget.
  using UploadFn = std::function<cloud::CloudStatus(const UploadItem&)>;

  explicit UploadPipeline(cloud::CloudTarget& target,
                          UploadPipelineOptions options = {});
  UploadPipeline(UploadFn upload, UploadPipelineOptions options);
  ~UploadPipeline();

  UploadPipeline(const UploadPipeline&) = delete;
  UploadPipeline& operator=(const UploadPipeline&) = delete;

  /// Enqueue an object for upload; blocks when the queue is full.
  /// Precondition: finish() has not been called.
  void enqueue(UploadItem item);
  void enqueue(std::string key, ByteBuffer payload,
               ObjectKind kind = ObjectKind::kContainer) {
    enqueue(UploadItem{std::move(key), std::move(payload), kind});
  }

  // Pipeline counters. Folded from the old Stats snapshot struct into
  // individual accessors: the authoritative rollup lives in the run
  // report's session.pipeline section (AaDedupeScheme::fill_run_report).
  std::uint64_t enqueued() const noexcept { return enqueued_.load(); }
  /// Items that landed.
  std::uint64_t uploaded() const noexcept { return uploaded_.load(); }
  /// Pipeline-level re-attempts.
  std::uint64_t requeues() const noexcept { return requeues_.load(); }
  /// Items parked for the next session.
  std::uint64_t journaled() const noexcept { return journaled_.load(); }
  /// Terminal failures (journaled or not).
  std::uint64_t failed() const noexcept { return failed_.load(); }

  /// Drain the queue, upload everything, and join the uploader.
  /// Idempotent. Rethrows an exception captured from the uploader thread;
  /// throws CloudTransportError if an item failed terminally and no
  /// journal is configured (the error is reported once).
  void finish();

 private:
  void worker();
  void ship(UploadItem item);
  /// Record the first exception escaping ship(); logs + flight-dumps it.
  void capture_worker_error(const char* what);

  UploadFn upload_;
  UploadPipelineOptions options_;
  telemetry::Histogram stall_us_hist_;
  telemetry::Histogram item_bytes_hist_;
  telemetry::Gauge queue_depth_gauge_;
  telemetry::Sketch stall_sketch_;  // seconds; p95/p99 within 1%
  BoundedQueue<UploadItem> queue_;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> uploaded_{0};
  std::atomic<std::uint64_t> requeues_{0};
  std::atomic<std::uint64_t> journaled_{0};
  std::atomic<std::uint64_t> failed_{0};

  mutable std::mutex mutex_;
  std::exception_ptr uploader_error_;
  /// First terminal failure when no journal is configured.
  std::optional<std::pair<std::string, cloud::CloudError>> first_failure_;
  bool failure_reported_ = false;

  std::thread uploader_;
};

}  // namespace aadedupe::core
