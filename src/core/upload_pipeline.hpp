// Pipelined uploader (paper Section IV.D: "our pipelined design for the
// deduplication processes and the data transfer operations").
//
// Deduplication workers enqueue sealed containers and metadata objects on
// a bounded queue; a dedicated uploader thread ships them to the cloud
// target concurrently with further deduplication. The bounded queue gives
// backpressure: a slow (simulated) WAN throttles the producers instead of
// buffering the whole backup in memory.
#pragma once

#include <string>
#include <thread>
#include <utility>

#include "cloud/cloud_target.hpp"
#include "util/bounded_queue.hpp"

namespace aadedupe::core {

class UploadPipeline {
 public:
  explicit UploadPipeline(cloud::CloudTarget& target,
                          std::size_t queue_capacity = 64)
      : target_(&target), queue_(queue_capacity), uploader_([this] {
          while (auto item = queue_.pop()) {
            target_->upload(item->first, std::move(item->second));
          }
        }) {}

  ~UploadPipeline() { finish(); }

  UploadPipeline(const UploadPipeline&) = delete;
  UploadPipeline& operator=(const UploadPipeline&) = delete;

  /// Enqueue an object for upload; blocks when the queue is full.
  /// Precondition: finish() has not been called.
  void enqueue(std::string key, ByteBuffer data) {
    const bool accepted = queue_.push({std::move(key), std::move(data)});
    AAD_EXPECTS(accepted);
  }

  /// Drain the queue, upload everything, and join the uploader. Idempotent.
  void finish() {
    queue_.close();
    if (uploader_.joinable()) uploader_.join();
  }

 private:
  cloud::CloudTarget* target_;
  BoundedQueue<std::pair<std::string, ByteBuffer>> queue_;
  std::thread uploader_;
};

}  // namespace aadedupe::core
