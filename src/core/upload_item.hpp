// UploadItem — a typed unit of client→cloud traffic.
//
// The object class matters operationally: containers are bulk payload
// (re-creatable from the client's local data until the session ends),
// while metadata objects (recipes, index images, key stores) are the
// session's durability anchor — losing one silently makes the session
// unrestorable. The upload pipeline and journal key their retry and
// accounting policy off this distinction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace aadedupe::core {

enum class ObjectKind : std::uint8_t {
  kContainer = 0,  // sealed chunk containers and other bulk data
  kMetadata = 1,   // recipes, index images, key stores, catalogs
};

constexpr std::string_view to_string(ObjectKind kind) noexcept {
  return kind == ObjectKind::kMetadata ? "metadata" : "container";
}

struct UploadItem {
  std::string key;
  ByteBuffer payload;
  ObjectKind kind = ObjectKind::kContainer;
};

}  // namespace aadedupe::core
