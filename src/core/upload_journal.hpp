// UploadJournal — the graceful-degradation path for failed uploads.
//
// When the transport stack gives up on an object (retry budget exhausted),
// the upload pipeline parks it here instead of losing it or aborting the
// session. The journal is part of the client's persistent state
// (AaDedupeScheme serializes it with export_state), so a session that
// ended degraded hands its debt to the next session, which replays the
// journal before doing new work. Thread-safe: the uploader thread adds
// while the session thread may inspect.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/cloud_result.hpp"
#include "core/upload_item.hpp"
#include "util/bytes.hpp"

namespace aadedupe::cloud {
class CloudTarget;
}  // namespace aadedupe::cloud

namespace aadedupe::core {

struct PendingUpload {
  UploadItem item;
  cloud::CloudError error;  // why the last attempt gave up
};

class UploadJournal {
 public:
  UploadJournal() = default;
  UploadJournal(UploadJournal&& other) noexcept;
  UploadJournal& operator=(UploadJournal&& other) noexcept;

  /// Park a failed upload (called from the uploader thread).
  void add(UploadItem item, cloud::CloudError error);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot of the pending entries (copies).
  std::vector<PendingUpload> pending() const;

  void clear();

  /// Re-attempt every pending upload through the target's transport
  /// stack. Entries that land are dropped from the journal; entries that
  /// fail again stay (with their fresh error). Returns how many landed.
  std::size_t replay(cloud::CloudTarget& target);

  /// Wire image of the journal (for persistent client state).
  ByteBuffer serialize() const;

  /// Rebuild from a serialize() image. Throws FormatError on malformed
  /// input.
  static UploadJournal deserialize(ConstByteSpan image);

 private:
  mutable std::mutex mutex_;
  std::vector<PendingUpload> entries_;
};

}  // namespace aadedupe::core
