// AA-Dedupe: the paper's application-aware source deduplication scheme.
//
// Session flow (paper Fig. 5):
//   1. The file size filter diverts tiny files (< 10 KB) around
//      deduplication; they are packed straight into containers.
//   2. The intelligent chunker splits each remaining file with the engine
//      chosen by its application category (WFC / SC / CDC).
//   3. The deduplicator fingerprints chunks with the category's hash
//      (Rabin-96 / MD5 / SHA-1) and probes the application-aware index —
//      one small independent index per file type.
//   4. New chunks are appended to the per-application open container;
//      sealed (1 MB) containers are shipped through the pipelined uploader
//      while deduplication continues.
//   5. At session end, open containers are flushed (padded), file recipes
//      and an incremental checkpoint of the application-aware index are
//      synced to the cloud (Section III.E's periodical data
//      synchronization). Only the first session ships a full index base;
//      later sessions ship the delta since the previous checkpoint.
//
// Because applications share no data (Observation 2), the per-application
// streams deduplicate independently and — when `parallel` is on — run
// concurrently on a thread pool, each against its own index shard.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backup/scheme.hpp"
#include "cloud/cloud_target.hpp"
#include "container/container.hpp"
#include "container/container_manager.hpp"
#include "container/recipe.hpp"
#include "core/policy.hpp"
#include "core/upload_journal.hpp"
#include "core/upload_pipeline.hpp"
#include "crypto/convergent.hpp"
#include "dataset/snapshot.hpp"
#include "index/partitioned_index.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace aadedupe::core {

/// How a parallel backup session distributes work across the pool.
enum class ParallelGranularity : std::uint8_t {
  /// One task per application stream (the original design). Simple, but a
  /// session's wall clock is bounded by its largest stream — one dominant
  /// stream (e.g. the VM-image or mail stream) serializes the session.
  kStream,
  /// Two-phase: a pure, stateless phase chunks and fingerprints individual
  /// *files* across the pool (work-stealing, one file per steal), then a
  /// per-stream serial commit phase performs index lookups, container
  /// packing, and recipe emission in deterministic file order. Produces
  /// the same recipes per stream; wall clock is bounded by total work.
  kFile,
};

struct AaDedupeOptions {
  std::uint64_t tiny_file_threshold = FileSizeFilter::kDefaultThreshold;
  std::size_t container_capacity = container::kDefaultCapacity;
  /// Deduplicate application streams in parallel on a thread pool.
  bool parallel = true;
  /// Work-distribution unit when `parallel` is on.
  ParallelGranularity granularity = ParallelGranularity::kFile;
  /// Upper bound on the bytes the file-granularity front end materializes
  /// at once (it processes the session in batches of at most this size, so
  /// memory stays bounded on arbitrarily large snapshots).
  std::uint64_t front_end_batch_bytes = 128ull << 20;
  std::size_t worker_threads = ThreadPool::default_thread_count();
  /// Sync the application-aware index image to the cloud each session.
  bool sync_index = true;
  /// Chunking-policy tunables (paper's setup with FastCDC promoted to the
  /// dynamic-category default; see PolicyConfig).
  PolicyConfig policy;
  /// When non-empty, every per-application index shard is a disk-backed
  /// log-structured index (bloom filter + bounded entry cache + WAL) rooted
  /// under this directory — one subdirectory per partition key. Empty (the
  /// default) keeps the paper's RAM-resident shards. The on-disk layout
  /// survives the scheme, so a later scheme pointed at the same directory
  /// resumes with the fingerprint index already warm.
  std::string index_directory;
  /// Secure deduplication (the paper's future-work extension): encrypt
  /// every chunk with convergent encryption before it enters a container.
  /// Identical plaintext still deduplicates; the cloud never sees
  /// plaintext; restore requires the passphrase. The (wrapped) key store
  /// is synced to the cloud alongside the other session metadata.
  bool convergent_encryption = false;
  std::string passphrase;
  /// Nullable observability context. When set, the scheme attaches it to
  /// the target's transport stack and instruments every pipeline stage
  /// (classify, chunk, fingerprint, index lookup, container pack, upload,
  /// metadata sync) plus session counters. The nullptr default is the
  /// null sink: instrumented code pays one pointer test.
  telemetry::Telemetry* telemetry = nullptr;
  /// Tenant identity for fleet observability. When non-empty, session
  /// counters, the chunk-latency sketch, the upload-pipeline instruments,
  /// and the BWS/DR/DE session sketches all carry a `tenant` label, so N
  /// concurrent sessions reporting into one shared registry aggregate per
  /// tenant instead of blending (see bench/bench_fleet_obs).
  std::string tenant;
};

/// Options for the background garbage-collection process (the deletion
/// support the paper defers to future work in Section III.F).
struct GcOptions {
  /// Containers whose live-payload fraction falls below this are
  /// rewritten (live chunks copied into fresh containers); containers
  /// with no live chunks are deleted outright.
  double rewrite_threshold = 0.5;
};

struct GcReport {
  std::uint32_t sessions_retained = 0;
  std::uint32_t sessions_expired = 0;
  std::uint64_t containers_scanned = 0;
  std::uint64_t containers_deleted = 0;
  std::uint64_t containers_rewritten = 0;
  std::uint64_t chunks_relocated = 0;
  std::uint64_t live_bytes_copied = 0;
  std::uint64_t bytes_reclaimed = 0;  // cloud occupancy freed
};

class AaDedupeScheme final : public backup::BackupScheme {
 public:
  explicit AaDedupeScheme(cloud::CloudTarget& target,
                          AaDedupeOptions options = {});

  std::string_view name() const noexcept override { return "AA-Dedupe"; }

  ByteBuffer restore_file(const std::string& path) override;

  /// Point-in-time restore: reassemble the file as it was at a specific
  /// retained backup session. Throws FormatError for unknown sessions or
  /// paths (including sessions expired by collect_garbage).
  ByteBuffer restore_file_at(const std::string& path, std::uint32_t session);

  /// Sessions currently restorable (ascending).
  std::vector<std::uint32_t> restorable_sessions() const;

  /// Background deletion/retention process: keep only the most recent
  /// `keep_sessions` backup sessions, drop expired session metadata from
  /// the cloud, delete containers no retained file references, rewrite
  /// under-utilized containers (copying live chunks into fresh ones), and
  /// rebuild the application-aware index from the retained recipes so
  /// future sessions never dedup against reclaimed chunks. Restores of
  /// retained sessions remain byte-exact afterwards.
  GcReport collect_garbage(std::uint32_t keep_sessions,
                           const GcOptions& options = {});

  const index::PartitionedIndex& aa_index() const noexcept { return index_; }
  const AaDedupeOptions& options() const noexcept { return options_; }

  /// Per-application view of the deduplication state — the numbers the
  /// application-aware design is about: each partition's engine/hash
  /// policy, index size, lookup/hit counters, and the logical bytes and
  /// chunk counts of the latest session.
  struct ApplicationStats {
    std::string partition;           // file-type tag ("doc", "mp3", ...)
    std::string chunker;             // "wfc" / "sc" / "cdc" / "-" (tiny)
    std::string hash;                // "rabin96" / "md5" / "sha1" / "-"
    std::uint64_t index_entries = 0;
    std::uint64_t index_lookups = 0;
    std::uint64_t index_hits = 0;
    std::uint64_t index_probe_steps = 0;  // slots examined across lookups
    std::uint64_t session_files = 0;   // latest session
    std::uint64_t session_bytes = 0;   // latest session, logical
    std::uint64_t session_chunks = 0;  // latest session recipe entries
    /// Container bytes this stream shipped in the latest session (new
    /// chunks + container framing); with session_bytes this yields the
    /// per-category dedup ratio.
    std::uint64_t session_new_bytes = 0;
    // Filter/cache counters of disk-backed shards (zero for RAM-resident
    // ones) — how many lookups the bloom filter absorbed without a disk
    // read, how often it lied, and how the hot-set entry cache behaves.
    std::uint64_t filter_probes = 0;
    std::uint64_t filter_negatives = 0;
    std::uint64_t filter_false_positives = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_evictions = 0;
  };

  /// Stats for every partition seen so far (sorted), plus a final "tiny"
  /// row for the filtered stream.
  std::vector<ApplicationStats> application_stats() const;

  /// Contribute the "session" section of a run report: the per-application
  /// breakdown (with dedup ratios), pipeline counters, and journal debt.
  void fill_run_report(telemetry::RunReport& report) const;

  /// Client-side recipes of the latest session (exposed for tests).
  const container::RecipeStore& recipes() const noexcept { return recipes_; }

  /// Uploads the transport stack gave up on, parked for replay. A session
  /// that ends with a non-empty journal is *degraded*: its data is safe
  /// locally and ships at the start of the next session (run_session
  /// replays the journal before new work). The journal is included in
  /// export_state() so the debt survives process restarts.
  const UploadJournal& pending_uploads() const noexcept { return journal_; }
  UploadJournal& pending_uploads() noexcept { return journal_; }

  /// Serialize the full client state — application-aware index, session
  /// recipe history, container-id counter, and (when encryption is on)
  /// the wrapped key store — so a client can stop and resume across
  /// process lifetimes against the same cloud. The image contains no
  /// unwrapped key material.
  ByteBuffer export_state() const;

  /// Restore client state from export_state(). The scheme must have been
  /// constructed with compatible options (same passphrase when encryption
  /// is on). Throws FormatError on malformed input.
  void import_state(ConstByteSpan image);

  /// Integrity scrub result (see scrub()).
  struct ScrubReport {
    std::uint64_t files_checked = 0;
    std::uint64_t chunks_checked = 0;
    std::uint64_t bytes_checked = 0;
    std::uint64_t missing_containers = 0;
    std::uint64_t corrupt_chunks = 0;  // stored bytes no longer match digest
    std::uint64_t missing_keys = 0;    // encrypted chunk without content key
    /// Container fetches that failed with a retryable transport error
    /// even after retries — the scrub is inconclusive for those paths
    /// (the data may be fine; the link was not).
    std::uint64_t transport_errors = 0;
    /// Paths with at least one problem (capped at 100 entries).
    std::vector<std::string> damaged_paths;

    bool clean() const noexcept {
      return missing_containers == 0 && corrupt_chunks == 0 &&
             missing_keys == 0 && transport_errors == 0;
    }
  };

  /// Verify a retained session end-to-end against the cloud: fetch every
  /// referenced container and recompute every chunk fingerprint (the
  /// digest width identifies the hash family: 12 B Rabin-96, 16 B MD5,
  /// 20 B SHA-1). Detects silent cloud corruption, truncated or missing
  /// objects, and lost content keys before a restore would need them.
  ScrubReport scrub(std::uint32_t session);

  /// Scrub the latest session.
  ScrubReport scrub();

  /// Disaster recovery without any local state: rebuild the client from
  /// the metadata this scheme syncs to the cloud every session (recipes,
  /// the application-aware index image, and — with encryption — the
  /// wrapped key store). After bootstrapping, all synced sessions are
  /// restorable and the next backup deduplicates against them. Returns
  /// the number of sessions recovered (0 if the cloud holds no backups).
  std::uint32_t bootstrap_from_cloud();

 protected:
  void run_session(const dataset::Snapshot& snapshot) override;

 private:
  /// All files of one application stream, deduplicated sequentially.
  struct StreamResult {
    std::vector<container::FileRecipe> recipes;
    std::uint64_t new_bytes = 0;  // container bytes this stream shipped
  };

  StreamResult process_stream(
      const std::string& partition,
      const std::vector<const dataset::FileEntry*>& files,
      class UploadPipeline& pipeline);

  /// File-granularity parallel session (ParallelGranularity::kFile): phase
  /// one chunks+fingerprints files across the pool, phase two commits each
  /// stream serially in file order, probing the shard once per file via
  /// lookup_batch. Fills `results` in stream map order; per-stream recipes,
  /// duplicate counts, and shipped bytes match process_stream exactly.
  void run_file_parallel(
      const std::map<std::string,
                     std::vector<const dataset::FileEntry*>>& streams,
      class UploadPipeline& pipeline, std::vector<StreamResult>& results);

  ByteBuffer restore_recipe(const container::FileRecipe& recipe);

  AaDedupeOptions options_;
  DedupPolicy policy_;
  FileSizeFilter size_filter_;
  index::PartitionedIndex index_;
  container::ContainerIdAllocator container_ids_;
  std::unique_ptr<ThreadPool> pool_;  // created when parallel
  /// Secure-dedup state (only used when convergent_encryption is on).
  crypto::ChaChaKey master_key_{};
  crypto::KeyStore key_store_;
  mutable std::mutex key_store_mutex_;

  /// Terminal upload failures awaiting replay (graceful degradation).
  UploadJournal journal_;

  /// Session-scoped telemetry rollups (latest session). The pipeline
  /// counters are captured from the UploadPipeline accessors before the
  /// pipeline is destroyed; the run report's session.pipeline section is
  /// the external view.
  std::map<std::string, std::uint64_t> session_new_bytes_;
  std::uint64_t pipeline_enqueued_ = 0;
  std::uint64_t pipeline_uploaded_ = 0;
  std::uint64_t pipeline_requeues_ = 0;
  std::uint64_t pipeline_journaled_ = 0;
  std::uint64_t pipeline_failed_ = 0;
  telemetry::Counter files_counter_;
  telemetry::Counter logical_bytes_counter_;
  telemetry::Counter chunks_counter_;
  telemetry::Counter dup_chunks_counter_;
  /// Label set shared by every instrument this scheme registers
  /// ({tenant=...} when options_.tenant is set, empty otherwise).
  telemetry::MetricLabels tenant_labels_;
  /// Per-file chunk+fingerprint latency sketch for `app` (registered
  /// lazily per application stream; labeled {app, stage, tenant?}).
  telemetry::Sketch chunk_latency_sketch(const std::string& app) const;

  container::RecipeStore recipes_;  // latest session (= history_.rbegin())
  /// Per-session recipe history; the retention unit of collect_garbage.
  std::map<std::uint32_t, container::RecipeStore> history_;
  std::uint32_t latest_session_ = 0;
  /// Restore-time cache of fetched container readers.
  std::map<std::uint64_t, std::shared_ptr<container::ContainerReader>>
      reader_cache_;
};

}  // namespace aadedupe::core
