#include "core/upload_pipeline.hpp"

#include <chrono>

#include "util/check.hpp"

namespace aadedupe::core {

namespace {
constexpr std::string_view kUploadCategory(ObjectKind kind) noexcept {
  return kind == ObjectKind::kMetadata ? "metadata" : "container";
}
}  // namespace

UploadPipeline::UploadPipeline(cloud::CloudTarget& target,
                               UploadPipelineOptions options)
    : UploadPipeline(
          [&target](const UploadItem& item) {
            return target.upload(item.key, item.payload);
          },
          options) {}

UploadPipeline::UploadPipeline(UploadFn upload, UploadPipelineOptions options)
    : upload_(std::move(upload)),
      options_(options),
      queue_(options.queue_capacity),
      uploader_([this] { worker(); }) {
  if (options_.telemetry != nullptr) {
    stall_us_hist_ =
        options_.telemetry->metrics.histogram("pipeline.enqueue_stall_us");
    item_bytes_hist_ =
        options_.telemetry->metrics.histogram("pipeline.item_bytes");
  }
}

UploadPipeline::~UploadPipeline() {
  // finish() can throw (captured uploader exception, unjournaled terminal
  // failure); a destructor must not. Callers that care about the outcome
  // call finish() explicitly — this is only the safety net.
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void UploadPipeline::enqueue(UploadItem item) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.enqueued;
  }
  if (options_.telemetry != nullptr) {
    item_bytes_hist_.observe(item.payload.size());
    // Time the push: a full queue blocks here, and that backpressure stall
    // is exactly what the histogram is for.
    const auto start = std::chrono::steady_clock::now();
    const bool accepted = queue_.push(std::move(item));
    const auto stall = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    stall_us_hist_.observe(static_cast<std::uint64_t>(stall.count()));
    AAD_EXPECTS(accepted);
    return;
  }
  const bool accepted = queue_.push(std::move(item));
  AAD_EXPECTS(accepted);
}

void UploadPipeline::worker() {
  while (auto item = queue_.pop()) {
    try {
      ship(std::move(*item));
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!uploader_error_) uploader_error_ = std::current_exception();
      // Keep draining so blocked producers make progress; remaining items
      // are dropped on the floor — the captured exception supersedes them.
    }
  }
}

void UploadPipeline::ship(UploadItem item) {
  telemetry::TraceSpan span(
      options_.telemetry != nullptr ? &options_.telemetry->trace : nullptr,
      telemetry::Stage::kUpload, kUploadCategory(item.kind));
  const std::uint32_t budget = 1 + (item.kind == ObjectKind::kMetadata
                                        ? options_.metadata_requeues
                                        : options_.container_requeues);
  cloud::CloudError last_error = cloud::CloudError::kTransient;
  for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
    if (attempt > 1) {
      std::lock_guard lock(mutex_);
      ++stats_.requeues;
    }
    const cloud::CloudStatus status = upload_(item);
    if (status.ok()) {
      std::lock_guard lock(mutex_);
      ++stats_.uploaded;
      return;
    }
    last_error = status.error();
    if (!cloud::is_retryable(last_error)) break;
  }
  {
    std::lock_guard lock(mutex_);
    ++stats_.failed;
    if (options_.journal == nullptr && !first_failure_) {
      first_failure_ = {item.key, last_error};
    }
  }
  if (options_.journal != nullptr) {
    options_.journal->add(std::move(item), last_error);
    std::lock_guard lock(mutex_);
    ++stats_.journaled;
  }
}

UploadPipeline::Stats UploadPipeline::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void UploadPipeline::finish() {
  queue_.close();
  if (uploader_.joinable()) uploader_.join();
  std::lock_guard lock(mutex_);
  if (uploader_error_) {
    const std::exception_ptr error = uploader_error_;
    uploader_error_ = nullptr;  // report once; later finish() is a no-op
    std::rethrow_exception(error);
  }
  if (first_failure_ && !failure_reported_) {
    failure_reported_ = true;
    throw cloud::CloudTransportError("upload", first_failure_->first,
                                     first_failure_->second);
  }
}

}  // namespace aadedupe::core
