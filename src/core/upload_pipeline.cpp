#include "core/upload_pipeline.hpp"

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace aadedupe::core {

namespace {
constexpr std::string_view kUploadCategory(ObjectKind kind) noexcept {
  return kind == ObjectKind::kMetadata ? "metadata" : "container";
}
}  // namespace

UploadPipeline::UploadPipeline(cloud::CloudTarget& target,
                               UploadPipelineOptions options)
    : UploadPipeline(
          [&target](const UploadItem& item) {
            return target.upload(item.key, item.payload);
          },
          options) {}

UploadPipeline::UploadPipeline(UploadFn upload, UploadPipelineOptions options)
    : upload_(std::move(upload)),
      options_(options),
      queue_(options.queue_capacity),
      uploader_([this] { worker(); }) {
  if (options_.telemetry != nullptr) {
    telemetry::MetricLabels labels;
    if (!options_.tenant.empty()) labels.emplace_back("tenant", options_.tenant);
    stall_us_hist_ = options_.telemetry->metrics.histogram(
        "pipeline.enqueue_stall_us", labels);
    item_bytes_hist_ =
        options_.telemetry->metrics.histogram("pipeline.item_bytes", labels);
    queue_depth_gauge_ =
        options_.telemetry->metrics.gauge("pipeline.queue_depth", labels);
    labels.emplace_back("stage", "upload");
    stall_sketch_ = options_.telemetry->metrics.sketch(
        "pipeline.enqueue_stall_s", labels);
  }
}

UploadPipeline::~UploadPipeline() {
  // finish() can throw (captured uploader exception, unjournaled terminal
  // failure); a destructor must not. Callers that care about the outcome
  // call finish() explicitly — this is only the safety net, but the
  // failure still has to leave a trace: route it through the global
  // failure hook so the flight recorder dumps before the error vanishes.
  try {
    finish();
  } catch (const std::exception& e) {
    detail::notify_failure("pipeline_dtor", e.what());
  } catch (...) {
    detail::notify_failure("pipeline_dtor", "unknown exception");
  }
}

void UploadPipeline::enqueue(UploadItem item) {
  enqueued_.fetch_add(1);
  if (options_.telemetry != nullptr) {
    item_bytes_hist_.observe(item.payload.size());
    // Time the push: a full queue blocks here, and that backpressure stall
    // is exactly what the histogram is for. StopWatch (not a raw clock
    // read) so measured time stays behind the one sanctioned abstraction.
    const StopWatch stall;
    const bool accepted = queue_.push(std::move(item));
    const double stall_s = stall.seconds();
    stall_us_hist_.observe(static_cast<std::uint64_t>(stall_s * 1e6));
    // The sketch keeps the tail honest: the log2 histogram's factor-of-two
    // buckets blur p99 stalls, the sketch bounds them to 1%.
    stall_sketch_.observe(stall_s);
    // High-water mark of queue occupancy (approximate: the uploader pops
    // concurrently, so this is a lower bound of the true peak).
    queue_depth_gauge_.observe_max(queue_.size());
    AAD_EXPECTS(accepted);
    return;
  }
  const bool accepted = queue_.push(std::move(item));
  AAD_EXPECTS(accepted);
}

void UploadPipeline::worker() {
  while (auto item = queue_.pop()) {
    try {
      ship(std::move(*item));
    } catch (const std::exception& e) {
      capture_worker_error(e.what());
    } catch (...) {
      capture_worker_error("unknown exception");
    }
  }
}

void UploadPipeline::capture_worker_error(const char* what) {
  bool first = false;
  {
    std::lock_guard lock(mutex_);
    if (!uploader_error_) {
      uploader_error_ = std::current_exception();
      first = true;
    }
    // Keep draining so blocked producers make progress; remaining items
    // are dropped on the floor — the captured exception supersedes them.
  }
  if (first && options_.telemetry != nullptr) {
    AAD_LOG(&options_.telemetry->log, kError, "upload",
            "uploader thread exception: %s", what);
    // The pipeline survives (finish() rethrows), but state at the moment
    // of the throw is exactly what a post-mortem wants — dump it now.
    options_.telemetry->flight.trigger("uploader_exception", what);
  }
}

void UploadPipeline::ship(UploadItem item) {
  telemetry::TraceSpan span(
      options_.telemetry != nullptr ? &options_.telemetry->trace : nullptr,
      telemetry::Stage::kUpload, kUploadCategory(item.kind));
  const std::uint32_t budget = 1 + (item.kind == ObjectKind::kMetadata
                                        ? options_.metadata_requeues
                                        : options_.container_requeues);
  cloud::CloudError last_error = cloud::CloudError::kTransient;
  for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
    if (attempt > 1) requeues_.fetch_add(1);
    const cloud::CloudStatus status = upload_(item);
    if (status.ok()) {
      uploaded_.fetch_add(1);
      return;
    }
    last_error = status.error();
    if (!cloud::is_retryable(last_error)) break;
  }
  failed_.fetch_add(1);
  {
    std::lock_guard lock(mutex_);
    if (options_.journal == nullptr && !first_failure_) {
      first_failure_ = {item.key, last_error};
    }
  }
  if (options_.telemetry != nullptr) {
    AAD_LOG(&options_.telemetry->log, kWarn, "upload",
            "%s failed terminally (%s) after %u attempt(s): %s",
            std::string(kUploadCategory(item.kind)).c_str(),
            std::string(cloud::to_string(last_error)).c_str(), budget,
            item.key.c_str());
  }
  if (options_.journal != nullptr) {
    // Degradation path: the item is parked for the next session. Snapshot
    // the flight rings too — what led up to the exhaustion is about to
    // scroll out of everyone's head.
    const std::string key = item.key;
    options_.journal->add(std::move(item), last_error);
    journaled_.fetch_add(1);
    if (options_.telemetry != nullptr) {
      options_.telemetry->flight.trigger("retry_exhausted", key);
    }
  }
}

void UploadPipeline::finish() {
  queue_.close();
  if (uploader_.joinable()) uploader_.join();
  std::lock_guard lock(mutex_);
  if (uploader_error_) {
    const std::exception_ptr error = uploader_error_;
    uploader_error_ = nullptr;  // report once; later finish() is a no-op
    std::rethrow_exception(error);
  }
  if (first_failure_ && !failure_reported_) {
    failure_reported_ = true;
    throw cloud::CloudTransportError("upload", first_failure_->first,
                                     first_failure_->second);
  }
}

}  // namespace aadedupe::core
