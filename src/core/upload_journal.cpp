#include "core/upload_journal.hpp"

#include <cstring>
#include <utility>

#include "cloud/cloud_target.hpp"
#include "util/check.hpp"

namespace aadedupe::core {

namespace {
constexpr char kJournalMagic[8] = {'A', 'A', 'D', 'J', 'R', 'N', 'L', '1'};
}  // namespace

UploadJournal::UploadJournal(UploadJournal&& other) noexcept {
  std::lock_guard lock(other.mutex_);
  entries_ = std::move(other.entries_);
  other.entries_.clear();
}

UploadJournal& UploadJournal::operator=(UploadJournal&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    entries_ = std::move(other.entries_);
    other.entries_.clear();
  }
  return *this;
}

void UploadJournal::add(UploadItem item, cloud::CloudError error) {
  std::lock_guard lock(mutex_);
  entries_.push_back(PendingUpload{std::move(item), error});
}

std::size_t UploadJournal::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<PendingUpload> UploadJournal::pending() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

void UploadJournal::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

std::size_t UploadJournal::replay(cloud::CloudTarget& target) {
  std::vector<PendingUpload> work;
  {
    std::lock_guard lock(mutex_);
    work = std::move(entries_);
    entries_.clear();
  }
  std::size_t landed = 0;
  std::vector<PendingUpload> still_pending;
  for (PendingUpload& entry : work) {
    const cloud::CloudStatus status =
        target.upload(entry.item.key, entry.item.payload);
    if (status.ok()) {
      ++landed;
    } else {
      entry.error = status.error();
      still_pending.push_back(std::move(entry));
    }
  }
  if (!still_pending.empty()) {
    std::lock_guard lock(mutex_);
    // New failures may have been added concurrently; keep both.
    for (PendingUpload& entry : still_pending) {
      entries_.push_back(std::move(entry));
    }
  }
  return landed;
}

ByteBuffer UploadJournal::serialize() const {
  std::lock_guard lock(mutex_);
  ByteBuffer out;
  append(out, ConstByteSpan{
                  reinterpret_cast<const std::byte*>(kJournalMagic), 8});
  append_le32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const PendingUpload& entry : entries_) {
    out.push_back(static_cast<std::byte>(entry.item.kind));
    out.push_back(static_cast<std::byte>(entry.error));
    append_le32(out, static_cast<std::uint32_t>(entry.item.key.size()));
    append(out, as_bytes(entry.item.key));
    append_le64(out, entry.item.payload.size());
    append(out, entry.item.payload);
  }
  return out;
}

UploadJournal UploadJournal::deserialize(ConstByteSpan image) {
  if (image.size() < 12 ||
      std::memcmp(image.data(), kJournalMagic, 8) != 0) {
    throw FormatError("upload journal: bad magic");
  }
  std::size_t pos = 8;
  const std::uint32_t count = load_le32(image.data() + pos);
  pos += 4;
  UploadJournal journal;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > image.size()) {
      throw FormatError("upload journal: truncated entry header");
    }
    const auto kind = static_cast<std::uint8_t>(image[pos]);
    const auto error = static_cast<std::uint8_t>(image[pos + 1]);
    if (kind > static_cast<std::uint8_t>(ObjectKind::kMetadata) ||
        error > static_cast<std::uint8_t>(cloud::CloudError::kCorrupt)) {
      throw FormatError("upload journal: bad enum value");
    }
    pos += 2;
    if (pos + 4 > image.size()) {
      throw FormatError("upload journal: truncated key length");
    }
    const std::uint32_t key_len = load_le32(image.data() + pos);
    pos += 4;
    if (key_len > 4096 || pos + key_len > image.size()) {
      throw FormatError("upload journal: truncated key");
    }
    std::string key(reinterpret_cast<const char*>(image.data() + pos),
                    key_len);
    pos += key_len;
    if (pos + 8 > image.size()) {
      throw FormatError("upload journal: truncated payload length");
    }
    const std::uint64_t payload_len = load_le64(image.data() + pos);
    pos += 8;
    if (pos + payload_len > image.size()) {
      throw FormatError("upload journal: truncated payload");
    }
    const ConstByteSpan payload = image.subspan(pos, payload_len);
    pos += payload_len;
    journal.entries_.push_back(PendingUpload{
        UploadItem{std::move(key), ByteBuffer(payload.begin(), payload.end()),
                   static_cast<ObjectKind>(kind)},
        static_cast<cloud::CloudError>(error)});
  }
  if (pos != image.size()) {
    throw FormatError("upload journal: trailing bytes");
  }
  return journal;
}

}  // namespace aadedupe::core
