#include "core/aa_dedupe.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "backup/keys.hpp"
#include "core/upload_pipeline.hpp"
#include "index/checkpoint.hpp"
#include "index/log_structured_index.hpp"
#include "index/memory_index.hpp"
#include "util/check.hpp"

namespace aadedupe::core {

namespace {
/// Partition key for the tiny-file stream (bypasses dedup entirely).
constexpr char kTinyStream[] = "tiny";

/// Shard backend selection (AaDedupeOptions::index_directory): RAM-resident
/// shards by default (the paper's single-PC design point), log-structured
/// on-disk shards when a directory is configured.
index::PartitionedIndex::ShardFactory make_shard_factory(
    const AaDedupeOptions& options) {
  if (options.index_directory.empty()) {
    return [](const std::string&) {
      return std::make_unique<index::MemoryChunkIndex>();
    };
  }
  return index::log_structured_shard_factory(options.index_directory);
}
}  // namespace

AaDedupeScheme::AaDedupeScheme(cloud::CloudTarget& target,
                               AaDedupeOptions options)
    : BackupScheme(target),
      options_(options),
      policy_(options.policy),
      size_filter_(options.tiny_file_threshold),
      index_(make_shard_factory(options_)) {
  if (options_.parallel) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.convergent_encryption) {
    master_key_ = crypto::derive_master_key(options_.passphrase);
  }
  if (options_.telemetry != nullptr) {
    // One context observes the whole path: the transport decorators report
    // into the same registry/tracer the scheme uses.
    target.attach_telemetry(options_.telemetry);
    if (!options_.tenant.empty()) {
      tenant_labels_.emplace_back("tenant", options_.tenant);
    }
    set_telemetry_tenant(options_.tenant);
    files_counter_ =
        options_.telemetry->metrics.counter("session.files", tenant_labels_);
    logical_bytes_counter_ = options_.telemetry->metrics.counter(
        "session.bytes_logical", tenant_labels_);
    chunks_counter_ =
        options_.telemetry->metrics.counter("session.chunks", tenant_labels_);
    dup_chunks_counter_ = options_.telemetry->metrics.counter(
        "session.chunks_duplicate", tenant_labels_);
  }
}

telemetry::Sketch AaDedupeScheme::chunk_latency_sketch(
    const std::string& app) const {
  if (options_.telemetry == nullptr) return {};
  telemetry::MetricLabels labels = tenant_labels_;
  labels.emplace_back("app", app);
  labels.emplace_back("stage", "chunk");
  return options_.telemetry->metrics.sketch("chunk.latency_s", labels);
}

AaDedupeScheme::StreamResult AaDedupeScheme::process_stream(
    const std::string& partition,
    const std::vector<const dataset::FileEntry*>& files,
    UploadPipeline& pipeline) {
  StreamResult result;
  result.recipes.reserve(files.size());

  // One open container per stream (paper Section III.F); sealed ones go to
  // the pipelined uploader.
  container::ContainerManager manager(
      container_ids_,
      [&pipeline](std::uint64_t id, ByteBuffer bytes) {
        pipeline.enqueue(backup::keys::container_object(id),
                         std::move(bytes));
      },
      options_.container_capacity, /*pad_on_flush=*/false,
      options_.telemetry, partition);

  const bool tiny_stream = partition == kTinyStream;
  index::ChunkIndex* shard =
      tiny_stream ? nullptr : &index_.shard(partition);
  telemetry::Tracer* tracer =
      options_.telemetry != nullptr ? &options_.telemetry->trace : nullptr;
  const telemetry::Sketch chunk_sketch =
      tiny_stream ? telemetry::Sketch{} : chunk_latency_sketch(partition);

  // Secure dedup: encrypt a plaintext chunk under its content-derived key
  // and remember the key for restore. Returns the ciphertext view.
  ByteBuffer crypt_scratch;
  const auto seal_chunk = [&](const hash::Digest& digest,
                              ConstByteSpan plaintext) -> ConstByteSpan {
    if (!options_.convergent_encryption) return plaintext;
    const crypto::ChaChaKey key = crypto::derive_content_key(plaintext);
    crypt_scratch.assign(plaintext.begin(), plaintext.end());
    crypto::convergent_encrypt(key, crypt_scratch);
    {
      std::lock_guard lock(key_store_mutex_);
      key_store_.put(digest, key);
    }
    return crypt_scratch;
  };

  ByteBuffer content;
  for (const dataset::FileEntry* file : files) {
    dataset::materialize_into(file->content, content);
    container::FileRecipe recipe;
    recipe.path = file->path;
    recipe.file_size = content.size();
    recipe.tag = tiny_stream ? std::string() : partition;

    if (tiny_stream) {
      // Tiny files skip dedup: a cheap Rabin-96 tag labels the container
      // descriptor, and the bytes are packed directly.
      if (!content.empty()) {
        const hash::Digest digest = hash::Rabin96::hash(content);
        const index::ChunkLocation loc =
            manager.store(digest, seal_chunk(digest, content));
        recipe.entries.push_back(container::RecipeEntry{digest, loc});
      }
      files_counter_.increment();
      logical_bytes_counter_.add(content.size());
      chunks_counter_.add(recipe.entries.size());
      result.recipes.push_back(std::move(recipe));
      continue;
    }

    const CategoryPolicy policy = policy_.for_kind(file->kind);
    FileChunkPlan plan;
    if (tracer == nullptr) {
      plan = chunk_and_fingerprint(policy, content, options_.telemetry,
                                   partition);
    } else {
      const double begin_s = tracer->now();
      plan = chunk_and_fingerprint(policy, content, options_.telemetry,
                                   partition);
      chunk_sketch.observe(tracer->now() - begin_s);
    }
    double lookup_s = 0.0;
    std::uint64_t duplicates = 0;
    for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
      const chunk::ChunkRef& ref = plan.chunks[c];
      const hash::Digest& digest = plan.digests[c];
      const ConstByteSpan chunk_bytes =
          ConstByteSpan{content}.subspan(ref.offset, ref.length);
      std::optional<index::ChunkLocation> existing;
      if (tracer == nullptr) {
        existing = shard->lookup(digest);
      } else {
        const double begin_s = tracer->now();
        existing = shard->lookup(digest);
        lookup_s += tracer->now() - begin_s;
      }
      index::ChunkLocation location;
      if (existing) {
        location = *existing;
        ++duplicates;
      } else {
        location = manager.store(digest, seal_chunk(digest, chunk_bytes));
        shard->insert(digest, location);
      }
      recipe.entries.push_back(container::RecipeEntry{digest, location});
    }
    if (tracer != nullptr && !plan.chunks.empty()) {
      tracer->record(telemetry::Stage::kIndexLookup, partition, lookup_s,
                     plan.chunks.size());
    }
    files_counter_.increment();
    logical_bytes_counter_.add(content.size());
    chunks_counter_.add(plan.chunks.size());
    dup_chunks_counter_.add(duplicates);
    result.recipes.push_back(std::move(recipe));
  }
  manager.flush();
  result.new_bytes = manager.bytes_stored();
  return result;
}

void AaDedupeScheme::run_file_parallel(
    const std::map<std::string, std::vector<const dataset::FileEntry*>>&
        streams,
    UploadPipeline& pipeline, std::vector<StreamResult>& results) {
  // Per-stream commit state: its index shard, its open container, and a
  // scratch buffer for convergent encryption. Streams commit concurrently
  // with each other (they share nothing, per Observation 2) but each
  // stream's files commit serially in snapshot order.
  struct StreamCommit {
    const std::string* key = nullptr;
    bool tiny = false;
    index::ChunkIndex* shard = nullptr;
    std::unique_ptr<container::ContainerManager> manager;
    StreamResult* result = nullptr;
    ByteBuffer crypt_scratch;
    telemetry::Sketch chunk_sketch;  // per-file chunk+fingerprint latency
  };
  std::vector<StreamCommit> commits;
  commits.reserve(streams.size());

  // Flattened session work-list, stream-major so each stream's files stay
  // contiguous and ordered for the commit phase.
  struct WorkItem {
    std::size_t stream;
    const dataset::FileEntry* file;
  };
  std::vector<WorkItem> items;
  for (const auto& [key, files] : streams) {
    StreamCommit commit;
    commit.key = &key;
    commit.tiny = key == kTinyStream;
    commit.shard = commit.tiny ? nullptr : &index_.shard(key);
    if (!commit.tiny) commit.chunk_sketch = chunk_latency_sketch(key);
    commit.manager = std::make_unique<container::ContainerManager>(
        container_ids_,
        [&pipeline](std::uint64_t id, ByteBuffer bytes) {
          pipeline.enqueue(backup::keys::container_object(id),
                           std::move(bytes));
        },
        options_.container_capacity, /*pad_on_flush=*/false,
        options_.telemetry, key);
    commit.result = &results[commits.size()];
    commit.result->recipes.reserve(files.size());
    const std::size_t stream_index = commits.size();
    commits.push_back(std::move(commit));
    for (const dataset::FileEntry* file : files) {
      items.push_back(WorkItem{stream_index, file});
    }
  }

  const auto seal_chunk = [this](StreamCommit& commit,
                                 const hash::Digest& digest,
                                 ConstByteSpan plaintext) -> ConstByteSpan {
    if (!options_.convergent_encryption) return plaintext;
    const crypto::ChaChaKey key = crypto::derive_content_key(plaintext);
    commit.crypt_scratch.assign(plaintext.begin(), plaintext.end());
    crypto::convergent_encrypt(key, commit.crypt_scratch);
    {
      std::lock_guard lock(key_store_mutex_);
      key_store_.put(digest, key);
    }
    return commit.crypt_scratch;
  };

  // Per-file front-end output. Buffers persist across batches so content
  // materialization reuses allocations.
  struct FrontEndPlan {
    ByteBuffer content;
    FileChunkPlan plan;         // non-tiny files
    hash::Digest tiny_digest;   // tiny files
  };
  std::vector<FrontEndPlan> plans;

  telemetry::Tracer* tracer =
      options_.telemetry != nullptr ? &options_.telemetry->trace : nullptr;
  std::size_t batch_begin = 0;
  while (batch_begin < items.size()) {
    // Grow the batch until the byte budget is hit (always >= 1 file).
    std::size_t batch_end = batch_begin;
    std::uint64_t batch_bytes = 0;
    while (batch_end < items.size() &&
           (batch_end == batch_begin ||
            batch_bytes + items[batch_end].file->size() <=
                options_.front_end_batch_bytes)) {
      batch_bytes += items[batch_end].file->size();
      ++batch_end;
    }
    const std::size_t batch_size = batch_end - batch_begin;
    if (plans.size() < batch_size) plans.resize(batch_size);

    // Phase 1 — pure and stateless: chunk and fingerprint every file of
    // the batch across the pool, one file per steal so a dominant stream's
    // large files spread over all workers.
    pool_->parallel_for(
        batch_size,
        [&](std::size_t i) {
          const WorkItem& item = items[batch_begin + i];
          FrontEndPlan& plan = plans[i];
          dataset::materialize_into(item.file->content, plan.content);
          if (commits[item.stream].tiny) {
            plan.plan.chunks.clear();
            plan.plan.digests.clear();
            if (!plan.content.empty()) {
              plan.tiny_digest = hash::Rabin96::hash(plan.content);
            }
          } else if (tracer == nullptr) {
            plan.plan = chunk_and_fingerprint(
                policy_.for_kind(item.file->kind), plan.content,
                options_.telemetry, *commits[item.stream].key);
          } else {
            const double begin_s = tracer->now();
            plan.plan = chunk_and_fingerprint(
                policy_.for_kind(item.file->kind), plan.content,
                options_.telemetry, *commits[item.stream].key);
            commits[item.stream].chunk_sketch.observe(tracer->now() -
                                                      begin_s);
          }
        },
        /*grain=*/1);

    // Phase 2 — commit. Items are stream-major, so the batch decomposes
    // into contiguous per-stream spans; spans run concurrently, files
    // within a span serially in order.
    struct Span {
      std::size_t stream, begin, end;  // [begin, end) into items
    };
    std::vector<Span> spans;
    for (std::size_t i = batch_begin; i < batch_end; ++i) {
      if (spans.empty() || spans.back().stream != items[i].stream) {
        spans.push_back(Span{items[i].stream, i, i});
      }
      spans.back().end = i + 1;
    }
    pool_->parallel_for(spans.size(), [&](std::size_t s) {
      const Span& span = spans[s];
      StreamCommit& commit = commits[span.stream];
      // Batched-lookup scratch, reused across the span's files.
      std::vector<std::optional<index::ChunkLocation>> found;
      std::unordered_map<hash::Digest, index::ChunkLocation,
                         hash::Digest::Hasher>
          fresh;
      for (std::size_t i = span.begin; i < span.end; ++i) {
        FrontEndPlan& plan = plans[i - batch_begin];
        const dataset::FileEntry* file = items[i].file;
        container::FileRecipe recipe;
        recipe.path = file->path;
        recipe.file_size = plan.content.size();
        recipe.tag = commit.tiny ? std::string() : *commit.key;
        if (commit.tiny) {
          if (!plan.content.empty()) {
            const index::ChunkLocation loc = commit.manager->store(
                plan.tiny_digest,
                seal_chunk(commit, plan.tiny_digest, plan.content));
            recipe.entries.push_back(
                container::RecipeEntry{plan.tiny_digest, loc});
          }
          chunks_counter_.add(recipe.entries.size());
        } else {
          recipe.entries.reserve(plan.plan.chunks.size());
          double lookup_s = 0.0;
          std::uint64_t duplicates = 0;
          // One shard probe pass per file. Chunks the batch saw as absent
          // may still repeat within the file: the first commit records the
          // fresh location and later occurrences reuse it, so recipes and
          // duplicate counts match the chunk-at-a-time serial path.
          if (tracer == nullptr) {
            commit.shard->lookup_batch(plan.plan.digests, found);
          } else {
            const double begin_s = tracer->now();
            commit.shard->lookup_batch(plan.plan.digests, found);
            lookup_s = tracer->now() - begin_s;
          }
          fresh.clear();
          for (std::size_t c = 0; c < plan.plan.chunks.size(); ++c) {
            const chunk::ChunkRef& ref = plan.plan.chunks[c];
            const hash::Digest& digest = plan.plan.digests[c];
            const ConstByteSpan chunk_bytes =
                ConstByteSpan{plan.content}.subspan(ref.offset, ref.length);
            index::ChunkLocation location;
            if (found[c]) {
              location = *found[c];
              ++duplicates;
            } else if (const auto it = fresh.find(digest);
                       it != fresh.end()) {
              location = it->second;
              ++duplicates;
            } else {
              location = commit.manager->store(
                  digest, seal_chunk(commit, digest, chunk_bytes));
              commit.shard->insert(digest, location);
              fresh.emplace(digest, location);
            }
            recipe.entries.push_back(
                container::RecipeEntry{digest, location});
          }
          if (tracer != nullptr && !plan.plan.chunks.empty()) {
            tracer->record(telemetry::Stage::kIndexLookup, *commit.key,
                           lookup_s, plan.plan.chunks.size());
          }
          chunks_counter_.add(recipe.entries.size());
          dup_chunks_counter_.add(duplicates);
        }
        files_counter_.increment();
        logical_bytes_counter_.add(plan.content.size());
        commit.result->recipes.push_back(std::move(recipe));
      }
    });

    // Timeline heartbeat once per batch: cheap (one atomic compare when
    // the interval has not elapsed) and frequent enough for short runs.
    if (options_.telemetry != nullptr) {
      options_.telemetry->timeline.maybe_sample(
          options_.telemetry->trace.now());
    }

    batch_begin = batch_end;
  }

  for (StreamCommit& commit : commits) {
    commit.manager->flush();
    commit.result->new_bytes = commit.manager->bytes_stored();
  }
}

void AaDedupeScheme::run_session(const dataset::Snapshot& snapshot) {
  latest_session_ = snapshot.session;
  telemetry::Tracer* tracer =
      options_.telemetry != nullptr ? &options_.telemetry->trace : nullptr;
  telemetry::Logger* log =
      options_.telemetry != nullptr ? &options_.telemetry->log : nullptr;
  telemetry::TraceSpan session_span(tracer, telemetry::Stage::kSession);
  AAD_LOG(log, kInfo, "session", "session %u: %zu files", snapshot.session,
          snapshot.files.size());

  // Graceful-degradation debt first: replay uploads a previous degraded
  // session parked in the journal. Whatever fails again stays parked.
  if (!journal_.empty()) {
    AAD_LOG(log, kInfo, "journal_replay",
            "replaying %zu parked upload(s) from a degraded session",
            journal_.size());
    telemetry::TraceSpan replay_span(tracer,
                                     telemetry::Stage::kJournalReplay);
    journal_.replay(target());
  }

  // Route files to application streams: tiny files to the packing stream,
  // everything else to its file-type stream (= index partition).
  std::map<std::string, std::vector<const dataset::FileEntry*>> streams;
  {
    telemetry::TraceSpan classify_span(tracer, telemetry::Stage::kClassify);
    for (const dataset::FileEntry& file : snapshot.files) {
      const std::string key = size_filter_.is_tiny(file.size())
                                  ? kTinyStream
                                  : DedupPolicy::partition_key(file.kind);
      streams[key].push_back(&file);
    }
  }

  UploadPipelineOptions pipeline_options;
  pipeline_options.journal = &journal_;
  pipeline_options.telemetry = options_.telemetry;
  pipeline_options.tenant = options_.tenant;
  UploadPipeline pipeline(target(), pipeline_options);
  std::vector<StreamResult> results(streams.size());

  if (pool_ && options_.granularity == ParallelGranularity::kFile) {
    // Two-phase file-granularity session: chunk+fingerprint files across
    // the pool, then commit each stream serially in file order. Wall
    // clock tracks total work instead of the largest stream.
    run_file_parallel(streams, pipeline, results);
  } else if (pool_) {
    // Observation 2 makes streams independent: deduplicate them in
    // parallel, each against its own index shard and container.
    std::vector<std::pair<const std::string*,
                          const std::vector<const dataset::FileEntry*>*>>
        work;
    work.reserve(streams.size());
    for (const auto& [key, files] : streams) work.push_back({&key, &files});
    pool_->parallel_for(work.size(), [&](std::size_t i) {
      results[i] = process_stream(*work[i].first, *work[i].second, pipeline);
    });
  } else {
    std::size_t i = 0;
    for (const auto& [key, files] : streams) {
      results[i++] = process_stream(key, files, pipeline);
      if (options_.telemetry != nullptr) {
        options_.telemetry->timeline.maybe_sample(
            options_.telemetry->trace.now());
      }
    }
  }

  // Per-stream new-bytes rollup for the per-category dedup ratio (streams
  // and results share map order).
  session_new_bytes_.clear();
  {
    std::size_t i = 0;
    for (const auto& [key, files] : streams) {
      session_new_bytes_[key] = results[i++].new_bytes;
    }
  }

  container::RecipeStore recipes;
  for (StreamResult& result : results) {
    for (container::FileRecipe& recipe : result.recipes) {
      recipes.put(std::move(recipe));
    }
  }

  // Periodic metadata synchronization: recipes plus the application-aware
  // index image, shipped through the same pipeline. Metadata objects get
  // the pipeline's stricter retry treatment — a lost recipe object makes
  // the whole session unrestorable from the cloud.
  {
    telemetry::TraceSpan sync_span(tracer, telemetry::Stage::kMetadataSync);
    pipeline.enqueue(
        backup::keys::session_meta(name(), snapshot.session, "recipes"),
        recipes.serialize(), ObjectKind::kMetadata);
    if (options_.sync_index) {
      // Incremental sync: the first session ships kReset + full per-shard
      // bases, later sessions ship only the delta since the previous
      // checkpoint. Recovery replays every retained session's object in
      // order (bootstrap_from_cloud).
      index::BufferCheckpointSink sink;
      index_.checkpoint(sink);
      pipeline.enqueue(
          backup::keys::session_meta(name(), snapshot.session, "index"),
          sink.take(), ObjectKind::kMetadata);
    }
    if (options_.convergent_encryption) {
      // The wrapped key store is itself ciphertext — safe to sync.
      pipeline.enqueue(
          backup::keys::session_meta(name(), snapshot.session, "keys"),
          key_store_.serialize(master_key_), ObjectKind::kMetadata);
    }
  }
  pipeline.finish();
  pipeline_enqueued_ = pipeline.enqueued();
  pipeline_uploaded_ = pipeline.uploaded();
  pipeline_requeues_ = pipeline.requeues();
  pipeline_journaled_ = pipeline.journaled();
  pipeline_failed_ = pipeline.failed();
  if (options_.telemetry != nullptr) {
    // Final timeline point: sessions shorter than the sample interval
    // still get a curve endpoint with the finished totals.
    options_.telemetry->timeline.force_sample(tracer->now());
    AAD_LOG(log, kInfo, "session",
            "session %u done: %llu uploaded, %llu journaled, %llu failed",
            snapshot.session,
            static_cast<unsigned long long>(pipeline_uploaded_),
            static_cast<unsigned long long>(pipeline_journaled_),
            static_cast<unsigned long long>(pipeline_failed_));
  }

  history_[snapshot.session] = recipes;
  recipes_ = std::move(recipes);
  reader_cache_.clear();  // cloud contents changed
}

GcReport AaDedupeScheme::collect_garbage(std::uint32_t keep_sessions,
                                         const GcOptions& options) {
  AAD_EXPECTS(keep_sessions >= 1);
  AAD_EXPECTS(options.rewrite_threshold >= 0.0 &&
              options.rewrite_threshold <= 1.0);
  GcReport report;
  if (history_.empty()) return report;

  // 1. Retention: keep the newest `keep_sessions` sessions; expired
  // sessions lose their cloud metadata objects.
  while (history_.size() > keep_sessions) {
    const std::uint32_t expired = history_.begin()->first;
    // Client-issued deletes go through the transport stack; a failed
    // delete leaves a harmless orphan object, so the result is advisory.
    (void)target().remove_object(
        backup::keys::session_meta(name(), expired, "recipes"));
    (void)target().remove_object(
        backup::keys::session_meta(name(), expired, "index"));
    (void)target().remove_object(
        backup::keys::session_meta(name(), expired, "keys"));
    history_.erase(history_.begin());
    ++report.sessions_expired;
  }
  report.sessions_retained = static_cast<std::uint32_t>(history_.size());

  // 2. Liveness: every (container, offset) a retained recipe references.
  struct LiveRef {
    hash::Digest digest;
    index::ChunkLocation location;
  };
  std::map<std::uint64_t, std::map<std::uint32_t, LiveRef>> live;
  for (const auto& [session, recipes] : history_) {
    for (const std::string& path : recipes.paths()) {
      const container::FileRecipe* recipe = recipes.find(path);
      for (const container::RecipeEntry& entry : recipe->entries) {
        live[entry.location.container_id].emplace(
            entry.location.offset, LiveRef{entry.digest, entry.location});
      }
    }
  }

  // 3. Sweep containers: delete dead ones, rewrite under-utilized ones.
  // `remap` records where relocated chunks now live, keyed by old
  // (container, offset).
  std::map<std::pair<std::uint64_t, std::uint32_t>, index::ChunkLocation>
      remap;
  container::ContainerManager rewriter(
      container_ids_,
      [this](std::uint64_t id, ByteBuffer bytes) {
        upload_or_throw(backup::keys::container_object(id), std::move(bytes));
      },
      options_.container_capacity);

  for (const std::string& key : target().store().list("containers/")) {
    ++report.containers_scanned;
    auto object = target().download(key);
    // Unreadable this round (kNotFound raced a concurrent delete, or the
    // link failed past retries): skip — never reclaim what we could not
    // inspect. The next GC pass will see it again.
    if (!object.ok()) continue;
    const std::uint64_t object_size = object.value().size();
    container::ContainerReader reader(std::move(object).value());

    const auto live_it = live.find(reader.id());
    if (live_it == live.end()) {
      (void)target().remove_object(key);
      ++report.containers_deleted;
      report.bytes_reclaimed += object_size;
      continue;
    }

    std::uint64_t live_bytes = 0, payload_bytes = 0;
    for (const container::ChunkDescriptor& d : reader.descriptors()) {
      payload_bytes += d.length;
      if (live_it->second.contains(d.offset)) live_bytes += d.length;
    }
    const double utilization =
        payload_bytes == 0
            ? 0.0
            : static_cast<double>(live_bytes) /
                  static_cast<double>(payload_bytes);
    if (utilization >= options.rewrite_threshold || live_bytes == 0) {
      continue;  // healthy container (fully-dead handled above)
    }

    // Rewrite: copy live chunks into fresh containers.
    for (const auto& [offset, ref] : live_it->second) {
      const ConstByteSpan chunk =
          reader.chunk_at(offset, ref.location.length);
      const index::ChunkLocation fresh = rewriter.store(ref.digest, chunk);
      remap[{reader.id(), offset}] = fresh;
      ++report.chunks_relocated;
      report.live_bytes_copied += chunk.size();
    }
    (void)target().remove_object(key);
    ++report.containers_rewritten;
    report.bytes_reclaimed += object_size;
  }
  rewriter.flush();

  // 4. Repoint retained recipes at the relocated chunks and rebuild the
  // application-aware index from them (dead fingerprints drop out, so no
  // future session can dedup against a reclaimed chunk). Only when this
  // pass actually reclaimed something: a no-op GC must leave the cloud
  // objects — and the incremental checkpoint chain — untouched, or a
  // keep-everything pass would replace the latest session's small index
  // delta with a full rebase and grow storage for nothing.
  const bool reclaimed = report.sessions_expired > 0 ||
                         report.containers_deleted > 0 ||
                         report.containers_rewritten > 0;
  if (!reclaimed) {
    recipes_ = history_.rbegin()->second;
    reader_cache_.clear();
    return report;
  }
  index_.clear();
  crypto::KeyStore live_keys;
  for (auto& [session, recipes] : history_) {
    container::RecipeStore updated;
    for (const std::string& path : recipes.paths()) {
      container::FileRecipe recipe = *recipes.find(path);
      for (container::RecipeEntry& entry : recipe.entries) {
        const auto it = remap.find(
            {entry.location.container_id, entry.location.offset});
        if (it != remap.end()) entry.location = it->second;
        if (options_.convergent_encryption) {
          std::lock_guard lock(key_store_mutex_);
          if (const auto key = key_store_.get(entry.digest)) {
            live_keys.put(entry.digest, *key);
          }
        }
      }
      if (!recipe.tag.empty()) {
        index::ChunkIndex& shard = index_.shard(recipe.tag);
        for (const container::RecipeEntry& entry : recipe.entries) {
          shard.insert(entry.digest, entry.location);
        }
      }
      updated.put(std::move(recipe));
    }
    upload_or_throw(backup::keys::session_meta(name(), session, "recipes"),
                    updated.serialize());
    recipes = std::move(updated);
  }
  if (options_.convergent_encryption) {
    // Content keys of reclaimed chunks are dropped with them.
    std::lock_guard lock(key_store_mutex_);
    key_store_ = std::move(live_keys);
    upload_or_throw(backup::keys::session_meta(
                        name(), history_.rbegin()->first, "keys"),
                    key_store_.serialize(master_key_));
  }
  if (options_.sync_index && !history_.empty()) {
    // clear() re-armed the checkpoint chain, so this ships kReset + fresh
    // bases: any replayed chain drops pre-GC fingerprints here.
    index::BufferCheckpointSink sink;
    index_.checkpoint(sink);
    upload_or_throw(backup::keys::session_meta(
                        name(), history_.rbegin()->first, "index"),
                    sink.take());
  }
  recipes_ = history_.rbegin()->second;
  reader_cache_.clear();
  return report;
}

namespace {
// v2 appends the pending-uploads journal (fault-tolerant transport).
constexpr char kStateMagic[8] = {'A', 'A', 'D', 'S', 'T', 'A', 'T', '2'};

void append_sized(ByteBuffer& out, const ByteBuffer& blob) {
  append_le64(out, blob.size());
  append(out, blob);
}

ConstByteSpan read_sized(ConstByteSpan image, std::size_t& pos) {
  if (pos + 8 > image.size()) throw FormatError("state: truncated length");
  const std::uint64_t len = load_le64(image.data() + pos);
  pos += 8;
  if (pos + len > image.size()) throw FormatError("state: truncated blob");
  const ConstByteSpan blob = image.subspan(pos, len);
  pos += len;
  return blob;
}
}  // namespace

ByteBuffer AaDedupeScheme::export_state() const {
  ByteBuffer out;
  append(out, ConstByteSpan{reinterpret_cast<const std::byte*>(kStateMagic),
                            8});
  append_le32(out, options_.convergent_encryption ? 1u : 0u);
  append_le32(out, latest_session_);
  append_le64(out, container_ids_.next_id());
  {
    // Self-contained snapshot (kReset + per-shard bases) in the
    // checkpoint framing; checkpoint_full leaves the incremental cloud
    // sync chain undisturbed. import_state tells this apart from
    // pre-checkpoint serialize() images by the AADCKPT1 magic.
    index::BufferCheckpointSink sink;
    index_.checkpoint_full(sink);
    append_sized(out, sink.take());
  }
  append_le32(out, static_cast<std::uint32_t>(history_.size()));
  for (const auto& [session, recipes] : history_) {
    append_le32(out, session);
    append_sized(out, recipes.serialize());
  }
  if (options_.convergent_encryption) {
    std::lock_guard lock(key_store_mutex_);
    append_sized(out, key_store_.serialize(master_key_));
  }
  // Degraded-session debt travels with the client state so a process
  // restart still replays it.
  append_sized(out, journal_.serialize());
  return out;
}

void AaDedupeScheme::import_state(ConstByteSpan image) {
  if (image.size() < 24 ||
      std::memcmp(image.data(), kStateMagic, 8) != 0) {
    throw FormatError("state: bad magic");
  }
  std::size_t pos = 8;
  const std::uint32_t encrypted = load_le32(image.data() + pos);
  pos += 4;
  if ((encrypted != 0) != options_.convergent_encryption) {
    throw FormatError("state: encryption mode mismatch with options");
  }
  const std::uint32_t latest = load_le32(image.data() + pos);
  pos += 4;
  const std::uint64_t next_container = load_le64(image.data() + pos);
  pos += 8;

  const ConstByteSpan index_blob = read_sized(image, pos);

  if (pos + 4 > image.size()) throw FormatError("state: truncated history");
  const std::uint32_t session_count = load_le32(image.data() + pos);
  pos += 4;
  std::map<std::uint32_t, container::RecipeStore> fresh_history;
  for (std::uint32_t i = 0; i < session_count; ++i) {
    if (pos + 4 > image.size()) throw FormatError("state: truncated session");
    const std::uint32_t session = load_le32(image.data() + pos);
    pos += 4;
    fresh_history.emplace(
        session, container::RecipeStore::deserialize(read_sized(image, pos)));
  }

  crypto::KeyStore fresh_keys;
  if (options_.convergent_encryption) {
    fresh_keys = crypto::KeyStore::deserialize(read_sized(image, pos),
                                               master_key_);
  }
  UploadJournal fresh_journal =
      UploadJournal::deserialize(read_sized(image, pos));
  if (pos != image.size()) throw FormatError("state: trailing bytes");
  if (fresh_history.empty() && session_count != 0) {
    throw FormatError("state: inconsistent history");
  }

  // Commit. Both index restore paths are internally all-or-nothing
  // (records are validated before any shard mutates), and everything
  // else above has already been validated.
  if (index::is_checkpoint_stream(index_blob)) {
    index::BufferCheckpointSource source(index_blob);
    index_.restore(source);
  } else {
    // Pre-checkpoint state image (AADSTAT2 with a serialize() blob).
    index_.deserialize(index_blob);
  }
  history_ = std::move(fresh_history);
  recipes_ = history_.empty() ? container::RecipeStore{}
                              : history_.rbegin()->second;
  latest_session_ = latest;
  container_ids_.reset(next_container);
  {
    std::lock_guard lock(key_store_mutex_);
    key_store_ = std::move(fresh_keys);
  }
  journal_ = std::move(fresh_journal);
  reader_cache_.clear();
}

std::vector<AaDedupeScheme::ApplicationStats>
AaDedupeScheme::application_stats() const {
  // Index-side counters per partition.
  std::map<std::string, ApplicationStats> rows;
  auto& index = const_cast<index::PartitionedIndex&>(index_);
  for (const std::string& partition : index_.partitions()) {
    ApplicationStats row;
    row.partition = partition;
    const index::ChunkIndex& shard = index.shard(partition);
    row.index_entries = shard.size();
    const index::IndexStats stats = shard.stats();
    row.index_lookups = stats.lookups;
    row.index_hits = stats.hits;
    row.index_probe_steps = stats.probe_steps;
    row.filter_probes = stats.filter_probes;
    row.filter_negatives = stats.filter_negatives;
    row.filter_false_positives = stats.filter_false_positives;
    row.cache_hits = stats.cache_hits;
    row.cache_evictions = stats.cache_evictions;
    rows.emplace(partition, std::move(row));
  }
  rows.emplace("tiny", ApplicationStats{"tiny", "-", "-", 0, 0, 0, 0, 0, 0});

  // Latest-session composition from the recipes.
  for (const std::string& path : recipes_.paths()) {
    const container::FileRecipe* recipe = recipes_.find(path);
    const std::string key = recipe->tag.empty() ? "tiny" : recipe->tag;
    ApplicationStats& row = rows[key];
    if (row.partition.empty()) row.partition = key;
    ++row.session_files;
    row.session_bytes += recipe->file_size;
    row.session_chunks += recipe->entries.size();
  }
  for (const auto& [key, new_bytes] : session_new_bytes_) {
    const auto it = rows.find(key);
    if (it != rows.end()) it->second.session_new_bytes = new_bytes;
  }

  // Fill in the policy columns for real partitions; "tiny" goes last.
  std::vector<ApplicationStats> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    if (key == "tiny") continue;
    for (const dataset::FileKind kind : dataset::all_file_kinds()) {
      if (key == dataset::extension(kind)) {
        const CategoryPolicy policy = policy_.for_kind(kind);
        row.chunker = std::string(policy.chunker->name());
        row.hash = std::string(hash::to_string(policy.hash_kind));
        break;
      }
    }
    out.push_back(std::move(row));
  }
  out.push_back(std::move(rows.at("tiny")));
  return out;
}

void AaDedupeScheme::fill_run_report(telemetry::RunReport& report) const {
  telemetry::JsonValue& session = report.section("session");
  session["scheme"] = name();
  session["latest_session"] = latest_session_;
  session["tiny_file_threshold"] = options_.tiny_file_threshold;
  session["parallel"] = options_.parallel;
  session["convergent_encryption"] = options_.convergent_encryption;

  std::uint64_t total_bytes = 0, total_files = 0, total_chunks = 0;
  std::uint64_t total_new_bytes = 0;
  telemetry::JsonValue& apps = session["applications"];
  apps.make_array();
  for (const ApplicationStats& row : application_stats()) {
    telemetry::JsonValue app;
    app.make_object();
    app["partition"] = row.partition;
    app["chunker"] = row.chunker;
    app["hash"] = row.hash;
    app["index_entries"] = row.index_entries;
    app["index_lookups"] = row.index_lookups;
    app["index_hits"] = row.index_hits;
    app["index_probe_steps"] = row.index_probe_steps;
    app["filter_probes"] = row.filter_probes;
    app["filter_negatives"] = row.filter_negatives;
    app["filter_false_positives"] = row.filter_false_positives;
    app["cache_hits"] = row.cache_hits;
    app["cache_evictions"] = row.cache_evictions;
    app["session_files"] = row.session_files;
    app["session_bytes"] = row.session_bytes;
    app["session_chunks"] = row.session_chunks;
    app["session_new_bytes"] = row.session_new_bytes;
    // Paper-style dedup ratio: logical bytes over shipped container
    // bytes. 0 when the stream shipped nothing (all-duplicate or empty).
    app["dedup_ratio"] =
        row.session_new_bytes == 0
            ? 0.0
            : static_cast<double>(row.session_bytes) /
                  static_cast<double>(row.session_new_bytes);
    apps.push_back(std::move(app));
    total_bytes += row.session_bytes;
    total_files += row.session_files;
    total_chunks += row.session_chunks;
    total_new_bytes += row.session_new_bytes;
  }
  session["session_files"] = total_files;
  session["session_bytes"] = total_bytes;
  session["session_chunks"] = total_chunks;
  session["session_new_bytes"] = total_new_bytes;

  telemetry::JsonValue& pipeline = session["pipeline"].make_object();
  pipeline["enqueued"] = pipeline_enqueued_;
  pipeline["uploaded"] = pipeline_uploaded_;
  pipeline["requeues"] = pipeline_requeues_;
  pipeline["journaled"] = pipeline_journaled_;
  pipeline["failed"] = pipeline_failed_;

  telemetry::JsonValue& journal = session["journal"].make_object();
  std::uint64_t pending_bytes = 0;
  for (const PendingUpload& pending : journal_.pending()) {
    pending_bytes += pending.item.payload.size();
  }
  journal["pending_items"] = journal_.size();
  journal["pending_bytes"] = pending_bytes;
}

AaDedupeScheme::ScrubReport AaDedupeScheme::scrub() {
  if (history_.empty()) return ScrubReport{};
  return scrub(history_.rbegin()->first);
}

AaDedupeScheme::ScrubReport AaDedupeScheme::scrub(std::uint32_t session) {
  const auto it = history_.find(session);
  if (it == history_.end()) {
    throw FormatError("aa-dedupe: session " + std::to_string(session) +
                      " is not retained");
  }
  const container::RecipeStore& recipes = it->second;

  ScrubReport report;
  std::map<std::uint64_t, std::shared_ptr<container::ContainerReader>>
      readers;
  auto note_damage = [&report](const std::string& path) {
    if (report.damaged_paths.size() < 100 &&
        (report.damaged_paths.empty() ||
         report.damaged_paths.back() != path)) {
      report.damaged_paths.push_back(path);
    }
  };

  ByteBuffer scratch;
  for (const std::string& path : recipes.paths()) {
    const container::FileRecipe* recipe = recipes.find(path);
    ++report.files_checked;
    for (const container::RecipeEntry& entry : recipe->entries) {
      ++report.chunks_checked;
      report.bytes_checked += entry.location.length;

      auto reader_it = readers.find(entry.location.container_id);
      if (reader_it == readers.end()) {
        auto object = target().download(
            backup::keys::container_object(entry.location.container_id));
        if (!object.ok()) {
          // Map the typed error to a verdict: a missing object is damage;
          // corruption caught by the transport checksum is damage; a link
          // failure past retries makes the scrub inconclusive here.
          if (object.error() == cloud::CloudError::kNotFound ||
              object.error() == cloud::CloudError::kCorrupt) {
            ++report.missing_containers;
          } else {
            ++report.transport_errors;
          }
          note_damage(path);
          readers.emplace(entry.location.container_id, nullptr);
          continue;
        }
        std::shared_ptr<container::ContainerReader> reader;
        try {
          reader = std::make_shared<container::ContainerReader>(
              std::move(object).value());
        } catch (const FormatError&) {
          // Unparseable container counts as missing.
          ++report.missing_containers;
          note_damage(path);
        }
        reader_it =
            readers.emplace(entry.location.container_id, std::move(reader))
                .first;
        if (reader_it->second == nullptr) continue;
      } else if (reader_it->second == nullptr) {
        note_damage(path);
        continue;
      }

      ConstByteSpan stored;
      try {
        stored = reader_it->second->chunk_at(entry.location.offset,
                                             entry.location.length);
      } catch (const FormatError&) {
        ++report.corrupt_chunks;
        note_damage(path);
        continue;
      }

      // Recover plaintext if encrypted, then recompute the fingerprint.
      ConstByteSpan plaintext = stored;
      if (options_.convergent_encryption) {
        std::optional<crypto::ChaChaKey> key;
        {
          std::lock_guard lock(key_store_mutex_);
          key = key_store_.get(entry.digest);
        }
        if (!key) {
          ++report.missing_keys;
          note_damage(path);
          continue;
        }
        scratch.assign(stored.begin(), stored.end());
        crypto::convergent_decrypt(*key, scratch);
        plaintext = scratch;
      }
      const hash::HashKind kind =
          entry.digest.size() == hash::Rabin96::kDigestSize
              ? hash::HashKind::kRabin96
          : entry.digest.size() == hash::Md5::kDigestSize
              ? hash::HashKind::kMd5
              : hash::HashKind::kSha1;
      if (hash::compute_digest(kind, plaintext) != entry.digest) {
        ++report.corrupt_chunks;
        note_damage(path);
      }
    }
  }
  return report;
}

std::uint32_t AaDedupeScheme::bootstrap_from_cloud() {
  // Session recipe objects live under "meta/<name>/s<N>/recipes".
  const std::string prefix = "meta/" + std::string(name()) + "/s";
  std::map<std::uint32_t, container::RecipeStore> recovered;
  for (const std::string& key : target().store().list(prefix)) {
    const std::size_t session_begin = prefix.size();
    const std::size_t slash = key.find('/', session_begin);
    if (slash == std::string::npos ||
        key.substr(slash + 1) != "recipes") {
      continue;
    }
    std::uint32_t session = 0;
    for (std::size_t i = session_begin; i < slash; ++i) {
      if (key[i] < '0' || key[i] > '9') {
        session = ~std::uint32_t{0};
        break;
      }
      session = session * 10 + static_cast<std::uint32_t>(key[i] - '0');
    }
    if (session == ~std::uint32_t{0}) continue;
    auto image = target().download(key);
    if (!image.ok()) {
      // kNotFound means a concurrent delete won the race — skip. A
      // transport failure must abort: silently recovering fewer sessions
      // than the cloud holds would look like data loss to the user.
      if (image.error() == cloud::CloudError::kNotFound) continue;
      throw cloud::CloudTransportError("download", key, image.error());
    }
    recovered.emplace(session,
                      container::RecipeStore::deserialize(image.value()));
  }
  if (recovered.empty()) return 0;
  const std::uint32_t latest = recovered.rbegin()->first;

  // Rebuild dedup state from the synced index objects. Sessions ship
  // incremental checkpoints (the first — and any post-GC rebase — carries
  // kReset + full bases), so the chain is replayed across ALL recovered
  // sessions in ascending order. Legacy serialize() images are
  // self-contained and simply replace whatever the chain built so far.
  // Without the latest session's object the replayed tail would be
  // missing, so in that case fall back to a full rebuild from recipes.
  index_.clear();
  bool index_loaded = false;
  for (const auto& [session, recipes] : recovered) {
    const std::string key =
        backup::keys::session_meta(name(), session, "index");
    auto image = target().download(key);
    if (!image.ok()) {
      if (image.error() == cloud::CloudError::kNotFound) {
        // Gap in the chain (sync_index off, or a lost object). Dedup
        // state is advisory — a sparser index only costs re-uploads —
        // but a missing final link means the freshest fingerprints are
        // gone, so the recipe rebuild below takes over.
        if (session == latest) index_loaded = false;
        continue;
      }
      // The object exists but could not be fetched; proceeding would
      // silently discard synced dedup state.
      throw cloud::CloudTransportError("download", key, image.error());
    }
    if (index::is_checkpoint_stream(image.value())) {
      index::BufferCheckpointSource source(image.value());
      index_.restore(source);
    } else {
      index_.deserialize(image.value());
    }
    index_loaded = true;
  }
  if (!index_loaded) {
    index_.clear();  // drop whatever a partial chain replay built
    for (const auto& [session, recipes] : recovered) {
      for (const std::string& path : recipes.paths()) {
        const container::FileRecipe* recipe = recipes.find(path);
        if (recipe->tag.empty()) continue;
        index::ChunkIndex& shard = index_.shard(recipe->tag);
        for (const auto& entry : recipe->entries) {
          shard.insert(entry.digest, entry.location);
        }
      }
    }
  }

  if (options_.convergent_encryption) {
    const std::string key =
        backup::keys::session_meta(name(), latest, "keys");
    auto image = target().download(key);
    if (!image.ok()) {
      if (image.error() == cloud::CloudError::kNotFound) {
        throw FormatError(
            "aa-dedupe: cloud holds no key store; encrypted chunks would "
            "be unrestorable");
      }
      throw cloud::CloudTransportError("download", key, image.error());
    }
    std::lock_guard lock(key_store_mutex_);
    key_store_ = crypto::KeyStore::deserialize(image.value(), master_key_);
  }

  // Container ids resume beyond everything present in the cloud.
  std::uint64_t max_container = 0;
  for (const std::string& key : target().store().list("containers/c")) {
    const std::uint64_t id = std::strtoull(key.c_str() + 12, nullptr, 10);
    max_container = std::max(max_container, id);
  }
  container_ids_.reset(max_container + 1);

  history_ = std::move(recovered);
  recipes_ = history_.rbegin()->second;
  latest_session_ = latest;
  journal_.clear();  // disaster recovery starts with no local debt
  reader_cache_.clear();
  return static_cast<std::uint32_t>(history_.size());
}

ByteBuffer AaDedupeScheme::restore_file(const std::string& path) {
  const container::FileRecipe* recipe = recipes_.find(path);
  if (recipe == nullptr) throw FormatError("aa-dedupe: unknown path " + path);
  return restore_recipe(*recipe);
}

ByteBuffer AaDedupeScheme::restore_file_at(const std::string& path,
                                           std::uint32_t session) {
  const auto it = history_.find(session);
  if (it == history_.end()) {
    throw FormatError("aa-dedupe: session " + std::to_string(session) +
                      " is not restorable (never backed up or expired)");
  }
  const container::FileRecipe* recipe = it->second.find(path);
  if (recipe == nullptr) {
    throw FormatError("aa-dedupe: path " + path + " not in session " +
                      std::to_string(session));
  }
  return restore_recipe(*recipe);
}

std::vector<std::uint32_t> AaDedupeScheme::restorable_sessions() const {
  std::vector<std::uint32_t> out;
  out.reserve(history_.size());
  for (const auto& [session, recipes] : history_) out.push_back(session);
  return out;
}

ByteBuffer AaDedupeScheme::restore_recipe(
    const container::FileRecipe& recipe_ref) {
  const container::FileRecipe* recipe = &recipe_ref;
  ByteBuffer out;
  out.reserve(recipe->file_size);
  for (const container::RecipeEntry& entry : recipe->entries) {
    auto it = reader_cache_.find(entry.location.container_id);
    if (it == reader_cache_.end()) {
      const std::string key =
          backup::keys::container_object(entry.location.container_id);
      auto object = target().download(key);
      if (!object.ok()) {
        // kNotFound is permanent damage; everything else means the link
        // failed past the retry budget — the restore can be re-run.
        if (object.error() == cloud::CloudError::kNotFound) {
          throw FormatError("aa-dedupe: missing container " +
                            std::to_string(entry.location.container_id));
        }
        throw cloud::CloudTransportError("download", key, object.error());
      }
      it = reader_cache_
               .emplace(entry.location.container_id,
                        std::make_shared<container::ContainerReader>(
                            std::move(object).value()))
               .first;
    }
    const ConstByteSpan stored =
        it->second->chunk_at(entry.location.offset, entry.location.length);
    if (options_.convergent_encryption) {
      std::optional<crypto::ChaChaKey> key;
      {
        std::lock_guard lock(key_store_mutex_);
        key = key_store_.get(entry.digest);
      }
      if (!key) {
        throw FormatError("aa-dedupe: missing content key for chunk " +
                          entry.digest.hex());
      }
      const std::size_t base = out.size();
      out.insert(out.end(), stored.begin(), stored.end());
      crypto::convergent_decrypt(
          *key, ByteSpan{out.data() + base, stored.size()});
    } else {
      append(out, stored);
    }
  }
  if (out.size() != recipe->file_size) {
    throw FormatError("aa-dedupe: reassembled size mismatch for " +
                      recipe->path);
  }
  return out;
}

}  // namespace aadedupe::core
