#!/usr/bin/env python3
"""Repo-invariant lint for aadedupe — the rules clang-tidy cannot express.

Registered as the `repo_lint` ctest (label: lint) and run by the CI "lint"
job, so a violation fails the build everywhere, not just on machines with
LLVM installed.

Rules (see DESIGN.md §5 for rationale):
  pragma-once     every header uses `#pragma once` (no include guards).
  using-namespace no `using namespace` at namespace scope in headers; it
                  leaks into every includer.
  no-stdout       no std::cout/std::cerr/printf-family output in src/ —
                  metrics and tables go through metrics/table_writer,
                  library code never writes to the terminal.
  throw-taxonomy  every `throw` in src/ uses the check.hpp taxonomy
                  (PreconditionError / InvariantError / FormatError) or the
                  typed cloud error (CloudTransportError); bare rethrow
                  (`throw;`) is allowed. Callers can then catch by category
                  instead of pattern-matching what() strings.
  no-raw-random   no rand()/std::random_device outside src/util/rng —
                  reproducible sessions need every random byte to flow from
                  a seedable Rng (cert-msc32/51 stay disabled in .clang-tidy
                  for exactly this reason: determinism is the point).
  no-raw-stderr   no std::cerr / fprintf(stderr, ...) in src/, bench/, or
                  examples/ — diagnostics route through the structured
                  logging API (telemetry::Logger / AAD_LOG), which feeds
                  the flight recorder and honors AAD_LOG_LEVEL. Exempt:
                  src/telemetry/ (the sinks themselves) and tests/
                  (allowlisted — test harness output is not diagnostics).
  stats-structs   no new `struct *Stats` in src/ outside src/telemetry —
                  new observability goes through telemetry::MetricsRegistry
                  counters/histograms and RunReport sections instead of yet
                  another ad-hoc struct. The existing five are grandfathered
                  (and are themselves folded into RunReport).
  no-raw-getenv   no raw std::getenv outside src/telemetry/ and
                  bench/bench_common.* — environment knobs flow through
                  telemetry::env_u64/env_double/env_str/env_flag (and
                  env_secret for values that must never be logged) so a
                  knob can't silently fork semantics per call site. The
                  grandfather list is empty: every pre-rule hit has been
                  migrated.
  no-raw-socket   no raw socket(2)/accept/bind/listen/connect outside
                  src/telemetry/ops_server.cpp — the ops plane is the one
                  network surface in the tree; everything else (tests,
                  tools, benches) talks to it via ops_http_get(), which
                  keeps bind policy, timeouts, and request bounding in a
                  single reviewed file.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories holding first-party C++ sources.
CPP_DIRS = ("src", "tests", "bench", "examples")

HEADER_GLOB = "*.hpp"
SOURCE_GLOBS = ("*.hpp", "*.cpp")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks.

    Keeps the lint regexes from tripping on documentation ("... std::cout
    ...") or message strings. Not a full lexer, but handles // and /* */
    comments plus simple quoted literals, which is all this tree uses.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail to code
                state = "code"
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def iter_files(dirs, globs):
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for glob in globs:
            yield from sorted(root.rglob(glob))


def line_of(text: str, match_start: int) -> int:
    return text.count("\n", 0, match_start) + 1


def check_pragma_once(findings):
    for path in iter_files(CPP_DIRS, (HEADER_GLOB,)):
        text = path.read_text(encoding="utf-8")
        if "#pragma once" not in text:
            findings.append(
                Finding("pragma-once", path, 1,
                        "header missing `#pragma once`"))


USING_NS = re.compile(r"^\s*using\s+namespace\b", re.MULTILINE)


def check_using_namespace(findings):
    # Headers only: at namespace/global scope a `using namespace` leaks into
    # every includer. We flag any occurrence in a header — this tree has no
    # legitimate function-local use in headers either.
    for path in iter_files(CPP_DIRS, (HEADER_GLOB,)):
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in USING_NS.finditer(text):
            findings.append(
                Finding("using-namespace", path, line_of(text, m.start()),
                        "`using namespace` in a header"))


STDOUT_USE = re.compile(
    r"std::cout|std::cerr|std::clog|(?<![\w:])(?:printf|fprintf|puts|putchar)\s*\(")


def check_no_stdout(findings):
    # Library code (src/) must not write to the terminal; snprintf-to-buffer
    # is fine (and used by table_writer/units for formatting).
    for path in iter_files(("src",), SOURCE_GLOBS):
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in STDOUT_USE.finditer(text):
            findings.append(
                Finding("no-stdout", path, line_of(text, m.start()),
                        f"terminal output `{m.group(0).rstrip('(').strip()}` in "
                        "library code (metrics go through table_writer)"))


STDERR_USE = re.compile(r"std::cerr|(?<![\w:])fprintf\s*\(\s*stderr\b")

# tests/ is deliberately absent: assertions and harness chatter there are
# not product diagnostics. src/telemetry/ is where the sinks live.
STDERR_DIRS = ("src", "bench", "examples")


def check_no_raw_stderr(findings):
    telemetry_dir = REPO / "src" / "telemetry"
    for path in iter_files(STDERR_DIRS, SOURCE_GLOBS):
        if telemetry_dir in path.parents:
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in STDERR_USE.finditer(text):
            findings.append(
                Finding("no-raw-stderr", path, line_of(text, m.start()),
                        f"raw stderr write `{m.group(0).strip()}` — route "
                        "diagnostics through AAD_LOG / telemetry::Logger so "
                        "they reach the flight recorder and honor "
                        "AAD_LOG_LEVEL"))


THROW = re.compile(r"(?<![\w])throw\b\s*([^;]*)")
ALLOWED_THROW = re.compile(
    r"^(?:::)?(?:aadedupe::)?(?:cloud::)?"
    r"(?:PreconditionError|InvariantError|FormatError|CloudTransportError)\b"
    r"|^$")  # empty expression = bare rethrow `throw;`


def check_throw_taxonomy(findings):
    taxonomy_root = REPO / "src" / "util" / "check.hpp"
    for path in iter_files(("src",), SOURCE_GLOBS):
        if path == taxonomy_root:
            continue  # the taxonomy itself constructs the exceptions
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in THROW.finditer(text):
            expr = m.group(1).strip()
            if ALLOWED_THROW.match(expr):
                continue
            findings.append(
                Finding("throw-taxonomy", path, line_of(text, m.start()),
                        f"naked `throw {expr[:40]}...` — use the check.hpp "
                        "taxonomy (Precondition/Invariant/FormatError) or "
                        "cloud::CloudTransportError"))


RAW_RANDOM = re.compile(r"(?<![\w:])rand\s*\(|std::random_device")


def check_no_raw_random(findings):
    rng_dir = REPO / "src" / "util"
    for path in iter_files(CPP_DIRS, SOURCE_GLOBS):
        if path.parent == rng_dir and path.stem == "rng":
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in RAW_RANDOM.finditer(text):
            findings.append(
                Finding("no-raw-random", path, line_of(text, m.start()),
                        f"`{m.group(0).strip()}` outside src/util/rng — all "
                        "randomness flows from the seedable Rng"))


STATS_STRUCT = re.compile(r"(?<![\w:])struct\s+(\w*Stats)\b")

# Grandfathered stats structs (file-relative path, struct name). New
# observability belongs in telemetry::MetricsRegistry / RunReport; the
# decorator-level snapshot structs (RetryStats, FaultStats, pipeline
# Stats) have been folded into per-counter accessors + RunReport sections.
# The three survivors stay because each is a *value type* in a public
# API, not just a counter bag:
#   StoreStats — returned atomically under the store lock; splitting it
#     into accessors would tear concurrent readers' snapshots.
#   IndexStats — part of the ChunkIndex virtual interface; every backend
#     implements it, and bench tables diff before/after snapshots.
#   ApplicationStats — the per-partition row of the paper's Table-style
#     report; consumers iterate a vector of them.
ALLOWED_STATS = {
    ("src/cloud/object_store.hpp", "StoreStats"),
    ("src/index/chunk_index.hpp", "IndexStats"),
    ("src/core/aa_dedupe.hpp", "ApplicationStats"),
}


def check_stats_structs(findings):
    telemetry_dir = REPO / "src" / "telemetry"
    for path in iter_files(("src",), SOURCE_GLOBS):
        if telemetry_dir in path.parents:
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        rel = path.relative_to(REPO).as_posix()
        for m in STATS_STRUCT.finditer(text):
            if (rel, m.group(1)) in ALLOWED_STATS:
                continue
            findings.append(
                Finding("stats-structs", path, line_of(text, m.start()),
                        f"new stats struct `{m.group(1)}` outside "
                        "src/telemetry — use telemetry::MetricsRegistry "
                        "counters/histograms or a RunReport section"))


RAW_GETENV = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")


def check_no_raw_getenv(findings):
    # The sanctioned homes: src/telemetry/ (env.cpp is the parser; the
    # logger/observability bootstrap reads its own knobs before a bench
    # context exists) and bench_common (legacy aliases of the telemetry
    # helpers). The one-time grandfather list (cpu_features, backup_tool)
    # is gone — both sites now route through telemetry::env_*.
    telemetry_dir = REPO / "src" / "telemetry"
    for path in iter_files(CPP_DIRS, SOURCE_GLOBS):
        if telemetry_dir in path.parents:
            continue
        if path.parent == REPO / "bench" and path.stem == "bench_common":
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in RAW_GETENV.finditer(text):
            findings.append(
                Finding("no-raw-getenv", path, line_of(text, m.start()),
                        "raw `std::getenv` — read environment knobs via "
                        "telemetry::env_u64/env_double/env_str/env_flag "
                        "(env_secret for sensitive values) so every knob "
                        "has one parse and one doc home"))


RAW_SOCKET = re.compile(
    r"(?<![\w:.])::(?:socket|bind|listen|accept|connect|recv|send)\s*\(|"
    r"(?<![\w:.])(?:socket|accept)\s*\(\s*AF_")


def check_no_raw_socket(findings):
    # One network surface: the ops server. Its bind policy (loopback),
    # socket timeouts, and request bounding are security-relevant and
    # reviewed in one file; test/tool clients go through ops_http_get().
    allowed = REPO / "src" / "telemetry" / "ops_server.cpp"
    for path in iter_files(CPP_DIRS, SOURCE_GLOBS):
        if path == allowed:
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in RAW_SOCKET.finditer(text):
            findings.append(
                Finding("no-raw-socket", path, line_of(text, m.start()),
                        f"raw socket call `{m.group(0).rstrip('(').strip()}` "
                        "outside src/telemetry/ops_server.cpp — serve via "
                        "OpsServer, query via ops_http_get()"))


CHECKS = (
    check_pragma_once,
    check_using_namespace,
    check_no_stdout,
    check_no_raw_stderr,
    check_throw_taxonomy,
    check_no_raw_random,
    check_stats_structs,
    check_no_raw_getenv,
    check_no_raw_socket,
)


def main() -> int:
    findings: list[Finding] = []
    for check in CHECKS:
        check(findings)
    if findings:
        for f in findings:
            print(f)
        print(f"lint: FAIL — {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)")
        return 1
    n_files = len(list(iter_files(CPP_DIRS, SOURCE_GLOBS)))
    print(f"lint: OK — {len(CHECKS)} rules over {n_files} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
