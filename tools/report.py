#!/usr/bin/env python3
"""Pretty-print and diff aadedupe telemetry run reports.

A run report is the JSON artifact emitted by the telemetry layer
(telemetry::RunReport, schema "aadedupe-run-report/v1"): build metadata,
merged metrics, per-stage span times, the per-application dedup
breakdown, and the cloud transport counters.

Usage:
  report.py show <report.json>             human-readable summary
  report.py diff <a.json> <b.json>         field-by-field comparison
  report.py timeseries <report.json>       metric snapshot curves as text
  report.py trace-check <trace.json>       validate a Chrome-trace export
  report.py perf-gate <fresh.json> <baseline.json> [tolerance_pct]
                                           BENCH_chunking.json regression gate
  report.py --selftest                     internal check (ctest smoke)

Exit codes: 0 ok, 1 bad input / gate failure, 2 usage. `diff` always
exits 0 when both files parse — differing numbers are the expected
output, not an error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "aadedupe-run-report/v1"


def load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"report.py: {path}: not a JSON object")
    schema = data.get("schema")
    if schema != SCHEMA:
        print(f"# warning: {path}: schema {schema!r}, expected {SCHEMA!r}")
    return data


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"


def fmt_value(key: str, value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (int, float)) and (
            key.endswith("_bytes") or key == "bytes"):
        return fmt_bytes(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def flatten(node, prefix="") -> dict:
    """Flatten nested objects/arrays to dotted-path -> scalar."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Label application/stage rows by their natural key when present.
            tag = str(i)
            if isinstance(value, dict):
                if "partition" in value:
                    tag = value["partition"]
                elif "stage" in value:
                    tag = f"{value['stage']}/{value.get('category', '')}"
            out.update(flatten(value, f"{prefix}[{tag}]"))
    else:
        out[prefix] = node
    return out


def show(path: str) -> int:
    data = load(path)
    build = data.get("build", {})
    print(f"run report: {path}")
    print(f"  schema  : {data.get('schema')}")
    print(f"  build   : {build.get('compiler')} {build.get('build_type')} "
          f"preset={build.get('preset')} sanitizer={build.get('sanitizer')} "
          f"threads={build.get('hardware_threads')}")

    session = data.get("session")
    if session:
        print(f"  scheme  : {session.get('scheme')} "
              f"(session {session.get('latest_session')})")
        print(f"  logical : {fmt_bytes(session.get('session_bytes', 0))} in "
              f"{session.get('session_files')} files, "
              f"{session.get('session_chunks')} chunks")
        print(f"  shipped : {fmt_bytes(session.get('session_new_bytes', 0))} "
              "of container payload")
        apps = session.get("applications", [])
        if apps:
            print("  applications:")
            print(f"    {'app':8} {'chnk':5} {'hash':8} {'bytes':>10} "
                  f"{'new':>10} {'ratio':>7}")
            for app in apps:
                ratio = app.get("dedup_ratio", 0.0)
                print(f"    {app.get('partition', '?'):8} "
                      f"{app.get('chunker', '-'):5} "
                      f"{app.get('hash', '-'):8} "
                      f"{fmt_bytes(app.get('session_bytes', 0)):>10} "
                      f"{fmt_bytes(app.get('session_new_bytes', 0)):>10} "
                      f"{ratio:>7.2f}")

    stages = data.get("stages")
    if stages:
        print("  stages (wall / self / sim seconds):")
        for row in stages:
            print(f"    {row.get('stage', '?'):14} "
                  f"{row.get('category', ''):10} "
                  f"x{row.get('count', 0):<8} "
                  f"{row.get('wall_s', 0.0):9.4f} "
                  f"{row.get('self_s', 0.0):9.4f} "
                  f"{row.get('sim_s', 0.0):9.4f}")

    cloud = data.get("cloud")
    if cloud:
        store = cloud.get("store", {})
        retry = cloud.get("retry", {})
        faults = cloud.get("faults", {})
        print(f"  cloud   : {fmt_bytes(store.get('bytes_uploaded', 0))} up in "
              f"{store.get('put_requests')} puts; "
              f"retries={retry.get('retries')} "
              f"exhausted={retry.get('exhausted')} "
              f"faults={faults.get('injected_total')}")

    report = data.get("session_report")
    if report:
        print(f"  metrics : DR={report.get('dedupe_ratio', 0.0):.2f} "
              f"window={report.get('backup_window_seconds', 0.0):.1f}s "
              f"dedupe={report.get('dedupe_seconds', 0.0):.1f}s "
              f"transfer={report.get('transfer_seconds', 0.0):.1f}s")
    return 0


def diff(path_a: str, path_b: str) -> int:
    flat_a = flatten(load(path_a))
    flat_b = flatten(load(path_b))
    keys = sorted(set(flat_a) | set(flat_b))
    width = max((len(k) for k in keys), default=0)
    changed = 0
    for key in keys:
        if key.startswith("build."):
            continue  # environment, not results
        a, b = flat_a.get(key), flat_b.get(key)
        if a == b:
            continue
        changed += 1
        last = key.rsplit(".", 1)[-1]
        sa = "-" if a is None else fmt_value(last, a)
        sb = "-" if b is None else fmt_value(last, b)
        delta = ""
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool) and a:
            delta = f"  ({100.0 * (b - a) / a:+.1f}%)"
        print(f"{key:<{width}}  {sa} -> {sb}{delta}")
    print(f"# {changed} field(s) differ "
          f"({len(keys)} compared, build.* ignored)")
    return 0


def timeseries(path: str) -> int:
    """Render the RunReport "timeseries" section as aligned text columns."""
    data = load(path)
    ts = data.get("timeseries")
    if not ts:
        print(f"{path}: no timeseries section (set AAD_SNAPSHOT_INTERVAL_S "
              "or run a session long enough for periodic snapshots)")
        return 0
    times = ts.get("t_s", [])
    series = ts.get("series", {})
    if not isinstance(times, list) or not isinstance(series, dict):
        raise SystemExit(f"report.py: {path}: malformed timeseries section")
    names = sorted(series)
    print(f"timeseries: {len(times)} samples @ {ts.get('interval_s')}s")
    header = f"{'t_s':>10}" + "".join(f"  {n:>26}" for n in names)
    print(header)
    for i, t in enumerate(times):
        row = f"{t:>10.3f}"
        for name in names:
            column = series.get(name, [])
            value = column[i] if i < len(column) else 0
            row += f"  {value:>26.3f}" if isinstance(value, float) \
                else f"  {value:>26}"
        print(row)
    # Per-series summary: last value and max, the two numbers a human
    # actually scans curves for.
    for name in names:
        column = [v for v in series.get(name, [])
                  if isinstance(v, (int, float))]
        if column:
            print(f"# {name}: last={column[-1]:.3f} max={max(column):.3f}")
    return 0


def trace_check(path: str) -> int:
    """Validate that `path` is a well-formed Chrome-trace (Perfetto) file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")

    def bad(msg: str) -> int:
        print(f"trace-check: {path}: {msg}", file=sys.stderr)
        return 1

    if not isinstance(data, dict):
        return bad("top level is not a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return bad("missing traceEvents array")

    spans = counters = metadata = 0
    tids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return bad(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "C", "M"):
            return bad(f"event #{i}: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            return bad(f"event #{i}: missing name")
        if ph == "M":
            metadata += 1
            if not isinstance(ev.get("args"), dict):
                return bad(f"event #{i}: metadata event without args")
            continue
        # tid is required for spans but optional for counters: Chrome
        # counter events are per-process, and the exporter omits it.
        fields = ("ts", "pid", "tid") if ph == "X" else ("ts", "pid")
        for field in fields:
            if not isinstance(ev.get(field), (int, float)) \
                    or isinstance(ev.get(field), bool):
                return bad(f"event #{i}: missing numeric {field}")
        if ev["ts"] < 0:
            return bad(f"event #{i}: negative ts")
        if "tid" in ev:
            tids.add(ev["tid"])
        if ph == "X":
            spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                return bad(f"event #{i}: X event needs dur >= 0")
        else:
            counters += 1
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in args.values()):
                return bad(f"event #{i}: C event needs numeric args")
    if spans == 0:
        return bad("no X (span) events — empty trace")
    print(f"trace-check: {path}: OK ({spans} spans, {counters} counter "
          f"samples, {metadata} metadata events, {len(tids)} threads)")
    return 0


# Bench-JSON keys that are meaningful across machines: ratios of two
# measurements taken on the same host, not absolute MB/s. `higher`/`lower`
# mark direction; pct keys are compared in absolute percentage points
# with a 2-point noise floor (2% telemetry overhead is the acceptance
# ceiling, so a 2-point swing is the smallest actionable regression);
# `true` keys are pass/fail booleans. One dict serves every bench file
# (BENCH_chunking.json, BENCH_index.json) — keys a file does not carry
# are skipped with a note.
GATE_KEYS = {
    # BENCH_chunking.json (fingerprinting hot path)
    "cdc_speedup_vs_reference": "higher",
    "session_file_vs_stream_speedup": "higher",
    "telemetry_overhead_pct_cdc_fingerprint": "lower_pct",
    # Batched hash engine (PR 7): best compiled SIMD rung vs the scalar
    # rung measured in the same process, and the end-to-end dynamic-path
    # chunk+fingerprint throughput vs the recorded pre-engine seed.
    "sha1_batch_speedup_vs_scalar": "higher",
    "md5_batch_speedup_vs_scalar": "higher",
    "cdc_fingerprint_speedup_vs_seed": "higher",
    # BENCH_index.json (log-structured index)
    "bloom_cold_filter_rate": "higher",
    "hot_cache_hit_rate": "higher",
    "cold_disk_reads_per_lookup": "lower",
    "restart_recovery_ok": "true",
    "rss_bounded": "true",
}


def perf_gate(fresh_path: str, base_path: str,
              tolerance_pct: float = 15.0) -> int:
    def load_bench(path: str) -> dict:
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"report.py: cannot read {path}: {exc}")
        if not isinstance(data, dict):
            raise SystemExit(f"report.py: {path}: not a JSON object")
        return data

    fresh, base = load_bench(fresh_path), load_bench(base_path)
    tol = tolerance_pct / 100.0
    failures = warnings = compared = 0
    for key, direction in GATE_KEYS.items():
        if key not in fresh or key not in base:
            print(f"# perf-gate: {key}: missing "
                  f"({'fresh' if key not in fresh else 'baseline'}), skipped")
            continue
        if direction == "true":
            # Pass/fail invariants (crash recovery, RSS bound): fresh must
            # hold regardless of the baseline.
            compared += 1
            if bool(fresh[key]):
                print(f"  ok {key}: true")
            else:
                failures += 1
                print(f"FAIL {key}: expected true, got {fresh[key]!r}")
            continue
        f, b = float(fresh[key]), float(base[key])
        compared += 1
        if direction == "lower_pct":
            # Percentage-point deltas; lower is better.
            slack = max(abs(b) * tol, 2.0)
            regressed = f > b + slack
            improved = f < b - slack
            detail = f"{b:.2f} -> {f:.2f} points (slack {slack:.2f})"
        elif direction == "lower":
            # Absolute-delta slack floor: a baseline of ~zero (the bloom
            # filter absorbing everything) must not turn any nonzero fresh
            # value into a failure.
            slack = max(abs(b) * tol, 0.02)
            regressed = f > b + slack
            improved = f < b - slack
            detail = f"{b:.4f} -> {f:.4f} (slack {slack:.4f})"
        else:
            regressed = f < b * (1.0 - tol)
            improved = f > b * (1.0 + tol)
            delta = 100.0 * (f - b) / b if b else 0.0
            detail = f"{b:.3f} -> {f:.3f} ({delta:+.1f}%)"
        if regressed:
            failures += 1
            print(f"FAIL {key}: {detail}")
        elif improved:
            warnings += 1
            print(f"WARN {key}: improved beyond tolerance, baseline is "
                  f"stale: {detail}")
        else:
            print(f"  ok {key}: {detail}")
    if compared == 0:
        print("perf-gate: no comparable keys — failing", file=sys.stderr)
        return 1
    print(f"# perf-gate: {compared} compared, {failures} regression(s), "
          f"{warnings} warning(s), tolerance ±{tolerance_pct:.0f}%")
    return 1 if failures else 0


def selftest() -> int:
    a = {
        "schema": SCHEMA,
        "build": {"compiler": "x", "build_type": "Release",
                  "preset": "default", "sanitizer": "OFF",
                  "hardware_threads": 8},
        "session": {
            "scheme": "AA-Dedupe", "latest_session": 0,
            "session_bytes": 1024, "session_files": 2, "session_chunks": 3,
            "session_new_bytes": 512,
            "applications": [
                {"partition": "doc", "chunker": "cdc", "hash": "sha1",
                 "session_bytes": 1024, "session_new_bytes": 512,
                 "dedup_ratio": 2.0}],
        },
        "stages": [{"stage": "chunk", "category": "doc", "count": 1,
                    "wall_s": 0.5, "self_s": 0.5, "sim_s": 0.0}],
        "cloud": {"store": {"bytes_uploaded": 600, "put_requests": 2},
                  "retry": {"retries": 0, "exhausted": 0},
                  "faults": {"injected_total": 0}},
        "session_report": {"dedupe_ratio": 2.0,
                           "backup_window_seconds": 1.0,
                           "dedupe_seconds": 1.0, "transfer_seconds": 0.5},
    }
    b = json.loads(json.dumps(a))
    b["session"]["session_new_bytes"] = 256
    b["build"]["compiler"] = "y"  # must be ignored by diff

    import io
    import tempfile
    from contextlib import redirect_stdout

    with tempfile.TemporaryDirectory() as tmp:
        pa, pb = Path(tmp) / "a.json", Path(tmp) / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))

        out = io.StringIO()
        with redirect_stdout(out):
            assert show(str(pa)) == 0
        shown = out.getvalue()
        assert "AA-Dedupe" in shown and "chunk" in shown, shown

        out = io.StringIO()
        with redirect_stdout(out):
            assert diff(str(pa), str(pb)) == 0
        diffed = out.getvalue()
        assert "session.session_new_bytes" in diffed, diffed
        assert "-50.0%" in diffed, diffed
        assert "compiler" not in diffed, diffed
        assert "# 1 field(s) differ" in diffed, diffed

    flat = flatten(a)
    assert flat["session.applications[doc].dedup_ratio"] == 2.0
    assert flat["stages[chunk/doc].wall_s"] == 0.5

    # timeseries rendering
    ts_report = {
        "schema": SCHEMA,
        "timeseries": {"interval_s": 1.0, "t_s": [0.0, 1.0, 2.0],
                       "series": {"container.bytes": [0, 100, 250],
                                  "pipeline.queue_depth": [1, 3, 2]}},
    }
    # valid + broken Chrome traces
    good_trace = {"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
         "args": {"name": "thread 0001"}},
        {"ph": "X", "name": "chunk", "cat": "doc", "ts": 0.0, "dur": 125.0,
         "pid": 1, "tid": 0, "args": {"self_s": 0.0001}},
        {"ph": "C", "name": "container.bytes", "ts": 10.0, "pid": 1,
         "tid": 0, "args": {"container.bytes": 4096}},
    ], "displayTimeUnit": "ms"}
    bad_trace = {"traceEvents": [{"ph": "X", "name": "chunk", "ts": 0.0,
                                  "pid": 1, "tid": 0}]}  # no dur
    # perf-gate fixtures: ok, regression, improvement
    bench_base = {"cdc_speedup_vs_reference": 4.0,
                  "session_file_vs_stream_speedup": 2.0,
                  "telemetry_overhead_pct_cdc_fingerprint": 1.0,
                  "sha1_batch_speedup_vs_scalar": 8.0,
                  "md5_batch_speedup_vs_scalar": 4.5,
                  "cdc_fingerprint_speedup_vs_seed": 7.0}
    bench_ok = dict(bench_base, cdc_speedup_vs_reference=4.2)
    bench_bad = dict(bench_base, cdc_speedup_vs_reference=2.0)
    bench_fast = dict(bench_base, session_file_vs_stream_speedup=3.5)
    # A SIMD rung falling off the dispatch ladder (e.g. a build that lost
    # -mavx2) must trip the batch-speedup gate.
    bench_lost_simd = dict(bench_base, sha1_batch_speedup_vs_scalar=1.0,
                           cdc_fingerprint_speedup_vs_seed=2.0)
    # BENCH_index.json fixtures: the `lower` slack floor must tolerate a
    # near-zero baseline, and `true` keys gate on the fresh file alone.
    index_base = {"bloom_cold_filter_rate": 0.99,
                  "hot_cache_hit_rate": 0.97,
                  "cold_disk_reads_per_lookup": 0.0,
                  "restart_recovery_ok": True,
                  "rss_bounded": True}
    index_ok = dict(index_base, cold_disk_reads_per_lookup=0.01)
    index_bad_disk = dict(index_base, cold_disk_reads_per_lookup=0.5)
    index_bad_crash = dict(index_base, restart_recovery_ok=False)

    with tempfile.TemporaryDirectory() as tmp:
        write = lambda name, obj: (  # noqa: E731
            (Path(tmp) / name).write_text(json.dumps(obj)),
            str(Path(tmp) / name))[1]
        ts_path = write("ts.json", ts_report)
        out = io.StringIO()
        with redirect_stdout(out):
            assert timeseries(ts_path) == 0
        rendered = out.getvalue()
        assert "container.bytes" in rendered, rendered
        assert "3 samples" in rendered, rendered
        assert "last=250.000" in rendered, rendered

        out = io.StringIO()
        with redirect_stdout(out):
            assert trace_check(write("good.json", good_trace)) == 0
        assert "1 spans" in out.getvalue(), out.getvalue()
        assert trace_check(write("bad.json", bad_trace)) == 1

        pb = write("base.json", bench_base)
        out = io.StringIO()
        with redirect_stdout(out):
            assert perf_gate(write("ok.json", bench_ok), pb) == 0
            assert perf_gate(write("bad.json", bench_bad), pb) == 1
            assert perf_gate(write("fast.json", bench_fast), pb) == 0
            assert perf_gate(write("lost_simd.json", bench_lost_simd),
                             pb) == 1
        gated = out.getvalue()
        assert "FAIL cdc_speedup_vs_reference" in gated, gated
        assert "WARN session_file_vs_stream_speedup" in gated, gated
        assert "FAIL sha1_batch_speedup_vs_scalar" in gated, gated
        assert "FAIL cdc_fingerprint_speedup_vs_seed" in gated, gated

        ib = write("index_base.json", index_base)
        out = io.StringIO()
        with redirect_stdout(out):
            assert perf_gate(write("index_ok.json", index_ok), ib) == 0
            assert perf_gate(write("index_bad_disk.json", index_bad_disk),
                             ib) == 1
            assert perf_gate(write("index_bad_crash.json", index_bad_crash),
                             ib) == 1
        gated = out.getvalue()
        assert "FAIL cold_disk_reads_per_lookup" in gated, gated
        assert "FAIL restart_recovery_ok" in gated, gated

    print("report.py selftest: OK")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) >= 1 and argv[0] == "--selftest":
        return selftest()
    if len(argv) == 2 and argv[0] == "show":
        return show(argv[1])
    if len(argv) == 3 and argv[0] == "diff":
        return diff(argv[1], argv[2])
    if len(argv) == 2 and argv[0] == "timeseries":
        return timeseries(argv[1])
    if len(argv) == 2 and argv[0] == "trace-check":
        return trace_check(argv[1])
    if argv and argv[0] == "perf-gate" and len(argv) in (3, 4):
        tolerance = float(argv[3]) if len(argv) == 4 else 15.0
        return perf_gate(argv[1], argv[2], tolerance)
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
