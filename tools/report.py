#!/usr/bin/env python3
"""Pretty-print and diff aadedupe telemetry run reports.

A run report is the JSON artifact emitted by the telemetry layer
(telemetry::RunReport, schema "aadedupe-run-report/v1"): build metadata,
merged metrics, per-stage span times, the per-application dedup
breakdown, and the cloud transport counters.

Usage:
  report.py show <report.json>             human-readable summary
  report.py diff <a.json> <b.json>         field-by-field comparison
  report.py timeseries <report.json>       metric snapshot curves as text
  report.py trace-check <trace.json>       validate a Chrome-trace export
  report.py perf-gate <fresh.json> <baseline.json> [tolerance_pct]
                                           bench-JSON regression gate
  report.py aggregate <report.json>... [--reports <dir>]
                                           merge quantile sketches across
                                           run reports (fleet view)
  report.py aggregate --check <fleet.json> --reports <dir>
                                           re-merge and verify against a
                                           BENCH_fleet.json aggregate
  report.py flame <folded.txt>             render profiler folded stacks
  report.py healthz <port>                 fetch /healthz from a live ops
                                           server (AAD_OPS_PORT) and
                                           pretty-print the verdict; exits
                                           1 when the process is degraded
  report.py slo <port|report.json>         SLO burn-rate table, from a
                                           live ops server or the health
                                           section of a run report
  report.py --selftest                     internal check (ctest smoke)

Exit codes: 0 ok, 1 bad input / gate or check failure, 2 usage. `diff`
exits 0 when both files parse and no gated key regressed — differing
numbers are the expected output; a regression on a GATE_KEYS key is not.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA = "aadedupe-run-report/v1"


def load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"report.py: {path}: not a JSON object")
    schema = data.get("schema")
    if schema != SCHEMA:
        print(f"# warning: {path}: schema {schema!r}, expected {SCHEMA!r}")
    return data


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"


def fmt_value(key: str, value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (int, float)) and (
            key.endswith("_bytes") or key == "bytes"):
        return fmt_bytes(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def flatten(node, prefix="") -> dict:
    """Flatten nested objects/arrays to dotted-path -> scalar."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Label application/stage rows by their natural key when present.
            tag = str(i)
            if isinstance(value, dict):
                if "partition" in value:
                    tag = value["partition"]
                elif "stage" in value:
                    tag = f"{value['stage']}/{value.get('category', '')}"
            out.update(flatten(value, f"{prefix}[{tag}]"))
    else:
        out[prefix] = node
    return out


def show(path: str) -> int:
    data = load(path)
    build = data.get("build", {})
    print(f"run report: {path}")
    print(f"  schema  : {data.get('schema')}")
    print(f"  build   : {build.get('compiler')} {build.get('build_type')} "
          f"preset={build.get('preset')} sanitizer={build.get('sanitizer')} "
          f"threads={build.get('hardware_threads')}")

    session = data.get("session")
    if session:
        print(f"  scheme  : {session.get('scheme')} "
              f"(session {session.get('latest_session')})")
        print(f"  logical : {fmt_bytes(session.get('session_bytes', 0))} in "
              f"{session.get('session_files')} files, "
              f"{session.get('session_chunks')} chunks")
        print(f"  shipped : {fmt_bytes(session.get('session_new_bytes', 0))} "
              "of container payload")
        apps = session.get("applications", [])
        if apps:
            print("  applications:")
            print(f"    {'app':8} {'chnk':5} {'hash':8} {'bytes':>10} "
                  f"{'new':>10} {'ratio':>7}")
            for app in apps:
                ratio = app.get("dedup_ratio", 0.0)
                print(f"    {app.get('partition', '?'):8} "
                      f"{app.get('chunker', '-'):5} "
                      f"{app.get('hash', '-'):8} "
                      f"{fmt_bytes(app.get('session_bytes', 0)):>10} "
                      f"{fmt_bytes(app.get('session_new_bytes', 0)):>10} "
                      f"{ratio:>7.2f}")

    stages = data.get("stages")
    if stages:
        print("  stages (wall / self / sim seconds):")
        for row in stages:
            print(f"    {row.get('stage', '?'):14} "
                  f"{row.get('category', ''):10} "
                  f"x{row.get('count', 0):<8} "
                  f"{row.get('wall_s', 0.0):9.4f} "
                  f"{row.get('self_s', 0.0):9.4f} "
                  f"{row.get('sim_s', 0.0):9.4f}")

    cloud = data.get("cloud")
    if cloud:
        store = cloud.get("store", {})
        retry = cloud.get("retry", {})
        faults = cloud.get("faults", {})
        print(f"  cloud   : {fmt_bytes(store.get('bytes_uploaded', 0))} up in "
              f"{store.get('put_requests')} puts; "
              f"retries={retry.get('retries')} "
              f"exhausted={retry.get('exhausted')} "
              f"faults={faults.get('injected_total')}")

    report = data.get("session_report")
    if report:
        print(f"  metrics : DR={report.get('dedupe_ratio', 0.0):.2f} "
              f"window={report.get('backup_window_seconds', 0.0):.1f}s "
              f"dedupe={report.get('dedupe_seconds', 0.0):.1f}s "
              f"transfer={report.get('transfer_seconds', 0.0):.1f}s")

    health = data.get("health")
    if health:
        stalled = [name for name, st in health.get("stages", {}).items()
                   if isinstance(st, dict) and st.get("stalled")]
        line = f"  health  : {health.get('status', '?')}"
        if stalled:
            line += f" (stalled: {', '.join(stalled)})"
        print(line)
        for reason in health.get("reasons", []):
            print(f"    reason: {reason}")
        print_slo_table(health.get("slo"), indent="  ")
    return 0


def diff(path_a: str, path_b: str) -> int:
    """Field-by-field comparison, a -> b. Differing numbers are the
    expected output, with one exception: a GATE_KEYS key that regressed
    (b worse than a beyond the perf-gate tolerance) makes the diff exit
    nonzero, so `diff fresh.json baseline.json`-style CI steps fail
    loudly instead of printing a delta nobody reads."""
    flat_a = flatten(load(path_a))
    flat_b = flatten(load(path_b))
    keys = sorted(set(flat_a) | set(flat_b))
    width = max((len(k) for k in keys), default=0)
    changed = 0
    regressions = []
    for key in keys:
        if key.startswith("build."):
            continue  # environment, not results
        a, b = flat_a.get(key), flat_b.get(key)
        if a == b:
            continue
        changed += 1
        last = key.rsplit(".", 1)[-1]
        sa = "-" if a is None else fmt_value(last, a)
        sb = "-" if b is None else fmt_value(last, b)
        delta = ""
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool) and a:
            delta = f"  ({100.0 * (b - a) / a:+.1f}%)"
        print(f"{key:<{width}}  {sa} -> {sb}{delta}")
        direction = GATE_KEYS.get(last)
        if direction is None or a is None or b is None:
            continue
        if direction == "true":
            if bool(a) and not bool(b):
                regressions.append(f"{key}: true -> {b!r}")
        elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
            # diff's orientation is old -> new, so the "fresh" side is b.
            regressed, _, detail = compare_gate_key(
                direction, float(b), float(a), 0.15)
            if regressed:
                regressions.append(f"{key}: {detail}")
    print(f"# {changed} field(s) differ "
          f"({len(keys)} compared, build.* ignored)")
    for entry in regressions:
        print(f"# gated regression: {entry}")
    return 1 if regressions else 0


def timeseries(path: str) -> int:
    """Render the RunReport "timeseries" section as aligned text columns."""
    data = load(path)
    ts = data.get("timeseries")
    if not ts:
        print(f"{path}: no timeseries section (set AAD_SNAPSHOT_INTERVAL_S "
              "or run a session long enough for periodic snapshots)")
        return 0
    times = ts.get("t_s", [])
    series = ts.get("series", {})
    if not isinstance(times, list) or not isinstance(series, dict):
        raise SystemExit(f"report.py: {path}: malformed timeseries section")
    names = sorted(series)
    print(f"timeseries: {len(times)} samples @ {ts.get('interval_s')}s")
    header = f"{'t_s':>10}" + "".join(f"  {n:>26}" for n in names)
    print(header)
    for i, t in enumerate(times):
        row = f"{t:>10.3f}"
        for name in names:
            column = series.get(name, [])
            value = column[i] if i < len(column) else 0
            row += f"  {value:>26.3f}" if isinstance(value, float) \
                else f"  {value:>26}"
        print(row)
    # Per-series summary: last value and max, the two numbers a human
    # actually scans curves for.
    for name in names:
        column = [v for v in series.get(name, [])
                  if isinstance(v, (int, float))]
        if column:
            print(f"# {name}: last={column[-1]:.3f} max={max(column):.3f}")
    return 0


def trace_check(path: str) -> int:
    """Validate that `path` is a well-formed Chrome-trace (Perfetto) file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")

    def bad(msg: str) -> int:
        print(f"trace-check: {path}: {msg}", file=sys.stderr)
        return 1

    if not isinstance(data, dict):
        return bad("top level is not a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return bad("missing traceEvents array")

    spans = counters = metadata = 0
    tids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return bad(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "C", "M"):
            return bad(f"event #{i}: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            return bad(f"event #{i}: missing name")
        if ph == "M":
            metadata += 1
            if not isinstance(ev.get("args"), dict):
                return bad(f"event #{i}: metadata event without args")
            continue
        # tid is required for spans but optional for counters: Chrome
        # counter events are per-process, and the exporter omits it.
        fields = ("ts", "pid", "tid") if ph == "X" else ("ts", "pid")
        for field in fields:
            if not isinstance(ev.get(field), (int, float)) \
                    or isinstance(ev.get(field), bool):
                return bad(f"event #{i}: missing numeric {field}")
        if ev["ts"] < 0:
            return bad(f"event #{i}: negative ts")
        if "tid" in ev:
            tids.add(ev["tid"])
        if ph == "X":
            spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                return bad(f"event #{i}: X event needs dur >= 0")
        else:
            counters += 1
            args = ev.get("args")
            # An empty args dict is a counter series with no samples yet
            # (e.g. a run too short for a timeline tick) — tolerated, not
            # malformed. Values that ARE present must be numeric.
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in args.values()):
                return bad(f"event #{i}: C event needs numeric args")
    if spans == 0:
        return bad("no X (span) events — empty trace")
    print(f"trace-check: {path}: OK ({spans} spans, {counters} counter "
          f"samples, {metadata} metadata events, {len(tids)} threads)")
    return 0


class Sketch:
    """Python mirror of telemetry::QuantileSketch (src/telemetry/sketch.*).

    Same bucket mapping (index = ceil(log_gamma v)), same bucket value
    (2*gamma^i/(gamma+1)), same rank walk — so merging run-report sketch
    JSON here reproduces the C++ merge: integer state (count, zeros,
    buckets) exactly, float state (sum, quantiles) to JSON round-trip
    precision.
    """

    MIN_INDEXABLE = 1e-12

    def __init__(self, alpha: float = 0.01):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"sketch alpha {alpha} out of (0,1)")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self.count = 0
        self.zeros = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        self.buckets: dict[int, int] = {}

    @classmethod
    def from_json(cls, obj: dict) -> "Sketch":
        missing = [k for k in ("alpha", "count", "zeros", "sum", "min",
                               "max") if k not in obj]
        if missing:
            raise ValueError(
                f"sketch missing field(s): {', '.join(missing)}")
        sketch = cls(float(obj["alpha"]))
        sketch.count = int(obj["count"])
        sketch.zeros = int(obj["zeros"])
        sketch.sum = float(obj["sum"])
        sketch.min = float(obj["min"])
        sketch.max = float(obj["max"])
        idx, cnt = obj.get("idx", []), obj.get("cnt", [])
        if len(idx) != len(cnt):
            raise ValueError("sketch idx/cnt length mismatch")
        sketch.buckets = {int(i): int(n) for i, n in zip(idx, cnt)}
        return sketch

    def observe(self, value: float) -> None:
        value = max(0.0, value)
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.sum += value
        if value < self.MIN_INDEXABLE:
            self.zeros += 1
            return
        index = math.ceil(math.log(value) / math.log(self.gamma))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Sketch") -> None:
        if self.alpha != other.alpha:
            raise ValueError(
                f"cannot merge sketches: alpha {self.alpha} vs {other.alpha}")
        if other.count == 0:
            return
        if self.count == 0:
            self.min, self.max = other.min, other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.zeros += other.zeros
        self.sum += other.sum
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def bucket_value(self, index: int) -> float:
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return min(max(0.0, self.min), self.max)
        cumulative = self.zeros
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return min(max(self.bucket_value(index), self.min), self.max)
        return self.max


def split_metric_name(name: str) -> tuple[str, dict]:
    """Parse a canonical instrument name `base{k1="v1",...}` back into
    (base, labels). Values may contain escaped `\\"` and `\\\\`."""
    if "{" not in name or not name.endswith("}"):
        return name, {}
    base, _, body = name.partition("{")
    labels = {}
    i, n = 0, len(body) - 1  # strip trailing }
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"malformed metric name {name!r}")
        value, j = [], eq + 2
        while body[j] != '"':
            if body[j] == "\\":
                j += 1
            value.append(body[j])
            j += 1
        labels[key] = "".join(value)
        i = j + 1
        if i < n and body[i] == ",":
            i += 1
    return base, labels


def sketch_entries(report: dict):
    """Yield (base_name, labels, Sketch) for every sketch-valued metric."""
    metrics = report.get("metrics", {})
    if not isinstance(metrics, dict):
        return
    for name, value in metrics.items():
        if isinstance(value, dict) and "alpha" in value and "idx" in value:
            base, labels = split_metric_name(name)
            yield base, labels, Sketch.from_json(value)


QUANTS = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))


def merge_reports(paths: list[str]):
    """Merge every sketch family across the given run reports.

    Returns (families, tenants): families maps base name -> Sketch merged
    over every label set in every report; tenants maps tenant label ->
    {base name -> Sketch} for the per-tenant table (the empty tenant ""
    collects unlabeled single-client reports).
    """
    families: dict[str, Sketch] = {}
    tenants: dict[str, dict[str, Sketch]] = {}
    for path in paths:
        report = load(path)
        try:
            for base, labels, sketch in sketch_entries(report):
                if base not in families:
                    families[base] = Sketch(sketch.alpha)
                families[base].merge(sketch)
                per = tenants.setdefault(labels.get("tenant", ""), {})
                if base not in per:
                    per[base] = Sketch(sketch.alpha)
                per[base].merge(sketch)
        except (KeyError, TypeError, ValueError) as exc:
            # A malformed sketch is a bad input, not a crash: name the
            # file so the user knows which artifact to regenerate.
            raise SystemExit(f"report.py: {path}: malformed sketch "
                             f"metric: {exc}")
    return families, tenants


def print_sketch_table(rows: dict, indent: str = "") -> None:
    width = max((len(k) for k in rows), default=0)
    print(f"{indent}{'family':<{width}} {'count':>8} {'mean':>11} "
          f"{'p50':>11} {'p90':>11} {'p95':>11} {'p99':>11} {'max':>11}")
    for name in sorted(rows):
        s = rows[name]
        mean = s.sum / s.count if s.count else 0.0
        cells = " ".join(f"{s.quantile(q):>11.5g}" for _, q in QUANTS)
        print(f"{indent}{name:<{width}} {s.count:>8} {mean:>11.5g} "
              f"{cells} {s.max:>11.5g}")


def close(a: float, b: float, rel: float = 1e-9) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)


def aggregate_check(fleet_path: str, report_paths: list[str]) -> int:
    """Re-merge per-tenant reports and verify a BENCH_fleet.json
    aggregate: integer sketch state must match exactly, float state to
    JSON round-trip precision (the C++ merge and this one see the same
    bucket integers; only sums/extrema pass through %.12g)."""
    try:
        fleet_doc = json.loads(Path(fleet_path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {fleet_path}: {exc}")
    expected = fleet_doc.get("fleet")
    if not isinstance(expected, dict) or not expected:
        print(f"aggregate --check: {fleet_path}: no fleet section",
              file=sys.stderr)
        return 1
    families, _ = merge_reports(report_paths)
    failures = 0

    def bad(family: str, what: str) -> None:
        nonlocal failures
        failures += 1
        print(f"FAIL {family}: {what}")

    for family, obj in expected.items():
        merged = families.get(family)
        if merged is None:
            bad(family, "absent from the merged reports")
            continue
        want = Sketch.from_json(obj)
        if (want.count, want.zeros) != (merged.count, merged.zeros):
            bad(family, f"count/zeros {merged.count}/{merged.zeros} != "
                        f"{want.count}/{want.zeros}")
            continue
        if want.buckets != merged.buckets:
            bad(family, "bucket map differs (merge is not exact)")
            continue
        for field in ("sum", "min", "max"):
            if not close(getattr(want, field), getattr(merged, field)):
                bad(family, f"{field} {getattr(merged, field)!r} != "
                            f"{getattr(want, field)!r}")
        for key, q in QUANTS:
            if key in obj and not close(float(obj[key]), merged.quantile(q)):
                bad(family, f"{key} {merged.quantile(q)!r} != {obj[key]!r}")
    extra = sorted(set(families) - set(expected))
    if extra:
        bad(",".join(extra), "merged families missing from the fleet file")
    if "fleet_dr_p50" in fleet_doc and "session.dedupe_ratio" in families:
        got = families["session.dedupe_ratio"].quantile(0.50)
        if not close(float(fleet_doc["fleet_dr_p50"]), got):
            bad("fleet_dr_p50", f"{got!r} != {fleet_doc['fleet_dr_p50']!r}")
    status = "FAILED" if failures else "OK"
    print(f"aggregate --check: {len(expected)} families over "
          f"{len(report_paths)} reports: {status}")
    return 1 if failures else 0


def aggregate(argv: list[str]) -> int:
    check_path = None
    paths: list[str] = []
    i = 0
    while i < len(argv):
        if argv[i] == "--check" and i + 1 < len(argv):
            check_path = argv[i + 1]
            i += 2
        elif argv[i] == "--reports" and i + 1 < len(argv):
            reports_dir = Path(argv[i + 1])
            if not reports_dir.is_dir():
                print(f"aggregate: --reports {reports_dir}: not a "
                      "directory", file=sys.stderr)
                return 2
            found = sorted(str(p) for p in reports_dir.glob("*.json"))
            if not found:
                print(f"aggregate: --reports {reports_dir}: no *.json "
                      "run reports in it", file=sys.stderr)
                return 2
            paths.extend(found)
            i += 2
        elif argv[i].startswith("--"):
            print(f"aggregate: unknown flag {argv[i]}", file=sys.stderr)
            return 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print("aggregate: no run reports given", file=sys.stderr)
        return 2
    if check_path is not None:
        return aggregate_check(check_path, paths)
    families, tenants = merge_reports(paths)
    if not families:
        print(f"aggregate: no sketch metrics in {len(paths)} report(s)")
        return 0
    print(f"fleet aggregate over {len(paths)} report(s):")
    print_sketch_table(families, indent="  ")
    named = {t: rows for t, rows in tenants.items() if t}
    for tenant in sorted(named):
        session_rows = {base: s for base, s in named[tenant].items()
                        if base.startswith("session.")}
        if session_rows:
            print(f"  tenant {tenant}:")
            print_sketch_table(session_rows, indent="    ")
    return 0


def flame(path: str, width: int = 50) -> int:
    """Render profiler folded stacks (AAD_PROFILE_OUT) as a text table:
    per-stack share with a bar, then per-leaf-frame self share."""
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")
    stacks: dict[str, int] = {}
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            print(f"flame: {path}:{lineno}: malformed folded line "
                  f"{line!r}", file=sys.stderr)
            return 1
        stacks[stack] = stacks.get(stack, 0) + int(count)
    total = sum(stacks.values())
    if total == 0:
        print(f"flame: {path}: no samples (run longer or lower "
              "AAD_PROFILE_PERIOD_US)")
        return 0
    print(f"flame: {total} samples, {len(stacks)} distinct stacks")
    for stack, count in sorted(stacks.items(), key=lambda kv: -kv[1]):
        share = count / total
        bar = "#" * max(1, round(share * width))
        print(f"  {100.0 * share:6.2f}% {count:>8}  {bar:<{width}}  {stack}")
    leaves: dict[str, int] = {}
    for stack, count in stacks.items():
        leaf = stack.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + count
    print("  self time by leaf frame:")
    for leaf, count in sorted(leaves.items(), key=lambda kv: -kv[1]):
        print(f"    {100.0 * count / total:6.2f}% {count:>8}  {leaf}")
    return 0


def print_slo_table(slo_doc, indent: str = "") -> None:
    """Render a HealthMonitor slo section (live /healthz or the health
    section of a run report)."""
    if not isinstance(slo_doc, dict):
        return
    tenants = slo_doc.get("tenants", {})
    if not tenants:
        return
    print(f"{indent}slo: fast window {slo_doc.get('fast_window_s', 0):g}s / "
          f"slow {slo_doc.get('slow_window_s', 0):g}s, error budget "
          f"{slo_doc.get('error_budget', 0):g}, alert at fast burn "
          f">= {slo_doc.get('fast_burn_alert', 0):g}")
    print(f"{indent}  {'tenant':10} {'sessions':>8} {'violations':>10} "
          f"{'fast_burn':>9} {'slow_burn':>9}")
    for name in sorted(tenants):
        t = tenants[name]
        print(f"{indent}  {name:10} {t.get('sessions', 0):>8} "
              f"{t.get('violations', 0):>10} "
              f"{t.get('fast_burn', 0.0):>9.2f} "
              f"{t.get('slow_burn', 0.0):>9.2f}")


def fetch_ops_json(port: str, endpoint: str) -> tuple[int, dict]:
    """GET a JSON endpoint from a live ops server (AAD_OPS_PORT; the
    server binds loopback only). Returns (http_status, parsed_body) —
    /healthz answers 503 with a JSON body when degraded, so an HTTP
    error status is a payload, not a fetch failure."""
    import urllib.error
    import urllib.request
    url = f"http://127.0.0.1:{int(port)}{endpoint}"
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            status, body = resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        status, body = exc.code, exc.read()
    except (OSError, ValueError) as exc:
        raise SystemExit(f"report.py: cannot fetch {url}: {exc} — is the "
                         "process running with AAD_OPS_PORT set?")
    try:
        return status, json.loads(body)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"report.py: {url}: not JSON: {exc}")


def healthz(port: str) -> int:
    """Fetch and pretty-print /healthz; exit 1 when degraded (mirrors
    the endpoint's 200/503 split so scripts can gate on it)."""
    status, doc = fetch_ops_json(port, "/healthz")
    print(f"healthz (port {int(port)}): {doc.get('status', '?')} "
          f"[HTTP {status}]")
    for reason in doc.get("reasons", []):
        print(f"  reason: {reason}")
    stages = doc.get("stages", {})
    if stages:
        print(f"  {'stage':14} {'live':>5} {'opened':>8} {'closed':>8} "
              f"{'idle_s':>9} {'deadline':>9}  stalled")
        for name, st in stages.items():
            print(f"  {name:14} {st.get('live', 0):>5} "
                  f"{st.get('opened', 0):>8} {st.get('closed', 0):>8} "
                  f"{st.get('idle_s', 0.0):>9.2f} "
                  f"{st.get('deadline_s', 0.0):>9.1f}  "
                  f"{'STALLED' if st.get('stalled') else '-'}")
    print_slo_table(doc.get("slo"), indent="  ")
    return 1 if doc.get("status") != "ok" else 0


def slo(target: str) -> int:
    """SLO burn-rate table from a live ops server (numeric port) or the
    health section of a run report (path)."""
    if target.isdigit():
        _, doc = fetch_ops_json(target, "/healthz")
        slo_doc = doc.get("slo")
    else:
        health = load(target).get("health")
        if not isinstance(health, dict):
            print(f"slo: {target}: no health section (run with "
                  "AAD_OPS_PORT or an AAD_SLO_* knob set)", file=sys.stderr)
            return 1
        slo_doc = health.get("slo")
    if not isinstance(slo_doc, dict) or not slo_doc.get("tenants"):
        print("slo: no SLO observations yet (set AAD_SLO_BACKUP_WINDOW_S "
              "or AAD_SLO_BYTES_SAVED_PER_S and run sessions)")
        return 0
    print_slo_table(slo_doc)
    return 0


# Bench-JSON keys that are meaningful across machines: ratios of two
# measurements taken on the same host, not absolute MB/s. `higher`/`lower`
# mark direction; pct keys are compared in absolute percentage points
# with a 2-point noise floor (2% telemetry overhead is the acceptance
# ceiling, so a 2-point swing is the smallest actionable regression);
# `true` keys are pass/fail booleans. One dict serves every bench file
# (BENCH_chunking.json, BENCH_index.json) — keys a file does not carry
# are skipped with a note.
GATE_KEYS = {
    # BENCH_chunking.json (fingerprinting hot path)
    "cdc_speedup_vs_reference": "higher",
    "session_file_vs_stream_speedup": "higher",
    "telemetry_overhead_pct_cdc_fingerprint": "lower_pct",
    "profiler_overhead_pct_cdc_fingerprint": "lower_pct",
    "ops_overhead_pct_cdc_fingerprint": "lower_pct",
    # Batched hash engine (PR 7): best compiled SIMD rung vs the scalar
    # rung measured in the same process, and the end-to-end dynamic-path
    # chunk+fingerprint throughput vs the recorded pre-engine seed.
    "sha1_batch_speedup_vs_scalar": "higher",
    "md5_batch_speedup_vs_scalar": "higher",
    "cdc_fingerprint_speedup_vs_seed": "higher",
    # BENCH_index.json (log-structured index)
    "bloom_cold_filter_rate": "higher",
    "hot_cache_hit_rate": "higher",
    "cold_disk_reads_per_lookup": "lower",
    "restart_recovery_ok": "true",
    "rss_bounded": "true",
    # BENCH_fleet.json (fleet observability): the fleet's median dedup
    # ratio is dataset + chunking, no wall clock — byte-exact across
    # hosts given the same seed/scale.
    "fleet_dr_p50": "higher",
}

# Absolute acceptance ceilings, gated on the fresh file alone: a slowly
# drifting baseline must never ratchet the observability tax above the
# 2% budget the instrumentation was accepted under.
GATE_CEILINGS = {
    "telemetry_overhead_pct_cdc_fingerprint": 2.0,
    "profiler_overhead_pct_cdc_fingerprint": 2.0,
    # The enabled-but-idle ops plane (HealthMonitor span hooks + a
    # listening-but-unscraped OpsServer) was accepted under a 1% budget.
    "ops_overhead_pct_cdc_fingerprint": 1.0,
}


def compare_gate_key(direction: str, f: float, b: float, tol: float):
    """Direction-aware regression test shared by perf-gate and diff.
    Returns (regressed, improved, detail)."""
    if direction == "lower_pct":
        # Percentage-point deltas; lower is better.
        slack = max(abs(b) * tol, 2.0)
        return (f > b + slack, f < b - slack,
                f"{b:.2f} -> {f:.2f} points (slack {slack:.2f})")
    if direction == "lower":
        # Absolute-delta slack floor: a baseline of ~zero (the bloom
        # filter absorbing everything) must not turn any nonzero fresh
        # value into a failure.
        slack = max(abs(b) * tol, 0.02)
        return (f > b + slack, f < b - slack,
                f"{b:.4f} -> {f:.4f} (slack {slack:.4f})")
    delta = 100.0 * (f - b) / b if b else 0.0
    return (f < b * (1.0 - tol), f > b * (1.0 + tol),
            f"{b:.3f} -> {f:.3f} ({delta:+.1f}%)")


def perf_gate(fresh_path: str, base_path: str,
              tolerance_pct: float = 15.0) -> int:
    def load_bench(path: str) -> dict:
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"report.py: cannot read {path}: {exc}")
        if not isinstance(data, dict):
            raise SystemExit(f"report.py: {path}: not a JSON object")
        return data

    fresh, base = load_bench(fresh_path), load_bench(base_path)
    tol = tolerance_pct / 100.0
    failures = warnings = compared = 0
    for key, direction in GATE_KEYS.items():
        if key not in fresh or key not in base:
            print(f"# perf-gate: {key}: missing "
                  f"({'fresh' if key not in fresh else 'baseline'}), skipped")
            continue
        if direction == "true":
            # Pass/fail invariants (crash recovery, RSS bound): fresh must
            # hold regardless of the baseline.
            compared += 1
            if bool(fresh[key]):
                print(f"  ok {key}: true")
            else:
                failures += 1
                print(f"FAIL {key}: expected true, got {fresh[key]!r}")
            continue
        f, b = float(fresh[key]), float(base[key])
        compared += 1
        regressed, improved, detail = compare_gate_key(direction, f, b, tol)
        ceiling = GATE_CEILINGS.get(key)
        if ceiling is not None and f > ceiling:
            failures += 1
            print(f"FAIL {key}: {f:.2f} exceeds the absolute ceiling "
                  f"{ceiling:.2f} ({detail})")
        elif regressed:
            failures += 1
            print(f"FAIL {key}: {detail}")
        elif improved:
            warnings += 1
            print(f"WARN {key}: improved beyond tolerance, baseline is "
                  f"stale: {detail}")
        else:
            print(f"  ok {key}: {detail}")
    if compared == 0:
        print("perf-gate: no comparable keys — failing", file=sys.stderr)
        return 1
    print(f"# perf-gate: {compared} compared, {failures} regression(s), "
          f"{warnings} warning(s), tolerance ±{tolerance_pct:.0f}%")
    return 1 if failures else 0


def selftest() -> int:
    a = {
        "schema": SCHEMA,
        "build": {"compiler": "x", "build_type": "Release",
                  "preset": "default", "sanitizer": "OFF",
                  "hardware_threads": 8},
        "session": {
            "scheme": "AA-Dedupe", "latest_session": 0,
            "session_bytes": 1024, "session_files": 2, "session_chunks": 3,
            "session_new_bytes": 512,
            "applications": [
                {"partition": "doc", "chunker": "cdc", "hash": "sha1",
                 "session_bytes": 1024, "session_new_bytes": 512,
                 "dedup_ratio": 2.0}],
        },
        "stages": [{"stage": "chunk", "category": "doc", "count": 1,
                    "wall_s": 0.5, "self_s": 0.5, "sim_s": 0.0}],
        "cloud": {"store": {"bytes_uploaded": 600, "put_requests": 2},
                  "retry": {"retries": 0, "exhausted": 0},
                  "faults": {"injected_total": 0}},
        "session_report": {"dedupe_ratio": 2.0,
                           "backup_window_seconds": 1.0,
                           "dedupe_seconds": 1.0, "transfer_seconds": 0.5},
    }
    b = json.loads(json.dumps(a))
    b["session"]["session_new_bytes"] = 256
    b["build"]["compiler"] = "y"  # must be ignored by diff

    import io
    import tempfile
    from contextlib import redirect_stderr, redirect_stdout

    with tempfile.TemporaryDirectory() as tmp:
        pa, pb = Path(tmp) / "a.json", Path(tmp) / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))

        out = io.StringIO()
        with redirect_stdout(out):
            assert show(str(pa)) == 0
        shown = out.getvalue()
        assert "AA-Dedupe" in shown and "chunk" in shown, shown

        out = io.StringIO()
        with redirect_stdout(out):
            assert diff(str(pa), str(pb)) == 0
        diffed = out.getvalue()
        assert "session.session_new_bytes" in diffed, diffed
        assert "-50.0%" in diffed, diffed
        assert "compiler" not in diffed, diffed
        assert "# 1 field(s) differ" in diffed, diffed

    flat = flatten(a)
    assert flat["session.applications[doc].dedup_ratio"] == 2.0
    assert flat["stages[chunk/doc].wall_s"] == 0.5

    # timeseries rendering
    ts_report = {
        "schema": SCHEMA,
        "timeseries": {"interval_s": 1.0, "t_s": [0.0, 1.0, 2.0],
                       "series": {"container.bytes": [0, 100, 250],
                                  "pipeline.queue_depth": [1, 3, 2]}},
    }
    # valid + broken Chrome traces
    good_trace = {"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
         "args": {"name": "thread 0001"}},
        {"ph": "X", "name": "chunk", "cat": "doc", "ts": 0.0, "dur": 125.0,
         "pid": 1, "tid": 0, "args": {"self_s": 0.0001}},
        {"ph": "C", "name": "container.bytes", "ts": 10.0, "pid": 1,
         "tid": 0, "args": {"container.bytes": 4096}},
    ], "displayTimeUnit": "ms"}
    bad_trace = {"traceEvents": [{"ph": "X", "name": "chunk", "ts": 0.0,
                                  "pid": 1, "tid": 0}]}  # no dur
    # perf-gate fixtures: ok, regression, improvement
    bench_base = {"cdc_speedup_vs_reference": 4.0,
                  "session_file_vs_stream_speedup": 2.0,
                  "telemetry_overhead_pct_cdc_fingerprint": 1.0,
                  "sha1_batch_speedup_vs_scalar": 8.0,
                  "md5_batch_speedup_vs_scalar": 4.5,
                  "cdc_fingerprint_speedup_vs_seed": 7.0}
    bench_ok = dict(bench_base, cdc_speedup_vs_reference=4.2)
    bench_bad = dict(bench_base, cdc_speedup_vs_reference=2.0)
    bench_fast = dict(bench_base, session_file_vs_stream_speedup=3.5)
    # A SIMD rung falling off the dispatch ladder (e.g. a build that lost
    # -mavx2) must trip the batch-speedup gate.
    bench_lost_simd = dict(bench_base, sha1_batch_speedup_vs_scalar=1.0,
                           cdc_fingerprint_speedup_vs_seed=2.0)
    # BENCH_index.json fixtures: the `lower` slack floor must tolerate a
    # near-zero baseline, and `true` keys gate on the fresh file alone.
    index_base = {"bloom_cold_filter_rate": 0.99,
                  "hot_cache_hit_rate": 0.97,
                  "cold_disk_reads_per_lookup": 0.0,
                  "restart_recovery_ok": True,
                  "rss_bounded": True}
    index_ok = dict(index_base, cold_disk_reads_per_lookup=0.01)
    index_bad_disk = dict(index_base, cold_disk_reads_per_lookup=0.5)
    index_bad_crash = dict(index_base, restart_recovery_ok=False)

    with tempfile.TemporaryDirectory() as tmp:
        write = lambda name, obj: (  # noqa: E731
            (Path(tmp) / name).write_text(json.dumps(obj)),
            str(Path(tmp) / name))[1]
        ts_path = write("ts.json", ts_report)
        out = io.StringIO()
        with redirect_stdout(out):
            assert timeseries(ts_path) == 0
        rendered = out.getvalue()
        assert "container.bytes" in rendered, rendered
        assert "3 samples" in rendered, rendered
        assert "last=250.000" in rendered, rendered

        out = io.StringIO()
        with redirect_stdout(out):
            assert trace_check(write("good.json", good_trace)) == 0
        assert "1 spans" in out.getvalue(), out.getvalue()
        assert trace_check(write("bad.json", bad_trace)) == 1

        pb = write("base.json", bench_base)
        out = io.StringIO()
        with redirect_stdout(out):
            assert perf_gate(write("ok.json", bench_ok), pb) == 0
            assert perf_gate(write("bad.json", bench_bad), pb) == 1
            assert perf_gate(write("fast.json", bench_fast), pb) == 0
            assert perf_gate(write("lost_simd.json", bench_lost_simd),
                             pb) == 1
        gated = out.getvalue()
        assert "FAIL cdc_speedup_vs_reference" in gated, gated
        assert "WARN session_file_vs_stream_speedup" in gated, gated
        assert "FAIL sha1_batch_speedup_vs_scalar" in gated, gated
        assert "FAIL cdc_fingerprint_speedup_vs_seed" in gated, gated

        ib = write("index_base.json", index_base)
        out = io.StringIO()
        with redirect_stdout(out):
            assert perf_gate(write("index_ok.json", index_ok), ib) == 0
            assert perf_gate(write("index_bad_disk.json", index_bad_disk),
                             ib) == 1
            assert perf_gate(write("index_bad_crash.json", index_bad_crash),
                             ib) == 1
        gated = out.getvalue()
        assert "FAIL cold_disk_reads_per_lookup" in gated, gated
        assert "FAIL restart_recovery_ok" in gated, gated

        # The absolute overhead ceiling gates the fresh file even when the
        # baseline already sits above it (no ratcheting past 2%).
        over = {"telemetry_overhead_pct_cdc_fingerprint": 3.0}
        out = io.StringIO()
        with redirect_stdout(out):
            assert perf_gate(write("over.json", over),
                             write("over_base.json", over)) == 1
        assert "absolute ceiling" in out.getvalue(), out.getvalue()

        # diff exits nonzero on a gated regression, zero on plain churn.
        out = io.StringIO()
        with redirect_stdout(out):
            assert diff(write("dbase.json", bench_base),
                        write("dbad.json", bench_bad)) == 1
            assert diff(write("dbase2.json", bench_base),
                        write("dok.json", bench_ok)) == 0
        assert "# gated regression: cdc_speedup_vs_reference" \
            in out.getvalue(), out.getvalue()

        # C events with an empty args dict (counter series with no
        # samples) are tolerated.
        empty_counter = {"traceEvents": [
            {"ph": "X", "name": "chunk", "ts": 0.0, "dur": 1.0,
             "pid": 1, "tid": 0},
            {"ph": "C", "name": "container.bytes", "ts": 0.0, "pid": 1,
             "args": {}},
        ]}
        out = io.StringIO()
        with redirect_stdout(out):
            assert trace_check(write("empty_c.json", empty_counter)) == 0

    # Sketch mirror: relative accuracy, exactness of merge, canonical-name
    # parsing — the Python half of the C++ <-> Python aggregate contract.
    import random
    rng = random.Random(20110926)
    values = [rng.lognormvariate(0.0, 2.0) for _ in range(4000)] + [0.0] * 7
    whole, left, right = Sketch(), Sketch(), Sketch()
    for i, v in enumerate(values):
        whole.observe(v)
        (left if i % 2 else right).observe(v)
    left.merge(right)
    assert left.count == whole.count and left.buckets == whole.buckets
    ordered = sorted(values)
    for q in (0.5, 0.9, 0.95, 0.99):
        exact = ordered[max(1, math.ceil(q * len(ordered))) - 1]
        got = whole.quantile(q)
        assert abs(got - exact) <= 0.0101 * exact + 1e-12, (q, got, exact)
        assert abs(left.quantile(q) - got) <= 1e-12 * max(1.0, got)
    base_name, labels = split_metric_name(
        'session.dedupe_ratio{scheme="AA-Dedupe",tenant="t00"}')
    assert base_name == "session.dedupe_ratio"
    assert labels == {"scheme": "AA-Dedupe", "tenant": "t00"}
    assert split_metric_name("plain.counter") == ("plain.counter", {})
    esc_base, esc = split_metric_name('m{k="a\\"b\\\\c"}')
    assert esc_base == "m" and esc == {"k": 'a"b\\c'}, esc

    def sketch_json(sketch: Sketch) -> dict:
        idx = sorted(sketch.buckets)
        return {"alpha": sketch.alpha, "count": sketch.count,
                "sum": sketch.sum, "min": sketch.min, "max": sketch.max,
                "mean": sketch.sum / sketch.count if sketch.count else 0.0,
                "p50": sketch.quantile(0.5), "p90": sketch.quantile(0.9),
                "p95": sketch.quantile(0.95), "p99": sketch.quantile(0.99),
                "zeros": sketch.zeros, "idx": idx,
                "cnt": [sketch.buckets[i] for i in idx]}

    # aggregate + --check round trip over two synthetic tenant reports.
    t0, t1 = Sketch(), Sketch()
    for v in (2.0, 4.0, 8.0):
        t0.observe(v)
    for v in (1.0, 16.0):
        t1.observe(v)
    fleet_sketch = Sketch()
    fleet_sketch.merge(t0)
    fleet_sketch.merge(t1)
    report0 = {"schema": SCHEMA, "metrics": {
        'session.dedupe_ratio{scheme="AA-Dedupe",tenant="t00"}':
            sketch_json(t0)}}
    report1 = {"schema": SCHEMA, "metrics": {
        'session.dedupe_ratio{scheme="AA-Dedupe",tenant="t01"}':
            sketch_json(t1)}}
    fleet_doc = {"benchmark": "fleet observability",
                 "fleet": {"session.dedupe_ratio": sketch_json(fleet_sketch)},
                 "fleet_dr_p50": fleet_sketch.quantile(0.5)}
    bad_fleet = json.loads(json.dumps(fleet_doc))
    bad_fleet["fleet"]["session.dedupe_ratio"]["cnt"][0] += 1

    with tempfile.TemporaryDirectory() as tmp:
        write = lambda name, obj: (  # noqa: E731
            (Path(tmp) / name).write_text(json.dumps(obj)),
            str(Path(tmp) / name))[1]
        reports_dir = Path(tmp) / "reports"
        reports_dir.mkdir()
        r0 = write("reports/t00.json", report0)
        r1 = write("reports/t01.json", report1)
        fp = write("fleet.json", fleet_doc)
        out = io.StringIO()
        with redirect_stdout(out):
            assert aggregate([r0, r1]) == 0
        table = out.getvalue()
        assert "session.dedupe_ratio" in table, table
        assert "tenant t01" in table, table
        out = io.StringIO()
        with redirect_stdout(out):
            assert aggregate(["--check", fp, "--reports",
                              str(reports_dir)]) == 0
            assert aggregate(["--check", write("bad_fleet.json", bad_fleet),
                              r0, r1]) == 1
        assert "bucket map differs" in out.getvalue(), out.getvalue()

        folded = "chunk;hash@doc 40\nchunk 40\nuntraced 20\n"
        (Path(tmp) / "prof.folded").write_text(folded)
        out = io.StringIO()
        with redirect_stdout(out):
            assert flame(str(Path(tmp) / "prof.folded")) == 0
        flamed = out.getvalue()
        assert "100 samples" in flamed, flamed
        assert "40.00%" in flamed and "hash@doc" in flamed, flamed

        # Empty folded input degrades to a message, not a traceback.
        (Path(tmp) / "empty.folded").write_text("")
        out = io.StringIO()
        with redirect_stdout(out):
            assert flame(str(Path(tmp) / "empty.folded")) == 0
        assert "no samples" in out.getvalue(), out.getvalue()

        # A malformed sketch (missing "count") exits with the file name,
        # not a KeyError traceback.
        broken = json.loads(json.dumps(report0))
        key = next(iter(broken["metrics"]))
        del broken["metrics"][key]["count"]
        bad_path = write("broken.json", broken)
        try:
            aggregate([bad_path])
            raise AssertionError("malformed sketch did not exit")
        except SystemExit as exc:
            assert "broken.json" in str(exc) and "count" in str(exc), exc

        # --reports on a missing/empty directory names the directory.
        err = io.StringIO()
        with redirect_stderr(err):
            assert aggregate(["--reports", str(Path(tmp) / "nodir")]) == 2
        assert "nodir" in err.getvalue(), err.getvalue()
        (Path(tmp) / "emptydir").mkdir()
        err = io.StringIO()
        with redirect_stderr(err):
            assert aggregate(["--reports", str(Path(tmp) / "emptydir")]) == 2
        assert "emptydir" in err.getvalue(), err.getvalue()

        # show renders the health section; slo reads it from a report.
        health_report = {
            "schema": SCHEMA,
            "build": {"compiler": "x", "build_type": "Release"},
            "health": {
                "status": "degraded",
                "reasons": ["stage upload stalled"],
                "stages": {"upload": {"live": 1, "opened": 3, "closed": 2,
                                      "stalled": True, "idle_s": 45.0,
                                      "deadline_s": 30.0}},
                "slo": {"fast_window_s": 300, "slow_window_s": 3600,
                        "error_budget": 0.1, "fast_burn_alert": 2.0,
                        "tenants": {"default": {
                            "backup_window_s": 30.0,
                            "bytes_saved_per_s": 0.0, "sessions": 10,
                            "violations": 4, "fast_burn": 4.0,
                            "slow_burn": 4.0, "fast_n": 10,
                            "slow_n": 10}}}}}
        hp = write("health_report.json", health_report)
        out = io.StringIO()
        with redirect_stdout(out):
            assert show(hp) == 0
        shown = out.getvalue()
        assert "degraded" in shown and "stalled: upload" in shown, shown
        assert "fast_burn" in shown, shown
        out = io.StringIO()
        with redirect_stdout(out):
            assert slo(hp) == 0
        assert "4.00" in out.getvalue(), out.getvalue()
        # A report without a health section is a clear error, not silence.
        err = io.StringIO()
        with redirect_stderr(err):
            assert slo(r0) == 1
        assert "no health section" in err.getvalue(), err.getvalue()

    print("report.py selftest: OK")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) >= 1 and argv[0] == "--selftest":
        return selftest()
    if len(argv) == 2 and argv[0] == "show":
        return show(argv[1])
    if len(argv) == 3 and argv[0] == "diff":
        return diff(argv[1], argv[2])
    if len(argv) == 2 and argv[0] == "timeseries":
        return timeseries(argv[1])
    if len(argv) == 2 and argv[0] == "trace-check":
        return trace_check(argv[1])
    if argv and argv[0] == "perf-gate" and len(argv) in (3, 4):
        tolerance = float(argv[3]) if len(argv) == 4 else 15.0
        return perf_gate(argv[1], argv[2], tolerance)
    if len(argv) >= 2 and argv[0] == "aggregate":
        return aggregate(argv[1:])
    if len(argv) == 2 and argv[0] == "flame":
        return flame(argv[1])
    if len(argv) == 2 and argv[0] == "healthz":
        return healthz(argv[1])
    if len(argv) == 2 and argv[0] == "slo":
        return slo(argv[1])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
