#!/usr/bin/env python3
"""Pretty-print and diff aadedupe telemetry run reports.

A run report is the JSON artifact emitted by the telemetry layer
(telemetry::RunReport, schema "aadedupe-run-report/v1"): build metadata,
merged metrics, per-stage span times, the per-application dedup
breakdown, and the cloud transport counters.

Usage:
  report.py show <report.json>             human-readable summary
  report.py diff <a.json> <b.json>         field-by-field comparison
  report.py --selftest                     internal check (ctest smoke)

Exit codes: 0 ok, 1 bad input, 2 usage. `diff` always exits 0 when both
files parse — differing numbers are the expected output, not an error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "aadedupe-run-report/v1"


def load(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report.py: cannot read {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"report.py: {path}: not a JSON object")
    schema = data.get("schema")
    if schema != SCHEMA:
        print(f"# warning: {path}: schema {schema!r}, expected {SCHEMA!r}")
    return data


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"


def fmt_value(key: str, value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (int, float)) and (
            key.endswith("_bytes") or key == "bytes"):
        return fmt_bytes(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def flatten(node, prefix="") -> dict:
    """Flatten nested objects/arrays to dotted-path -> scalar."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Label application/stage rows by their natural key when present.
            tag = str(i)
            if isinstance(value, dict):
                if "partition" in value:
                    tag = value["partition"]
                elif "stage" in value:
                    tag = f"{value['stage']}/{value.get('category', '')}"
            out.update(flatten(value, f"{prefix}[{tag}]"))
    else:
        out[prefix] = node
    return out


def show(path: str) -> int:
    data = load(path)
    build = data.get("build", {})
    print(f"run report: {path}")
    print(f"  schema  : {data.get('schema')}")
    print(f"  build   : {build.get('compiler')} {build.get('build_type')} "
          f"preset={build.get('preset')} sanitizer={build.get('sanitizer')} "
          f"threads={build.get('hardware_threads')}")

    session = data.get("session")
    if session:
        print(f"  scheme  : {session.get('scheme')} "
              f"(session {session.get('latest_session')})")
        print(f"  logical : {fmt_bytes(session.get('session_bytes', 0))} in "
              f"{session.get('session_files')} files, "
              f"{session.get('session_chunks')} chunks")
        print(f"  shipped : {fmt_bytes(session.get('session_new_bytes', 0))} "
              "of container payload")
        apps = session.get("applications", [])
        if apps:
            print("  applications:")
            print(f"    {'app':8} {'chnk':5} {'hash':8} {'bytes':>10} "
                  f"{'new':>10} {'ratio':>7}")
            for app in apps:
                ratio = app.get("dedup_ratio", 0.0)
                print(f"    {app.get('partition', '?'):8} "
                      f"{app.get('chunker', '-'):5} "
                      f"{app.get('hash', '-'):8} "
                      f"{fmt_bytes(app.get('session_bytes', 0)):>10} "
                      f"{fmt_bytes(app.get('session_new_bytes', 0)):>10} "
                      f"{ratio:>7.2f}")

    stages = data.get("stages")
    if stages:
        print("  stages (wall / self / sim seconds):")
        for row in stages:
            print(f"    {row.get('stage', '?'):14} "
                  f"{row.get('category', ''):10} "
                  f"x{row.get('count', 0):<8} "
                  f"{row.get('wall_s', 0.0):9.4f} "
                  f"{row.get('self_s', 0.0):9.4f} "
                  f"{row.get('sim_s', 0.0):9.4f}")

    cloud = data.get("cloud")
    if cloud:
        store = cloud.get("store", {})
        retry = cloud.get("retry", {})
        faults = cloud.get("faults", {})
        print(f"  cloud   : {fmt_bytes(store.get('bytes_uploaded', 0))} up in "
              f"{store.get('put_requests')} puts; "
              f"retries={retry.get('retries')} "
              f"exhausted={retry.get('exhausted')} "
              f"faults={faults.get('injected_total')}")

    report = data.get("session_report")
    if report:
        print(f"  metrics : DR={report.get('dedupe_ratio', 0.0):.2f} "
              f"window={report.get('backup_window_seconds', 0.0):.1f}s "
              f"dedupe={report.get('dedupe_seconds', 0.0):.1f}s "
              f"transfer={report.get('transfer_seconds', 0.0):.1f}s")
    return 0


def diff(path_a: str, path_b: str) -> int:
    flat_a = flatten(load(path_a))
    flat_b = flatten(load(path_b))
    keys = sorted(set(flat_a) | set(flat_b))
    width = max((len(k) for k in keys), default=0)
    changed = 0
    for key in keys:
        if key.startswith("build."):
            continue  # environment, not results
        a, b = flat_a.get(key), flat_b.get(key)
        if a == b:
            continue
        changed += 1
        last = key.rsplit(".", 1)[-1]
        sa = "-" if a is None else fmt_value(last, a)
        sb = "-" if b is None else fmt_value(last, b)
        delta = ""
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool) and a:
            delta = f"  ({100.0 * (b - a) / a:+.1f}%)"
        print(f"{key:<{width}}  {sa} -> {sb}{delta}")
    print(f"# {changed} field(s) differ "
          f"({len(keys)} compared, build.* ignored)")
    return 0


def selftest() -> int:
    a = {
        "schema": SCHEMA,
        "build": {"compiler": "x", "build_type": "Release",
                  "preset": "default", "sanitizer": "OFF",
                  "hardware_threads": 8},
        "session": {
            "scheme": "AA-Dedupe", "latest_session": 0,
            "session_bytes": 1024, "session_files": 2, "session_chunks": 3,
            "session_new_bytes": 512,
            "applications": [
                {"partition": "doc", "chunker": "cdc", "hash": "sha1",
                 "session_bytes": 1024, "session_new_bytes": 512,
                 "dedup_ratio": 2.0}],
        },
        "stages": [{"stage": "chunk", "category": "doc", "count": 1,
                    "wall_s": 0.5, "self_s": 0.5, "sim_s": 0.0}],
        "cloud": {"store": {"bytes_uploaded": 600, "put_requests": 2},
                  "retry": {"retries": 0, "exhausted": 0},
                  "faults": {"injected_total": 0}},
        "session_report": {"dedupe_ratio": 2.0,
                           "backup_window_seconds": 1.0,
                           "dedupe_seconds": 1.0, "transfer_seconds": 0.5},
    }
    b = json.loads(json.dumps(a))
    b["session"]["session_new_bytes"] = 256
    b["build"]["compiler"] = "y"  # must be ignored by diff

    import io
    import tempfile
    from contextlib import redirect_stdout

    with tempfile.TemporaryDirectory() as tmp:
        pa, pb = Path(tmp) / "a.json", Path(tmp) / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))

        out = io.StringIO()
        with redirect_stdout(out):
            assert show(str(pa)) == 0
        shown = out.getvalue()
        assert "AA-Dedupe" in shown and "chunk" in shown, shown

        out = io.StringIO()
        with redirect_stdout(out):
            assert diff(str(pa), str(pb)) == 0
        diffed = out.getvalue()
        assert "session.session_new_bytes" in diffed, diffed
        assert "-50.0%" in diffed, diffed
        assert "compiler" not in diffed, diffed
        assert "# 1 field(s) differ" in diffed, diffed

    flat = flatten(a)
    assert flat["session.applications[doc].dedup_ratio"] == 2.0
    assert flat["stages[chunk/doc].wall_s"] == 0.5
    print("report.py selftest: OK")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) >= 1 and argv[0] == "--selftest":
        return selftest()
    if len(argv) == 2 and argv[0] == "show":
        return show(argv[1])
    if len(argv) == 3 and argv[0] == "diff":
        return diff(argv[1], argv[2])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
