#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over every first-party translation
# unit listed in compile_commands.json. Exits non-zero on any diagnostic —
# the CI "tidy" job gates on this script.
#
# Usage: tools/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args...]
#
#   BUILD_DIR   directory containing compile_commands.json
#               (default: build-tidy, then build)
#
# Environment:
#   CLANG_TIDY  binary to use (default: first of clang-tidy,
#               clang-tidy-{19..14} on PATH)
#   TIDY_JOBS   parallelism (default: nproc)
#   TIDY_STRICT set to 1 to fail (exit 2) when clang-tidy is not installed;
#               by default a missing binary is a skip (exit 0) so developer
#               machines without LLVM can still run the full ctest suite.

set -u -o pipefail

cd "$(dirname "$0")/.."

# ---- locate clang-tidy -----------------------------------------------------
TIDY_BIN="${CLANG_TIDY:-}"
if [[ -z "${TIDY_BIN}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      TIDY_BIN="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY_BIN}" ]]; then
  if [[ "${TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_tidy: clang-tidy not found and TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run_tidy: clang-tidy not found on PATH; skipping (set TIDY_STRICT=1 to fail)"
  exit 0
fi

# ---- locate compile_commands.json ------------------------------------------
BUILD_DIR=""
EXTRA_ARGS=()
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
  EXTRA_ARGS=("$@")
fi
if [[ -z "${BUILD_DIR}" ]]; then
  for candidate in build-tidy build; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      BUILD_DIR="${candidate}"
      break
    fi
  done
fi
if [[ -z "${BUILD_DIR}" || ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_tidy: no compile_commands.json (configure with the 'tidy' preset:" >&2
  echo "  cmake --preset tidy && cmake --build --preset tidy)" >&2
  exit 2
fi

# ---- collect first-party TUs ----------------------------------------------
# Scope: the library proper. Tests/bench/examples inherit the headers via
# HeaderFilterRegex when they are tidied locally, but the CI gate is src/.
mapfile -t FILES < <(find src -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy: no sources found under src/" >&2
  exit 2
fi

JOBS="${TIDY_JOBS:-$(nproc)}"
echo "run_tidy: ${TIDY_BIN} over ${#FILES[@]} TUs (compile db: ${BUILD_DIR}, jobs: ${JOBS})"

# run-clang-tidy ships with LLVM but not under a stable name everywhere;
# xargs gives us the same parallelism without the wrapper dependency.
LOG="$(mktemp)"
trap 'rm -f "${LOG}"' EXIT
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 4 \
    "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet "${EXTRA_ARGS[@]}" \
    >"${LOG}" 2>&1
STATUS=$?

# clang-tidy is chatty on stderr even with --quiet; only surface real
# diagnostics ("warning:"/"error:" lines and their context).
if grep -qE '(warning|error):' "${LOG}"; then
  cat "${LOG}"
  COUNT="$(grep -cE '(warning|error):' "${LOG}")"
  echo "run_tidy: FAIL — ${COUNT} diagnostic(s)"
  exit 1
fi
if [[ ${STATUS} -ne 0 ]]; then
  cat "${LOG}"
  echo "run_tidy: FAIL — clang-tidy exited ${STATUS}"
  exit "${STATUS}"
fi
echo "run_tidy: OK — zero diagnostics"
