"""Fixture selftest: every rule must trip on its trip fixture and stay
quiet on its clean fixture (tests/analyzer_fixtures/). Registered as the
`repo_analyzer_selftest` ctest so a rule regression fails the build.

AST-rule fixtures are single self-contained .cpp files parsed with
`-std=c++20`; the include-hygiene fixtures are directory trees scanned
textually (and therefore verified even on machines without libclang —
where the AST half skips with exit 77, matching analyze.py).
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyzer import engine, rules as rules_mod  # noqa: E402

FIXTURES = engine.REPO / "tests" / "analyzer_fixtures"
PARSE_ARGS = ["-x", "c++", "-std=c++20"]


def _slug(rule_name: str) -> str:
    return rule_name.replace("-", "_")


def _run_ast_fixture(cindex, rule, path: Path):
    config = engine.AnalyzerConfig(roots=(FIXTURES,))
    findings, reports = engine.run([rule], [(str(path), PARSE_ARGS)],
                                   config, cindex)
    fatal = [line for r in reports for line in r.fatal_diagnostics]
    return [f for f in findings if f.rule == rule.name], fatal


def _run_textual_fixture(rule, root: Path):
    config = engine.AnalyzerConfig(roots=(root,))
    findings, _ = engine.run([rule], [], config, engine)
    return [f for f in findings if f.rule == rule.name]


def main(require: bool = False, only=None) -> int:
    failures: list[str] = []
    checked = 0
    skipped = 0

    rules = rules_mod.make_rules(only=only)
    cindex = engine.load_cindex()

    for rule in rules:
        slug = _slug(rule.name)
        if rule.textual:
            trip_dir = FIXTURES / f"trip_{slug}"
            clean_dir = FIXTURES / f"clean_{slug}"
            for where, expect_hit in ((trip_dir, True), (clean_dir, False)):
                if not where.is_dir():
                    failures.append(f"{rule.name}: missing fixture dir "
                                    f"{where}")
                    continue
                hits = _run_textual_fixture(rule, where)
                checked += 1
                if expect_hit and not hits:
                    failures.append(f"{rule.name}: {where.name} did not "
                                    "trip the rule")
                elif not expect_hit and hits:
                    failures.append(
                        f"{rule.name}: {where.name} tripped unexpectedly: "
                        f"{hits[0].render(engine.REPO)}")
            continue

        if cindex is None:
            skipped += 1
            continue
        for prefix, expect_hit in (("trip", True), ("clean", False)):
            path = FIXTURES / f"{prefix}_{slug}.cpp"
            if not path.is_file():
                failures.append(f"{rule.name}: missing fixture {path}")
                continue
            hits, fatal = _run_ast_fixture(cindex, rule, path)
            checked += 1
            if fatal:
                failures.append(f"{rule.name}: {path.name} failed to "
                                f"parse: {fatal[0]}")
            elif expect_hit and not hits:
                failures.append(f"{rule.name}: {path.name} did not trip "
                                "the rule")
            elif not expect_hit and hits:
                failures.append(f"{rule.name}: {path.name} tripped "
                                f"unexpectedly: "
                                f"{hits[0].render(engine.REPO)}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        print(f"analyzer selftest: {len(failures)} failure(s) "
              f"({checked} fixture checks ran)", file=sys.stderr)
        return 1

    if skipped:
        message = (f"analyzer selftest: libclang unavailable "
                   f"({engine.cindex_error()}); {skipped} AST rule(s) "
                   "unverified")
        if require:
            print(f"error: {message} and --require is set", file=sys.stderr)
            return 2
        print(f"WARNING: {message}. Textual fixtures passed "
              f"({checked} checks).", file=sys.stderr)
        return 77
    print(f"analyzer selftest: OK ({checked} fixture checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(require="--require" in sys.argv))
