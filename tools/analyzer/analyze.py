#!/usr/bin/env python3
"""CLI driver for the semantic analyzer (DESIGN.md §5d).

    python3 tools/analyzer/analyze.py --compile-commands build/compile_commands.json

Walks the AST of every translation unit under src/ through libclang and
enforces the rule catalog in rules.py; the textual rules (include-hygiene)
run unconditionally. Exit codes:

    0   clean
    1   findings (or a selftest failure)
    2   infrastructure error — unreadable compile database, fatal parse
        diagnostics, or libclang missing while --require is set
    77  libclang unavailable and not required: AST rules skipped (ctest
        SKIP_RETURN_CODE). Textual rules still ran and were clean.

CI sets AAD_ANALYZER_REQUIRE=1 so a missing python3-clang fails the job
loudly instead of silently skipping coverage.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

if __package__ in (None, ""):  # run as a script: `python3 tools/analyzer/analyze.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyzer import engine, rules as rules_mod  # noqa: E402

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_SKIP = 77


def default_compile_commands() -> Path | None:
    for name in ("build", "build-tidy", "build-asan", "build-ubsan",
                 "build-scalar"):
        candidate = engine.REPO / name / "compile_commands.json"
        if candidate.is_file():
            return candidate
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="analyze.py",
        description="Semantic AST analyzer for the aadedupe repo.")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json (default: first of "
                             "build*/compile_commands.json)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="RULE",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--require", action="store_true",
                        default=bool(os.environ.get("AAD_ANALYZER_REQUIRE")),
                        help="fail (exit 2) instead of skipping (exit 77) "
                             "when libclang is unavailable "
                             "[env: AAD_ANALYZER_REQUIRE]")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture selftest instead of the tree")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-TU progress")
    args = parser.parse_args(argv)

    all_rules = rules_mod.make_rules(only=args.only)
    if args.list_rules:
        for rule in all_rules:
            tag = " (textual)" if rule.textual else ""
            print(f"{rule.name}{tag}\n    {rule.description}")
        return EXIT_CLEAN

    if args.selftest:
        from analyzer import selftest
        return selftest.main(require=args.require, only=args.only)

    cindex = engine.load_cindex()
    ast_rules = [r for r in all_rules if not r.textual]
    textual_rules = [r for r in all_rules if r.textual]
    config = engine.AnalyzerConfig()

    status = EXIT_CLEAN
    findings: list[engine.Finding] = []

    if cindex is None:
        message = (f"analyzer: libclang unavailable ({engine.cindex_error()});"
                   f" {len(ast_rules)} AST rule(s) NOT checked")
        if args.require:
            print(f"error: {message} and --require is set", file=sys.stderr)
            return EXIT_ERROR
        print("=" * 72, file=sys.stderr)
        print(f"WARNING: {message}.", file=sys.stderr)
        print("Install python3-clang + libclang (apt: python3-clang "
              "libclang1) or point AAD_LIBCLANG at the shared library; "
              "CI runs the full rule set.", file=sys.stderr)
        print("=" * 72, file=sys.stderr)
        status = EXIT_SKIP
        ast_rules = []
    else:
        db_path = args.compile_commands or default_compile_commands()
        if db_path is None or not db_path.is_file():
            print("error: no compile_commands.json found; configure a build "
                  "dir first or pass --compile-commands", file=sys.stderr)
            return EXIT_ERROR
        try:
            entries = engine.load_compile_commands(db_path)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        jobs = []
        seen_sources = set()
        for entry in entries:
            source, tu_args = engine.parse_args_for(entry)
            if source in seen_sources or not config.in_roots(source):
                continue
            seen_sources.add(source)
            jobs.append((source, tu_args))
        if not jobs:
            print(f"error: {db_path} has no entries under src/",
                  file=sys.stderr)
            return EXIT_ERROR
        progress = (lambda msg: print(msg, file=sys.stderr)) \
            if args.verbose else None
        ast_findings, reports = engine.run(ast_rules, jobs, config, cindex,
                                           progress=progress)
        fatal = [line for r in reports for line in r.fatal_diagnostics]
        if fatal:
            print("error: fatal parse diagnostics (stale compile database?):",
                  file=sys.stderr)
            for line in fatal:
                print(f"  {line}", file=sys.stderr)
            return EXIT_ERROR
        findings.extend(ast_findings)
        if args.verbose:
            print(f"analyzed {len(jobs)} TU(s) under src/", file=sys.stderr)

    if textual_rules:
        tex_findings, _ = engine.run(textual_rules, [], config,
                                     cindex or engine)
        findings.extend(tex_findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding.render(config.repo_root))
    if findings:
        print(f"\nanalyzer: {len(findings)} finding(s). Suppress a "
              "deliberate one with // aad-analyzer-ignore(rule-name) on "
              "the finding line or the line above.", file=sys.stderr)
        return EXIT_FINDINGS
    if status == EXIT_CLEAN:
        checked = len(ast_rules) + len(textual_rules)
        print(f"analyzer: clean ({checked} rule(s))")
    return status


if __name__ == "__main__":
    sys.exit(main())
