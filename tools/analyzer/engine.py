"""Analyzer engine: libclang loading, TU parsing, finding collection.

The engine is deliberately independent of the rules: it owns everything
about *how* to parse (compile database, argument mangling, libclang
discovery) and *how* to report (ignore comments, dedup, ordering), while
rules own *what* to look for. Rules receive a RuleContext per translation
unit and call ctx.report(); the engine drops findings whose location
carries an `// aad-analyzer-ignore(rule)` marker on the same or the
preceding line.
"""

from __future__ import annotations

import json
import os
import re
import shlex
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

# ---------------------------------------------------------------------------
# libclang discovery
# ---------------------------------------------------------------------------

_CINDEX = None
_CINDEX_ERROR = None


def load_cindex():
    """Import clang.cindex and verify the native library loads.

    Returns the module, or None (with the failure reason retrievable via
    cindex_error()) when the python bindings or libclang itself are absent.
    The result is cached: libclang state is process-global.
    """
    global _CINDEX, _CINDEX_ERROR
    if _CINDEX is not None or _CINDEX_ERROR is not None:
        return _CINDEX
    try:
        from clang import cindex  # type: ignore
    except ImportError as exc:
        _CINDEX_ERROR = f"python3-clang not importable: {exc}"
        return None
    override = os.environ.get("AAD_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception as exc:  # pragma: no cover - defensive
            _CINDEX_ERROR = f"AAD_LIBCLANG={override} rejected: {exc}"
            return None
    try:
        cindex.Index.create()
    except Exception as exc:
        if override:
            _CINDEX_ERROR = f"libclang ({override}) failed to load: {exc}"
            return None
        # Retry with the sonames Debian/Ubuntu actually ship.
        loaded = False
        for candidate in (
            "libclang.so",
            *(f"libclang-{v}.so.1" for v in range(21, 13, -1)),
            *(f"libclang-{v}.so" for v in range(21, 13, -1)),
        ):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(candidate)
                cindex.Index.create()
                loaded = True
                break
            except Exception:
                continue
        if not loaded:
            _CINDEX_ERROR = f"libclang shared library failed to load: {exc}"
            return None
    _CINDEX = cindex
    return _CINDEX


def cindex_error() -> str:
    return _CINDEX_ERROR or "unknown"


# ---------------------------------------------------------------------------
# Findings and ignore comments
# ---------------------------------------------------------------------------

IGNORE_RE = re.compile(r"aad-analyzer-ignore\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # absolute
    line: int
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = Path(self.path).resolve().relative_to(root)
        except ValueError:
            rel = Path(self.path)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


class SourceCache:
    """Lines of analyzed files, for ignore-comment lookups."""

    def __init__(self):
        self._lines: dict[str, list[str]] = {}

    def lines(self, path: str) -> list[str]:
        if path not in self._lines:
            try:
                text = Path(path).read_text(encoding="utf-8",
                                            errors="replace")
            except OSError:
                text = ""
            self._lines[path] = text.splitlines()
        return self._lines[path]

    def ignored(self, finding: Finding) -> bool:
        lines = self.lines(finding.path)
        for lineno in (finding.line, finding.line - 1):
            if 1 <= lineno <= len(lines):
                m = IGNORE_RE.search(lines[lineno - 1])
                if m:
                    rules = {r.strip() for r in m.group(1).split(",")}
                    if "*" in rules or finding.rule in rules:
                        return True
        return False


# ---------------------------------------------------------------------------
# Configuration shared by all rules
# ---------------------------------------------------------------------------


@dataclass
class AnalyzerConfig:
    repo_root: Path = REPO
    #: Directories whose files count as "ours": findings are only reported
    #: inside these, and include-hygiene treats their headers as
    #: first-party. Paths are absolute.
    roots: tuple = (REPO / "src",)
    #: Files/directories (absolute) where wall-clock reads are the point:
    #: the telemetry substrate timestamps real events, and StopWatch *is*
    #: the measured-compute-time abstraction everyone else must use.
    wallclock_allow: tuple = (
        REPO / "src" / "telemetry",
        REPO / "src" / "util" / "stopwatch.hpp",
    )
    #: Files allowed to reinterpret/memcpy record types: the byte-packing
    #: layer itself.
    raw_codec_allow: tuple = (REPO / "src" / "util" / "bytes.hpp",)

    def in_roots(self, path: str) -> bool:
        p = Path(path).resolve()
        return any(_is_within(p, root) for root in self.roots)

    def allowed(self, path: str, allowlist) -> bool:
        p = Path(path).resolve()
        return any(_is_within(p, entry) for entry in allowlist)


def _is_within(path: Path, root: Path) -> bool:
    if path == root:
        return True
    try:
        path.relative_to(root)
        return True
    except ValueError:
        return False


class RuleContext:
    """Per-run state handed to every rule."""

    def __init__(self, config: AnalyzerConfig, cindex):
        self.config = config
        self.cindex = cindex
        self.findings: list[Finding] = []
        self._seen: set = set()
        self._qualname_cache: dict = {}

    def report(self, rule: str, cursor, message: str):
        loc = cursor.location
        if loc.file is None:
            return
        path = str(Path(loc.file.name).resolve())
        if not self.config.in_roots(path):
            return
        key = (rule, path, loc.line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(rule, path, loc.line, message))

    def report_at(self, rule: str, path: str, line: int, message: str):
        path = str(Path(path).resolve())
        if not self.config.in_roots(path):
            return
        key = (rule, path, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(rule, path, line, message))

    # -- cursor helpers shared by rules ------------------------------------

    def qualified_name(self, cursor) -> str:
        """Fully qualified name of a declaration cursor (best effort)."""
        key = cursor.hash
        cached = self._qualname_cache.get(key)
        if cached is not None:
            return cached
        parts = []
        node = cursor
        kinds = self.cindex.CursorKind
        while node is not None and node.kind != kinds.TRANSLATION_UNIT:
            if node.spelling:
                parts.append(node.spelling)
            node = node.semantic_parent
        name = "::".join(reversed(parts))
        self._qualname_cache[key] = name
        return name

    def location_of(self, cursor) -> tuple:
        loc = cursor.location
        if loc.file is None:
            return ("", 0)
        return (str(Path(loc.file.name).resolve()), loc.line)


# ---------------------------------------------------------------------------
# Compile database handling
# ---------------------------------------------------------------------------

# Flags that libclang must not see (compilation artifacts) — with the
# number of operands each consumes.
_DROP_FLAGS = {"-c": 0, "-o": 1, "-MF": 1, "-MT": 1, "-MQ": 1}


def load_compile_commands(path: Path) -> list[dict]:
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RuntimeError(f"cannot read compile database {path}: {exc}")
    if not isinstance(entries, list):
        raise RuntimeError(f"compile database {path} is not a JSON array")
    return entries


def parse_args_for(entry: dict) -> tuple[str, list[str]]:
    """(source file, clang args) for one compile-database entry.

    Strips the compiler executable, the source file, and output/dep flags;
    makes include paths absolute against the entry's directory so the
    parse does not depend on our own cwd; silences warnings (the analyzer
    reports its own findings, not the compiler's).
    """
    directory = Path(entry.get("directory", "."))
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    source = str((directory / entry["file"]).resolve())

    args: list[str] = []
    i = 1  # skip the compiler
    while i < len(argv):
        arg = argv[i]
        if arg in _DROP_FLAGS:
            i += 1 + _DROP_FLAGS[arg]
            continue
        if str((directory / arg).resolve()) == source:
            i += 1
            continue
        if arg == "-I" and i + 1 < len(argv):
            args += ["-I", str((directory / argv[i + 1]).resolve())]
            i += 2
            continue
        if arg.startswith("-I"):
            args.append("-I" + str((directory / arg[2:]).resolve()))
            i += 1
            continue
        args.append(arg)
        i += 1
    args += ["-Wno-everything", f"-working-directory={directory}"]
    return source, args


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------


def walk_repo_cursors(tu_cursor, config: AnalyzerConfig):
    """Yield every cursor located in one of the configured roots.

    Children of skipped (system/third-party) cursors are not visited, so
    the walk never descends into libstdc++; namespace blocks re-opened in
    our files are visited through their own cursors.
    """
    stack = list(tu_cursor.get_children())[::-1]
    while stack:
        node = stack.pop()
        loc_file = node.location.file
        if loc_file is None or not config.in_roots(loc_file.name):
            continue
        yield node
        stack.extend(list(node.get_children())[::-1])


@dataclass
class TUReport:
    source: str
    parsed: bool
    fatal_diagnostics: list = field(default_factory=list)


def analyze_tu(index, source: str, args: list[str], rules, ctx: RuleContext,
               tu_callbacks=None) -> TUReport:
    cindex = ctx.cindex
    report = TUReport(source=source, parsed=False)
    try:
        tu = index.parse(source, args=args)
    except cindex.TranslationUnitLoadError as exc:
        report.fatal_diagnostics.append(f"{source}: parse failed: {exc}")
        return report
    for diag in tu.diagnostics:
        if diag.severity >= cindex.Diagnostic.Fatal:
            report.fatal_diagnostics.append(
                f"{source}: {diag.location}: {diag.spelling}")
    report.parsed = True

    interests = [(rule, rule.interesting_kinds(cindex)) for rule in rules]
    for cursor in walk_repo_cursors(tu.cursor, ctx.config):
        for rule, kinds in interests:
            if kinds is None or cursor.kind in kinds:
                rule.visit(cursor, ctx)
    if tu_callbacks:
        for cb in tu_callbacks:
            cb(tu, ctx)
    for rule in rules:
        rule.end_tu(ctx)
    return report


def run(rules, sources_and_args, config: AnalyzerConfig, cindex,
        progress=None):
    """Analyze all (source, args) pairs; returns (findings, tu_reports)."""
    ctx = RuleContext(config, cindex)
    # Textual-only runs pass no sources (and possibly no real cindex).
    index = cindex.Index.create() if sources_and_args else None
    reports = []
    for n, (source, args) in enumerate(sources_and_args, 1):
        if progress:
            progress(f"[{n}/{len(sources_and_args)}] {source}")
        reports.append(analyze_tu(index, source, args, rules, ctx))
    for rule in rules:
        rule.end_run(ctx)

    cache = SourceCache()
    kept = [f for f in ctx.findings if not cache.ignored(f)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept, reports
