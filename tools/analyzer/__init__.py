"""Semantic AST analyzer for the aadedupe repo (DESIGN.md §5d).

A libclang-based companion to tools/lint.py: where the regex lint checks
surface syntax, this package parses every translation unit in src/ through
the compile database and enforces repo invariants that need type and scope
information — discarded CloudResult values, wall-clock calls in
simulated-time code, locks held across thread-pool dispatch, RAII
temporaries destroyed at end of full-expression, struct-overlay
serialization outside util/bytes, exception-handling discipline, virtual
calls during construction, and include hygiene.

Run `python3 tools/analyzer/analyze.py --help` for the CLI; the `analyze`
ctest label and the CI `analyzer` job gate on it. Every rule honors an
escape hatch: `// aad-analyzer-ignore(rule-name)` on the finding line or
the line above.
"""

__version__ = "1.0"
