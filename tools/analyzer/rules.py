"""The rule catalog (DESIGN.md §5d).

Every rule is a small class with a stable kebab-case name (the name users
write in `// aad-analyzer-ignore(...)` comments), a one-line description,
and a `visit` hook called for cursors whose kind is in
`interesting_kinds`. Rules that need whole-statement context (lock
scopes, catch bodies, constructor bodies) do their own bounded subtree
walks from the cursors they are handed; rules that need no AST at all
(include hygiene) run from `end_run`.
"""

from __future__ import annotations

import re
from pathlib import Path


def subtree(cursor, skip_lambdas=False, lambda_kind=None):
    """All descendants of `cursor` (excluding it), optionally pruning
    lambda bodies — code inside a lambda runs when the closure is invoked,
    not where it is written, so scope-sensitive rules must not attribute
    it to the enclosing statement."""
    stack = list(cursor.get_children())[::-1]
    while stack:
        node = stack.pop()
        if skip_lambdas and node.kind == lambda_kind:
            continue
        yield node
        stack.extend(list(node.get_children())[::-1])


def type_basename(type_spelling: str) -> str:
    """`aadedupe::cloud::CloudResult<aadedupe::cloud::CloudOk>` -> `CloudResult`."""
    return type_spelling.split("<")[0].split("::")[-1].strip()


def unwrap_expr(cursor, kinds):
    """Peel ExprWithCleanups/CXXBindTemporaryExpr wrappers (surfaced by
    libclang as single-child UNEXPOSED_EXPR) off an expression statement."""
    while cursor.kind == kinds.UNEXPOSED_EXPR:
        children = list(cursor.get_children())
        if len(children) != 1:
            break
        cursor = children[0]
    return cursor


def derives_from(class_cursor, base_names, cindex, _depth=0) -> bool:
    """True when the class IS or inherits (transitively) one of base_names."""
    if class_cursor is None or _depth > 16:
        return False
    if class_cursor.spelling in base_names:
        return True
    defn = class_cursor.get_definition() or class_cursor
    for child in defn.get_children():
        if child.kind == cindex.CursorKind.CXX_BASE_SPECIFIER:
            decl = child.type.get_declaration()
            if derives_from(decl, base_names, cindex, _depth + 1):
                return True
    return False


class Rule:
    name = ""
    description = ""
    #: True when the rule needs no libclang — it still runs (and can fail
    #: the build) on machines without python3-clang.
    textual = False

    def interesting_kinds(self, cindex):
        """Set of CursorKinds to visit, or None for every cursor."""
        return ()

    def visit(self, cursor, ctx):
        pass

    def end_tu(self, ctx):
        pass

    def end_run(self, ctx):
        pass


# ---------------------------------------------------------------------------
# 1. discarded-result
# ---------------------------------------------------------------------------


class DiscardedResultRule(Rule):
    name = "discarded-result"
    description = ("call result of CloudResult/CloudStatus/*Error-returning "
                   "function discarded as an expression statement")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.COMPOUND_STMT}

    def visit(self, cursor, ctx):
        kinds = ctx.cindex.CursorKind
        for stmt in cursor.get_children():
            core = unwrap_expr(stmt, kinds)
            if core.kind != kinds.CALL_EXPR:
                continue
            spelling = core.type.get_canonical().spelling
            if "CloudResult<" in spelling or \
                    type_basename(spelling).endswith("Error"):
                ctx.report(self.name, core,
                           f"result of type '{spelling}' is discarded; "
                           "handle the error or cast to void explicitly")


# ---------------------------------------------------------------------------
# 2. wall-clock
# ---------------------------------------------------------------------------

_WALL_CLOCK_FREE_FUNCS = {"time", "gettimeofday", "clock_gettime",
                          "localtime", "localtime_r", "gmtime", "gmtime_r",
                          "clock", "ftime"}


class WallClockRule(Rule):
    name = "wall-clock"
    description = ("direct wall-clock read outside src/telemetry/ and the "
                   "StopWatch plumbing — measured time must flow through "
                   "util/stopwatch so simulated-clock runs stay deterministic")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.CALL_EXPR}

    def visit(self, cursor, ctx):
        ref = cursor.referenced
        if ref is None:
            return
        qn = ctx.qualified_name(ref)
        hit = None
        if qn.endswith("_clock::now"):
            hit = qn
        else:
            last = qn.split("::")[-1]
            if last in _WALL_CLOCK_FREE_FUNCS and \
                    (qn == last or qn.startswith("std::")):
                hit = qn
        if hit is None:
            return
        path, _ = ctx.location_of(cursor)
        if ctx.config.allowed(path, ctx.config.wallclock_allow):
            return
        ctx.report(self.name, cursor,
                   f"wall-clock call '{hit}()' outside the telemetry/"
                   "StopWatch allowlist")


# ---------------------------------------------------------------------------
# 3. lock-across-dispatch
# ---------------------------------------------------------------------------

_LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
_BACKEND_METHODS = {"put", "get", "remove"}


class LockAcrossDispatchRule(Rule):
    name = "lock-across-dispatch"
    description = ("mutex guard held across ThreadPool::submit/parallel_for "
                   "or a cloud-backend call — dispatch blocks on worker "
                   "completion / network IO and deadlocks or serializes the "
                   "pipeline")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.COMPOUND_STMT}

    def visit(self, cursor, ctx):
        kinds = ctx.cindex.CursorKind
        lock_name = None
        for stmt in cursor.get_children():
            if stmt.kind == kinds.DECL_STMT:
                for decl in stmt.get_children():
                    if decl.kind != kinds.VAR_DECL:
                        continue
                    spelling = decl.type.get_canonical().spelling
                    if type_basename(spelling) in _LOCK_TYPES:
                        lock_name = decl.spelling or type_basename(spelling)
                continue
            if lock_name is None:
                continue
            for node in subtree(stmt, skip_lambdas=True,
                                lambda_kind=kinds.LAMBDA_EXPR):
                if node.kind != kinds.CALL_EXPR:
                    continue
                target = self._dispatch_target(node, ctx)
                if target:
                    ctx.report(self.name, node,
                               f"'{target}' called while guard "
                               f"'{lock_name}' is held")

    @staticmethod
    def _dispatch_target(call, ctx):
        ref = call.referenced
        if ref is None:
            return None
        qn = ctx.qualified_name(ref)
        if qn.endswith("ThreadPool::submit") or \
                qn.endswith("ThreadPool::parallel_for"):
            return "ThreadPool::" + ref.spelling
        if ref.spelling in _BACKEND_METHODS:
            parent = ref.semantic_parent
            if parent is not None and derives_from(
                    parent, {"CloudBackend"}, ctx.cindex):
                return qn
        return None


# ---------------------------------------------------------------------------
# 4. unnamed-raii
# ---------------------------------------------------------------------------

_RAII_TYPES = {"TraceSpan"} | _LOCK_TYPES


class UnnamedRaiiRule(Rule):
    name = "unnamed-raii"
    description = ("unnamed temporary TraceSpan/lock guard is destroyed at "
                   "the end of its own statement — it never covers the code "
                   "it was meant to protect")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.COMPOUND_STMT}

    def visit(self, cursor, ctx):
        kinds = ctx.cindex.CursorKind
        # CXXTemporaryObjectExpr surfaces as CALL_EXPR in libclang.
        expr_kinds = {kinds.CALL_EXPR, kinds.CXX_FUNCTIONAL_CAST_EXPR}
        for stmt in cursor.get_children():
            core = unwrap_expr(stmt, kinds)
            if core.kind not in expr_kinds:
                continue
            spelling = core.type.get_canonical().spelling
            base = type_basename(spelling)
            if base in _RAII_TYPES:
                ctx.report(self.name, core,
                           f"temporary '{base}' destroyed at end of "
                           "statement; bind it to a named local")


# ---------------------------------------------------------------------------
# 5. raw-serialization
# ---------------------------------------------------------------------------


class RawSerializationRule(Rule):
    name = "raw-serialization"
    description = ("memcpy/reinterpret_cast on a repo record type outside "
                   "util/bytes — struct overlays bake in padding and "
                   "endianness; formats go through the byte codec")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.CALL_EXPR,
                cindex.CursorKind.CXX_REINTERPRET_CAST_EXPR}

    def visit(self, cursor, ctx):
        path, _ = ctx.location_of(cursor)
        if ctx.config.allowed(path, ctx.config.raw_codec_allow):
            return
        kinds = ctx.cindex.CursorKind
        if cursor.kind == kinds.CXX_REINTERPRET_CAST_EXPR:
            offender = self._repo_record_pointee(cursor.type, ctx)
            if offender:
                ctx.report(self.name, cursor,
                           f"reinterpret_cast to '{offender}'; use "
                           "util/bytes load/store helpers")
            return
        ref = cursor.referenced
        if ref is None or ref.spelling not in ("memcpy", "memmove", "memcmp"):
            return
        for arg in cursor.get_arguments():
            offender = self._repo_record_pointee(arg.type, ctx)
            if offender:
                ctx.report(self.name, cursor,
                           f"{ref.spelling}() over record type "
                           f"'{offender}'; use util/bytes load/store "
                           "helpers")
                return

    @staticmethod
    def _repo_record_pointee(clang_type, ctx):
        canonical = clang_type.get_canonical()
        kinds = ctx.cindex.TypeKind
        if canonical.kind not in (kinds.POINTER, kinds.LVALUEREFERENCE,
                                  kinds.RVALUEREFERENCE):
            return None
        pointee = canonical.get_pointee().get_canonical()
        spelling = pointee.spelling
        if pointee.kind == kinds.RECORD and "aadedupe::" in spelling:
            return spelling
        return None


# ---------------------------------------------------------------------------
# 6. exception-discipline
# ---------------------------------------------------------------------------

_TAXONOMY = {"PreconditionError", "InvariantError", "FormatError",
             "CloudTransportError", "exception", "runtime_error",
             "logic_error", "system_error"}
# A bare catch counts as "handled" when its body rethrows or calls
# something that visibly records the failure: the flight recorder, the
# check.hpp hook, std::current_exception() capture, or a local
# error/failure routing helper.
_HANDLER_EVIDENCE_RE = re.compile(
    r"^(trigger|notify_failure|current_exception)$|error|failure")


class ExceptionDisciplineRule(Rule):
    name = "exception-discipline"
    description = ("catch-by-value of the check.hpp taxonomy (slices the "
                   "error), or bare catch (...) that swallows without "
                   "rethrowing or triggering the flight recorder")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.CXX_CATCH_STMT}

    def visit(self, cursor, ctx):
        kinds = ctx.cindex.CursorKind
        tkinds = ctx.cindex.TypeKind
        children = list(cursor.get_children())
        exc_decl = next((c for c in children if c.kind == kinds.VAR_DECL),
                        None)
        if exc_decl is not None:
            canonical = exc_decl.type.get_canonical()
            if canonical.kind not in (tkinds.LVALUEREFERENCE,
                                      tkinds.RVALUEREFERENCE,
                                      tkinds.POINTER):
                base = type_basename(canonical.spelling)
                if base in _TAXONOMY or base.endswith("Error"):
                    ctx.report(self.name, exc_decl,
                               f"'{canonical.spelling}' caught by value; "
                               "catch by const reference")
            return
        # Bare catch (...): the body must rethrow or leave flight-recorder
        # evidence — silently eating an unknown exception erases the only
        # signal that a worker or format path failed.
        body = children[-1] if children else None
        if body is None:
            return
        for node in subtree(body):
            if node.kind == kinds.CXX_THROW_EXPR:
                return
            if node.kind == kinds.CALL_EXPR:
                ref = node.referenced
                if ref is not None and \
                        _HANDLER_EVIDENCE_RE.search(ref.spelling):
                    return
        ctx.report(self.name, cursor,
                   "bare catch (...) swallows the exception; rethrow or "
                   "call FlightRecorder::trigger()/notify_failure()")


# ---------------------------------------------------------------------------
# 7. virtual-in-ctor
# ---------------------------------------------------------------------------

_POLYMORPHIC_ROOTS = {"CloudBackend", "BackupScheme"}


class VirtualInCtorRule(Rule):
    name = "virtual-in-ctor"
    description = ("virtual call on *this inside a constructor/destructor "
                   "of the scheme/backend hierarchies — dispatch resolves "
                   "to the class under construction, not the override")

    def interesting_kinds(self, cindex):
        return {cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR}

    def visit(self, cursor, ctx):
        kinds = ctx.cindex.CursorKind
        if not cursor.is_definition():
            return
        owner = cursor.semantic_parent
        if owner is None or not derives_from(owner, _POLYMORPHIC_ROOTS,
                                             ctx.cindex):
            return
        for node in subtree(cursor, skip_lambdas=True,
                            lambda_kind=kinds.LAMBDA_EXPR):
            if node.kind != kinds.CALL_EXPR:
                continue
            ref = node.referenced
            if ref is None or not ref.is_virtual_method():
                continue
            method_owner = ref.semantic_parent
            if method_owner is None or not derives_from(
                    owner, {method_owner.spelling}, ctx.cindex):
                continue
            if self._on_this(node, ctx):
                what = "destructor" if cursor.kind == kinds.DESTRUCTOR \
                    else "constructor"
                ctx.report(self.name, node,
                           f"virtual '{ref.spelling}()' called in "
                           f"{what} of '{owner.spelling}'")

    @staticmethod
    def _on_this(call, ctx):
        kinds = ctx.cindex.CursorKind
        children = list(call.get_children())
        if not children:
            return True  # implicit this, no object expression exposed
        callee = children[0]
        if callee.kind != kinds.MEMBER_REF_EXPR:
            return False
        objs = list(callee.get_children())
        if not objs:
            return True  # implicit this
        return any(n.kind == kinds.CXX_THIS_EXPR
                   for n in [objs[0], *subtree(objs[0])])


# ---------------------------------------------------------------------------
# 8. include-hygiene (textual — runs even without libclang)
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
_DEF_RE = re.compile(
    r'^(?:class|struct|enum(?:\s+class)?)\s+'
    r'(?:\[\[\w+\]\]\s+)?([A-Z]\w{3,})\s*(?:final\s*)?(?::|\{|$)')
_FWD_RE = re.compile(
    r'^(?:class|struct|enum(?:\s+class)?)\s+([A-Z]\w{3,})\s*;')
_COMMENT_RE = re.compile(r'//.*?$|/\*.*?\*/|"(?:[^"\\]|\\.)*"',
                         re.MULTILINE | re.DOTALL)


class IncludeHygieneRule(Rule):
    name = "include-hygiene"
    description = ("header uses a first-party type whose defining header "
                   "is reachable only transitively — include what you use, "
                   "so includes can be reordered without breakage")
    textual = True

    def end_run(self, ctx):
        scan_include_hygiene(ctx.config, lambda path, line, msg:
                             ctx.report_at(self.name, path, line, msg))


def _resolve_include(spec: str, header: Path, roots) -> Path | None:
    for base in (header.parent, *roots):
        candidate = (base / spec).resolve()
        if candidate.is_file():
            return candidate
    return None


def scan_include_hygiene(config, emit):
    """Textual include-what-you-use over every header in config.roots.

    Flags a use of type `X` in header H when X's (unique) defining header
    is in H's transitive first-party include closure but not among H's
    direct includes. Forward declarations in H excuse the name; so do
    names defined in more than one header (ambiguous, usually nested
    helper structs).
    """
    roots = [Path(r) for r in config.roots]
    headers: dict[Path, str] = {}
    for root in roots:
        if not root.is_dir():
            continue
        for pattern in ("*.hpp", "*.h"):
            for p in sorted(root.rglob(pattern)):
                headers[p.resolve()] = p.read_text(encoding="utf-8",
                                                   errors="replace")

    defined: dict[str, set] = {}
    direct: dict[Path, list] = {}
    fwd: dict[Path, set] = {}
    for path, text in headers.items():
        direct[path] = []
        fwd[path] = set()
        for line in text.splitlines():
            m = _INCLUDE_RE.match(line)
            if m:
                resolved = _resolve_include(m.group(1), path, roots)
                if resolved in headers:
                    direct[path].append(resolved)
                continue
            m = _FWD_RE.match(line)
            if m:
                fwd[path].add(m.group(1))
                continue
            m = _DEF_RE.match(line)
            if m:
                defined.setdefault(m.group(1), set()).add(path)

    unique_def = {name: next(iter(paths))
                  for name, paths in defined.items() if len(paths) == 1}

    closures: dict[Path, set] = {}

    def closure(path: Path, chain=()):
        if path in closures:
            return closures[path]
        if path in chain:  # include cycle; break it
            return set()
        result = set(direct.get(path, ()))
        for dep in direct.get(path, ()):
            result |= closure(dep, (*chain, path))
        closures[path] = result
        return result

    for path, text in headers.items():
        stripped = _COMMENT_RE.sub(lambda m: " " * len(m.group(0)),
                                   text)
        transitive = closure(path) - set(direct[path])
        if not transitive:
            continue
        reported = set()
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if _INCLUDE_RE.match(line):
                continue
            for m in re.finditer(r'\b([A-Z]\w{3,})\b', line):
                name = m.group(1)
                if name in reported or name in fwd[path]:
                    continue
                definer = unique_def.get(name)
                if definer is None or definer == path or \
                        definer in direct[path] or definer not in transitive:
                    continue
                reported.add(name)
                try:
                    rel = definer.relative_to(
                        next(r for r in roots
                             if str(definer).startswith(str(r))))
                except (StopIteration, ValueError):
                    rel = definer
                emit(str(path), lineno,
                     f"'{name}' is defined in '{rel}', which is only "
                     "included transitively; include it directly")


ALL_RULES = [
    DiscardedResultRule,
    WallClockRule,
    LockAcrossDispatchRule,
    UnnamedRaiiRule,
    RawSerializationRule,
    ExceptionDisciplineRule,
    VirtualInCtorRule,
    IncludeHygieneRule,
]


def make_rules(only=None):
    rules = [cls() for cls in ALL_RULES]
    if only:
        wanted = set(only)
        unknown = wanted - {r.name for r in rules}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.name in wanted]
    return rules
