// Table I calibration regression test: the synthetic generator's per-type
// dedup ratios must keep tracking the paper's measured values (this is
// the contract every figure bench builds on). Tolerances are generous
// enough for sampling noise at the reduced corpus size but tight enough
// to catch a generator regression.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "chunk/cdc_chunker.hpp"
#include "chunk/static_chunker.hpp"
#include "dataset/generator.hpp"
#include "hash/sha1.hpp"

namespace aadedupe::dataset {
namespace {

struct PaperRow {
  FileKind kind;
  double sc_dr;
  double cdc_dr;
  double tolerance;  // absolute, on the dedup ratio
};

// Tolerances scale with the magnitude of the redundancy signal.
constexpr PaperRow kRows[] = {
    {FileKind::kAvi, 1.0002, 1.0002, 0.01},
    {FileKind::kMp3, 1.001, 1.002, 0.01},
    {FileKind::kIso, 1.002, 1.002, 0.01},
    {FileKind::kDmg, 1.004, 1.004, 0.012},
    {FileKind::kRar, 1.008, 1.008, 0.015},
    {FileKind::kJpg, 1.009, 1.009, 0.015},
    {FileKind::kPdf, 1.015, 1.014, 0.02},
    {FileKind::kExe, 1.063, 1.062, 0.04},
    {FileKind::kVmdk, 1.286, 1.168, 0.07},
    {FileKind::kDoc, 1.231, 1.234, 0.07},
    {FileKind::kTxt, 1.232, 1.259, 0.07},
    {FileKind::kPpt, 1.275, 1.300, 0.08},
};

double chunk_dr(const chunk::Chunker& chunker,
                const std::vector<ByteBuffer>& files) {
  std::unordered_set<std::string> seen;
  std::uint64_t total = 0, unique = 0;
  for (const ByteBuffer& content : files) {
    for (const chunk::ChunkRef& ref : chunker.split(content)) {
      total += ref.length;
      if (seen.insert(hash::Sha1::hash(ConstByteSpan{content}.subspan(
                                           ref.offset, ref.length))
                          .hex())
              .second) {
        unique += ref.length;
      }
    }
  }
  return unique == 0 ? 1.0
                     : static_cast<double>(total) /
                           static_cast<double>(unique);
}

class Table1Calibration : public ::testing::TestWithParam<PaperRow> {};

TEST_P(Table1Calibration, GeneratorTracksPaperRedundancy) {
  const PaperRow& row = GetParam();
  DatasetConfig config;
  config.seed = 20110926;
  DatasetGenerator generator(config);
  const Snapshot corpus = generator.kind_corpus(row.kind, 24ull << 20);

  // File-level dedup first, as in the paper's methodology.
  std::vector<ByteBuffer> files;
  std::set<std::string> file_digests;
  for (const auto& entry : corpus.files) {
    ByteBuffer content = materialize(entry.content);
    if (file_digests.insert(hash::Sha1::hash(content).hex()).second) {
      files.push_back(std::move(content));
    }
  }

  const chunk::StaticChunker sc;
  const chunk::CdcChunker cdc;
  const double sc_dr = chunk_dr(sc, files);
  const double cdc_dr = chunk_dr(cdc, files);
  EXPECT_NEAR(sc_dr, row.sc_dr, row.tolerance)
      << extension(row.kind) << " SC";
  EXPECT_NEAR(cdc_dr, row.cdc_dr, row.tolerance)
      << extension(row.kind) << " CDC";

  // Directional claims (Observation 3) on the types where the paper's gap
  // is meaningful.
  if (row.kind == FileKind::kVmdk) {
    EXPECT_GT(sc_dr, cdc_dr) << "SC must beat CDC on VM images";
  }
  if (row.kind == FileKind::kTxt || row.kind == FileKind::kPpt) {
    EXPECT_GT(cdc_dr, sc_dr) << "CDC must beat SC on edited documents";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, Table1Calibration,
                         ::testing::ValuesIn(kRows));

}  // namespace
}  // namespace aadedupe::dataset
