// Convergent-encryption and key-store tests, plus the secure AA-Dedupe
// end-to-end path (paper Section VI future work).
#include "crypto/convergent.hpp"

#include <gtest/gtest.h>

#include "backup/keys.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "hash/sha1.hpp"
#include "util/rng.hpp"

namespace aadedupe::crypto {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

TEST(Convergent, KeyDerivedFromContentIsDeterministic) {
  const ByteBuffer chunk = random_bytes(8192, 1);
  EXPECT_EQ(derive_content_key(chunk), derive_content_key(chunk));
  const ByteBuffer other = random_bytes(8192, 2);
  EXPECT_NE(derive_content_key(chunk), derive_content_key(other));
}

TEST(Convergent, EncryptDecryptRoundTrip) {
  ByteBuffer chunk = random_bytes(10000, 3);
  const ByteBuffer plaintext = chunk;
  const ChaChaKey key = derive_content_key(chunk);
  convergent_encrypt(key, chunk);
  EXPECT_NE(chunk, plaintext);
  convergent_decrypt(key, chunk);
  EXPECT_EQ(chunk, plaintext);
}

TEST(Convergent, EqualPlaintextsYieldEqualCiphertexts) {
  // The property that preserves deduplication across encryption.
  ByteBuffer a = random_bytes(8192, 4);
  ByteBuffer b = a;
  convergent_encrypt(derive_content_key(a), a);
  convergent_encrypt(derive_content_key(b), b);
  EXPECT_EQ(a, b);
}

TEST(Convergent, MasterKeyDerivationDeterministicAndSalted) {
  EXPECT_EQ(derive_master_key("hunter2", 100), derive_master_key("hunter2", 100));
  EXPECT_NE(derive_master_key("hunter2", 100), derive_master_key("hunter3", 100));
  EXPECT_NE(derive_master_key("hunter2", 100), derive_master_key("hunter2", 101));
}

TEST(KeyStoreTest, PutGetRoundTrip) {
  KeyStore store;
  const auto digest = hash::Sha1::hash(as_bytes("chunk"));
  const ChaChaKey key = derive_content_key(as_bytes("chunk"));
  EXPECT_FALSE(store.get(digest).has_value());
  store.put(digest, key);
  ASSERT_TRUE(store.get(digest).has_value());
  EXPECT_EQ(*store.get(digest), key);
}

TEST(KeyStoreTest, SerializeRoundTripWithCorrectMaster) {
  const ChaChaKey master = derive_master_key("correct horse", 100);
  KeyStore store;
  for (int i = 0; i < 50; ++i) {
    const std::string label = "chunk" + std::to_string(i);
    store.put(hash::Sha1::hash(as_bytes(label)),
              derive_content_key(as_bytes(label)));
  }
  const ByteBuffer image = store.serialize(master);
  const KeyStore restored = KeyStore::deserialize(image, master);
  EXPECT_EQ(restored.size(), 50u);
  const auto d = hash::Sha1::hash(as_bytes("chunk7"));
  EXPECT_EQ(*restored.get(d), *store.get(d));
}

TEST(KeyStoreTest, WrongMasterYieldsWrongKeys) {
  const ChaChaKey master = derive_master_key("right", 100);
  const ChaChaKey wrong = derive_master_key("wrong", 100);
  KeyStore store;
  const auto digest = hash::Sha1::hash(as_bytes("secret-chunk"));
  const ChaChaKey key = derive_content_key(as_bytes("secret-chunk"));
  store.put(digest, key);

  const KeyStore opened = KeyStore::deserialize(store.serialize(master), wrong);
  ASSERT_TRUE(opened.get(digest).has_value());
  EXPECT_NE(*opened.get(digest), key);
}

TEST(KeyStoreTest, SerializedImageDoesNotContainRawKeys) {
  const ChaChaKey master = derive_master_key("m", 100);
  KeyStore store;
  const ChaChaKey key = derive_content_key(as_bytes("payload"));
  store.put(hash::Sha1::hash(as_bytes("payload")), key);
  const ByteBuffer image = store.serialize(master);
  const std::string hex = to_hex(image);
  const std::string key_hex =
      to_hex(ConstByteSpan{key.data(), key.size()});
  EXPECT_EQ(hex.find(key_hex), std::string::npos);
}

TEST(KeyStoreTest, DeserializeRejectsMalformedImages) {
  const ChaChaKey master{};
  EXPECT_THROW(KeyStore::deserialize(ByteBuffer(2), master), FormatError);
  KeyStore store;
  store.put(hash::Sha1::hash(as_bytes("x")), ChaChaKey{});
  ByteBuffer image = store.serialize(master);
  image.resize(image.size() - 1);
  EXPECT_THROW(KeyStore::deserialize(image, master), FormatError);
  image.resize(image.size() + 3, std::byte{0});
  EXPECT_THROW(KeyStore::deserialize(image, master), FormatError);
}

// ---- Secure AA-Dedupe end-to-end ----

dataset::DatasetConfig secure_config() {
  dataset::DatasetConfig config;
  config.seed = 53;
  config.session_bytes = 5ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(SecureAaDedupe, BackupRestoreRoundTrip) {
  cloud::CloudTarget target;
  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "correct horse battery staple";
  core::AaDedupeScheme scheme(target, options);

  dataset::DatasetGenerator gen(secure_config());
  const auto sessions = gen.sessions(2);
  for (const auto& s : sessions) scheme.backup(s);

  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 7 < last.files.size() ? std::size_t{7} : std::size_t{1})) {
    const auto& file = last.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST(SecureAaDedupe, CloudNeverSeesPlaintext) {
  cloud::CloudTarget target;
  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  core::AaDedupeScheme scheme(target, options);

  // One recognizable file.
  dataset::Snapshot snapshot;
  snapshot.session = 0;
  dataset::FileEntry f;
  f.path = "doc/leak.doc";
  f.kind = dataset::FileKind::kDoc;
  f.content.kind = f.kind;
  f.content.segments.push_back(
      dataset::Segment{dataset::Segment::Type::kUnique, 424242, 64 * 1024});
  snapshot.files.push_back(f);
  scheme.backup(snapshot);

  const ByteBuffer plaintext = dataset::materialize(f.content);
  const std::string needle =
      to_hex(ConstByteSpan{plaintext.data(), 64});  // first 64 bytes
  for (const auto& key : target.store().list("containers/")) {
    const auto object = target.store().get(key);
    ASSERT_TRUE(object.has_value());
    EXPECT_EQ(to_hex(*object).find(needle), std::string::npos) << key;
  }
  // And it still restores.
  EXPECT_EQ(scheme.restore_file("doc/leak.doc"), plaintext);
}

TEST(SecureAaDedupe, DedupEffectivenessPreserved) {
  // Same workload, with and without encryption: shipped bytes must match
  // (stream-cipher ciphertext has identical length, and convergent keys
  // keep duplicate detection intact).
  dataset::DatasetGenerator gen_plain(secure_config());
  dataset::DatasetGenerator gen_secure(secure_config());

  cloud::CloudTarget plain_target, secure_target;
  core::AaDedupeScheme plain(plain_target);
  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  core::AaDedupeScheme secure(secure_target, options);

  const auto plain_sessions = gen_plain.sessions(2);
  const auto secure_sessions = gen_secure.sessions(2);
  std::uint64_t plain_bytes = 0, secure_bytes = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    plain_bytes += plain.backup(plain_sessions[s]).transferred_bytes;
    secure_bytes += secure.backup(secure_sessions[s]).transferred_bytes;
  }
  // Secure run ships the same container payloads plus the wrapped key
  // store; allow that overhead only.
  EXPECT_GE(secure_bytes, plain_bytes);
  EXPECT_LT(secure_bytes, plain_bytes + plain_bytes / 10);
}

TEST(SecureAaDedupe, KeyStoreSyncedToCloud) {
  cloud::CloudTarget target;
  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  core::AaDedupeScheme scheme(target, options);
  dataset::DatasetGenerator gen(secure_config());
  scheme.backup(gen.initial());
  EXPECT_TRUE(target.store().exists(
      backup::keys::session_meta("AA-Dedupe", 0, "keys")));
}

TEST(SecureAaDedupe, GcPreservesSecureRestores) {
  cloud::CloudTarget target;
  core::AaDedupeOptions options;
  options.convergent_encryption = true;
  options.passphrase = "pw";
  core::AaDedupeScheme scheme(target, options);
  dataset::DatasetGenerator gen(secure_config());
  const auto sessions = gen.sessions(3);
  for (const auto& s : sessions) scheme.backup(s);

  core::GcOptions gc;
  gc.rewrite_threshold = 0.95;
  scheme.collect_garbage(1, gc);

  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 9 < last.files.size() ? std::size_t{9} : std::size_t{1})) {
    const auto& file = last.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

}  // namespace
}  // namespace aadedupe::crypto
