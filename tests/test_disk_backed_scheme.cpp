// AaDedupeScheme with disk-backed index shards: the opt-in
// AaDedupeOptions::index_directory knob routes every partition shard through
// log_structured_shard_factory, so full backup sessions run against on-disk
// log-structured indexes instead of the paper's RAM-resident maps.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"

namespace aadedupe::core {
namespace {

namespace fs = std::filesystem;

class DiskBackedSchemeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("aad_dbs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

dataset::DatasetConfig small_dataset() {
  dataset::DatasetConfig config;
  config.seed = 977;
  config.session_bytes = 4ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST_F(DiskBackedSchemeTest, FullBackupSessionAgainstOnDiskShards) {
  cloud::CloudTarget target;
  AaDedupeOptions options;
  options.index_directory = dir_.string();
  AaDedupeScheme scheme(target, options);

  dataset::DatasetGenerator gen(small_dataset());
  const auto sessions = gen.sessions(2);
  const auto first = scheme.backup(sessions[0]);
  const auto second = scheme.backup(sessions[1]);

  // Unmodified-chunk dedup must work across sessions exactly as with the
  // RAM shards: the incremental session ships far less than the first.
  EXPECT_GT(first.transferred_bytes, 0u);
  EXPECT_LT(second.transferred_bytes, first.transferred_bytes / 2);

  // The shards must really live on disk: one subdirectory per partition,
  // each holding log-structured index files (a WAL mid-run; manifest and
  // sealed segments appear once the memtable seals).
  std::size_t shard_dirs = 0;
  std::size_t shard_files = 0;
  std::uintmax_t shard_bytes = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (entry.is_directory()) ++shard_dirs;
    if (entry.is_regular_file()) {
      ++shard_files;
      shard_bytes += entry.file_size();
    }
  }
  EXPECT_GT(shard_dirs, 1u);  // multiple application partitions
  EXPECT_GE(shard_files, shard_dirs);
  EXPECT_GT(shard_bytes, 0u);  // fingerprints actually hit the disk

  // Restore stays byte-exact through the disk-backed lookups.
  const auto& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 7 < last.files.size() ? std::size_t{7} : std::size_t{1})) {
    const auto& file = last.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST_F(DiskBackedSchemeTest, MetricsMatchRamBackedScheme) {
  // Same dataset through RAM shards and disk shards: per-session dedup
  // metrics must be identical — the backend changes where fingerprints
  // live, never what deduplicates.
  dataset::DatasetGenerator gen_ram(small_dataset());
  dataset::DatasetGenerator gen_disk(small_dataset());
  const auto sessions_ram = gen_ram.sessions(2);
  const auto sessions_disk = gen_disk.sessions(2);

  cloud::CloudTarget target_ram, target_disk;
  AaDedupeScheme ram(target_ram);
  AaDedupeOptions disk_options;
  disk_options.index_directory = dir_.string();
  AaDedupeScheme disk(target_disk, disk_options);

  for (std::size_t s = 0; s < 2; ++s) {
    const auto ram_report = ram.backup(sessions_ram[s]);
    const auto disk_report = disk.backup(sessions_disk[s]);
    EXPECT_EQ(ram_report.transferred_bytes, disk_report.transferred_bytes)
        << "session " << s;
    EXPECT_EQ(ram_report.dataset_bytes, disk_report.dataset_bytes)
        << "session " << s;
  }
}

}  // namespace
}  // namespace aadedupe::core
