// Log-structured index tests: CRUD and reopen durability, WAL crash
// recovery (torn tail truncation), manifest atomicity, bloom filter
// behaviour (zero-disk-read negatives, bounded false-positive rate),
// compaction, and incremental checkpoint round trips.
#include "index/log_structured_index.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "hash/sha1.hpp"
#include "index/checkpoint.hpp"
#include "util/check.hpp"

namespace aadedupe::index {
namespace {

namespace fs = std::filesystem;

class LogStructuredIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("aad_lsi_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

hash::Digest digest_of(int i) {
  return hash::Sha1::hash(as_bytes("chunk-" + std::to_string(i)));
}

ChunkLocation location_of(int i) {
  return ChunkLocation{static_cast<std::uint64_t>(i),
                       static_cast<std::uint32_t>(i * 3),
                       static_cast<std::uint32_t>(i + 1)};
}

TEST_F(LogStructuredIndexTest, InsertLookupRemoveUpdate) {
  LogStructuredIndex idx(dir_);
  const auto d = digest_of(1);
  EXPECT_FALSE(idx.lookup(d).has_value());
  EXPECT_TRUE(idx.insert(d, ChunkLocation{7, 42, 100}));
  EXPECT_FALSE(idx.insert(d, ChunkLocation{9, 9, 9}));  // keeps original
  const auto found = idx.lookup(d);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->container_id, 7u);
  EXPECT_EQ(idx.size(), 1u);

  EXPECT_TRUE(idx.update(d, ChunkLocation{8, 1, 2}));
  EXPECT_EQ(idx.lookup(d)->container_id, 8u);

  EXPECT_TRUE(idx.remove(d));
  EXPECT_FALSE(idx.remove(d));
  EXPECT_FALSE(idx.lookup(d).has_value());
  EXPECT_EQ(idx.size(), 0u);
}

TEST_F(LogStructuredIndexTest, ReopenRecoversMemtableFromWal) {
  {
    LogStructuredIndex idx(dir_);
    for (int i = 0; i < 100; ++i) idx.insert(digest_of(i), location_of(i));
    // No flush(): the entries live only in the WAL and the memtable.
  }
  LogStructuredIndex reopened(dir_);
  EXPECT_EQ(reopened.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto loc = reopened.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->container_id, static_cast<std::uint64_t>(i));
  }
}

TEST_F(LogStructuredIndexTest, SealedSegmentsSurviveReopen) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 64;
  {
    LogStructuredIndex idx(dir_, options);
    for (int i = 0; i < 1000; ++i) idx.insert(digest_of(i), location_of(i));
    EXPECT_GE(idx.segment_count(), 1u);
  }
  LogStructuredIndex reopened(dir_, options);
  EXPECT_EQ(reopened.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    const auto loc = reopened.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->offset, static_cast<std::uint32_t>(i * 3));
  }
}

TEST_F(LogStructuredIndexTest, CompactionPreservesContentsAndDropsRemovals) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 32;
  options.max_segments = 3;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 600; ++i) idx.insert(digest_of(i), location_of(i));
  for (int i = 0; i < 600; i += 2) idx.remove(digest_of(i));
  idx.flush();
  EXPECT_LE(idx.segment_count(), options.max_segments);
  EXPECT_EQ(idx.size(), 300u);
  for (int i = 0; i < 600; ++i) {
    EXPECT_EQ(idx.lookup(digest_of(i)).has_value(), i % 2 == 1) << i;
  }
}

TEST_F(LogStructuredIndexTest, TruncatedWalTailIsDroppedOnReopen) {
  {
    LogStructuredIndex idx(dir_);
    for (int i = 0; i < 10; ++i) idx.insert(digest_of(i), location_of(i));
  }
  // Simulate a crash mid-append: chop bytes off the last WAL record. The
  // per-record checksum detects the torn tail; everything before it
  // replays intact.
  const fs::path wal = dir_ / "wal.log";
  const auto full_size = fs::file_size(wal);
  fs::resize_file(wal, full_size - 5);

  LogStructuredIndex reopened(dir_);
  EXPECT_EQ(reopened.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(reopened.lookup(digest_of(i)).has_value()) << i;
  }
  EXPECT_FALSE(reopened.lookup(digest_of(9)).has_value());
  // The index stays writable after recovery.
  EXPECT_TRUE(reopened.insert(digest_of(9), location_of(9)));
  EXPECT_EQ(reopened.size(), 10u);
}

TEST_F(LogStructuredIndexTest, StaleManifestTmpIsIgnored) {
  {
    LogStructuredIndex::Options options;
    options.memtable_limit = 16;
    LogStructuredIndex idx(dir_, options);
    for (int i = 0; i < 40; ++i) idx.insert(digest_of(i), location_of(i));
  }
  // A crash between writing MANIFEST.tmp and the rename leaves the tmp
  // file behind; recovery must use the (intact) MANIFEST and discard it.
  {
    std::ofstream tmp(dir_ / "MANIFEST.tmp", std::ios::binary);
    tmp << "garbage left by a crashed checkpoint";
  }
  LogStructuredIndex reopened(dir_);
  EXPECT_EQ(reopened.size(), 40u);
  EXPECT_FALSE(fs::exists(dir_ / "MANIFEST.tmp"));
}

TEST_F(LogStructuredIndexTest, CorruptManifestIsRejected) {
  {
    LogStructuredIndex::Options options;
    options.memtable_limit = 8;
    LogStructuredIndex idx(dir_, options);
    for (int i = 0; i < 20; ++i) idx.insert(digest_of(i), location_of(i));
  }
  // Flip a byte inside the manifest body: the trailing checksum no longer
  // matches and the open must fail loudly instead of serving bad state.
  std::fstream manifest(dir_ / "MANIFEST",
                        std::ios::binary | std::ios::in | std::ios::out);
  manifest.seekp(10);
  manifest.put('\xee');
  manifest.close();
  EXPECT_THROW(LogStructuredIndex{dir_}, FormatError);
}

TEST_F(LogStructuredIndexTest, NegativeLookupsAnsweredByBloomWithoutDisk) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 64;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 512; ++i) idx.insert(digest_of(i), location_of(i));
  idx.flush();  // everything sealed: positives would need disk reads

  const IndexStats before = idx.stats();  // inserts also probe the filter
  int absent = 0;
  for (int i = 10000; i < 11000; ++i) {
    if (!idx.lookup(digest_of(i)).has_value()) ++absent;
  }
  EXPECT_EQ(absent, 1000);
  const IndexStats stats = idx.stats();
  const std::uint64_t probes = stats.filter_probes - before.filter_probes;
  const std::uint64_t negatives =
      stats.filter_negatives - before.filter_negatives;
  const std::uint64_t false_positives =
      stats.filter_false_positives - before.filter_false_positives;
  EXPECT_EQ(probes, 1000u);
  EXPECT_EQ(negatives + false_positives, 1000u);
  // ~1% false-positive target: the overwhelming majority of the misses
  // must be absorbed by the filter, each with zero disk reads. Only a
  // false positive may touch disk (at most one block per segment).
  EXPECT_GE(negatives, 950u);
  EXPECT_LE(stats.disk_reads - before.disk_reads,
            false_positives * idx.segment_count());
}

TEST_F(LogStructuredIndexTest, BloomFalsePositiveRateNearTarget) {
  // Property: at design load (live set == sized capacity) the measured
  // false-positive rate stays within 2x the configured target.
  LogStructuredIndex::Options options;
  options.memtable_limit = 256;
  options.bloom_fp_target = 0.01;
  options.bloom_initial_capacity = 4096;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 4096; ++i) idx.insert(digest_of(i), location_of(i));
  idx.flush();

  const int kProbes = 20000;
  int positives = 0;
  for (int i = 100000; i < 100000 + kProbes; ++i) {
    if (idx.maybe_contains(digest_of(i))) ++positives;
  }
  const double rate = static_cast<double>(positives) / kProbes;
  EXPECT_LE(rate, 2.0 * options.bloom_fp_target)
      << positives << " false positives in " << kProbes << " probes";
}

TEST_F(LogStructuredIndexTest, LookupBatchMatchesSingleLookups) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 32;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 100; ++i) idx.insert(digest_of(i), location_of(i));

  std::vector<hash::Digest> digests;
  for (int i = 0; i < 200; ++i) digests.push_back(digest_of(i));
  std::vector<std::optional<ChunkLocation>> found;
  idx.lookup_batch(digests, found);
  ASSERT_EQ(found.size(), digests.size());
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(found[i].has_value(), i < 100) << i;
    if (found[i]) {
      EXPECT_EQ(found[i]->container_id, static_cast<std::uint64_t>(i));
    }
  }
}

TEST_F(LogStructuredIndexTest, CheckpointFullRoundTrip) {
  LogStructuredIndex idx(dir_ / "a");
  for (int i = 0; i < 100; ++i) idx.insert(digest_of(i), location_of(i));

  BufferCheckpointSink sink;
  idx.checkpoint_full(sink);
  const ByteBuffer stream = sink.take();
  ASSERT_TRUE(is_checkpoint_stream(stream));

  LogStructuredIndex restored(dir_ / "b");
  restored.insert(digest_of(9999), location_of(1));  // replaced by the base
  BufferCheckpointSource source(stream);
  restored.restore(source);
  EXPECT_EQ(restored.size(), 100u);
  EXPECT_FALSE(restored.lookup(digest_of(9999)).has_value());
  for (int i = 0; i < 100; ++i) {
    const auto loc = restored.lookup(digest_of(i));
    ASSERT_TRUE(loc.has_value()) << i;
    EXPECT_EQ(loc->length, static_cast<std::uint32_t>(i + 1));
  }
}

TEST_F(LogStructuredIndexTest, CheckpointShipsOnlyTheDelta) {
  LogStructuredIndex producer(dir_ / "producer");
  LogStructuredIndex consumer(dir_ / "consumer");
  for (int i = 0; i < 50; ++i) producer.insert(digest_of(i), location_of(i));

  // First checkpoint: one full base record.
  BufferCheckpointSink base_sink;
  producer.checkpoint(base_sink);
  EXPECT_EQ(base_sink.records(), 1u);
  BufferCheckpointSource base_source(base_sink.buffer());
  consumer.restore(base_source);
  EXPECT_EQ(consumer.size(), 50u);

  // Mutations after the base travel as individual delta records.
  producer.insert(digest_of(50), location_of(50));
  producer.remove(digest_of(0));
  producer.update(digest_of(1), ChunkLocation{77, 7, 7});
  BufferCheckpointSink delta_sink;
  producer.checkpoint(delta_sink);
  EXPECT_EQ(delta_sink.records(), 3u);

  BufferCheckpointSource delta_source(delta_sink.buffer());
  consumer.restore(delta_source);
  EXPECT_EQ(consumer.size(), 50u);  // +1 insert, -1 remove
  EXPECT_TRUE(consumer.lookup(digest_of(50)).has_value());
  EXPECT_FALSE(consumer.lookup(digest_of(0)).has_value());
  EXPECT_EQ(consumer.lookup(digest_of(1))->container_id, 77u);
}

TEST_F(LogStructuredIndexTest, RestoredStateSurvivesReopen) {
  {
    LogStructuredIndex src(dir_ / "src");
    for (int i = 0; i < 30; ++i) src.insert(digest_of(i), location_of(i));
    BufferCheckpointSink sink;
    src.checkpoint_full(sink);
    LogStructuredIndex dst(dir_ / "dst");
    BufferCheckpointSource source(sink.buffer());
    dst.restore(source);
  }
  LogStructuredIndex reopened(dir_ / "dst");
  EXPECT_EQ(reopened.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(reopened.lookup(digest_of(i)).has_value()) << i;
  }
}

TEST_F(LogStructuredIndexTest, SerializeDeserializeCompat) {
  // The deprecated image pair still round-trips (base-record codec and
  // compat loader for pre-checkpoint images).
  LogStructuredIndex::Options options;
  options.memtable_limit = 16;
  LogStructuredIndex idx(dir_ / "a", options);
  for (int i = 0; i < 60; ++i) idx.insert(digest_of(i), location_of(i));
  const ByteBuffer image = idx.serialize();

  LogStructuredIndex restored(dir_ / "b", options);
  restored.deserialize(image);
  EXPECT_EQ(restored.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(restored.lookup(digest_of(i)).has_value()) << i;
  }
}

TEST_F(LogStructuredIndexTest, HotLookupsServedByEntryCache) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 64;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 256; ++i) idx.insert(digest_of(i), location_of(i));
  idx.flush();  // force positives to come from segments, not the memtable

  // First pass faults entries in from disk; repeated passes hit the cache.
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(idx.lookup(digest_of(i)).has_value());
    }
  }
  const IndexStats stats = idx.stats();
  EXPECT_GE(stats.cache_hits, 3u * 32u);
}

TEST_F(LogStructuredIndexTest, CacheCapacityBoundsAreEnforced) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 64;
  options.cache_capacity_bytes = 96 * 16;  // room for ~16 cached entries
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 512; ++i) idx.insert(digest_of(i), location_of(i));
  idx.flush();
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(idx.lookup(digest_of(i)).has_value());
  }
  EXPECT_GT(idx.stats().cache_evictions, 0u);
}

TEST_F(LogStructuredIndexTest, ConcurrentLookupsDuringCheckpoint) {
  LogStructuredIndex::Options options;
  options.memtable_limit = 128;
  LogStructuredIndex idx(dir_, options);
  for (int i = 0; i < 1000; ++i) idx.insert(digest_of(i), location_of(i));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&idx, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = 1000 + t * 500 + i;
        idx.insert(digest_of(key), location_of(key));
        idx.lookup(digest_of(i));
        idx.maybe_contains(digest_of(key / 2));
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    BufferCheckpointSink sink;
    idx.checkpoint(sink);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), 3000u);
}

TEST_F(LogStructuredIndexTest, ShardFactoryIsolatesPartitions) {
  const auto factory = log_structured_shard_factory(dir_);
  const auto doc = factory("doc");
  const auto mp3 = factory("mp3");
  doc->insert(digest_of(1), location_of(1));
  EXPECT_FALSE(mp3->lookup(digest_of(1)).has_value());
  EXPECT_EQ(doc->size(), 1u);
  EXPECT_EQ(mp3->size(), 0u);
}

}  // namespace
}  // namespace aadedupe::index
