// Metric-formula tests (Table II semantics) and table rendering.
#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/energy.hpp"
#include "metrics/params.hpp"
#include "metrics/table_writer.hpp"
#include "util/check.hpp"

namespace aadedupe::metrics {
namespace {

TEST(Params, DedupeRatioBasic) {
  EXPECT_DOUBLE_EQ(dedupe_ratio(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(dedupe_ratio(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(dedupe_ratio(0, 0), 1.0);
}

TEST(Params, DedupeRatioFullyDeduped) {
  // Everything eliminated: finite, large ratio.
  EXPECT_DOUBLE_EQ(dedupe_ratio(1000, 0), 1000.0);
}

TEST(Params, ThroughputBytesPerSecond) {
  EXPECT_DOUBLE_EQ(dedupe_throughput(1000, 2.0), 500.0);
  EXPECT_THROW(dedupe_throughput(1000, 0.0), PreconditionError);
}

TEST(Params, BytesSavedPerSecondFormula) {
  // DE = (1 - 1/DR) * DT. DR=2, DT=100 -> 50 bytes saved/s.
  EXPECT_DOUBLE_EQ(bytes_saved_per_second(2.0, 100.0), 50.0);
  // No dedup (DR=1) saves nothing regardless of speed.
  EXPECT_DOUBLE_EQ(bytes_saved_per_second(1.0, 1e9), 0.0);
  EXPECT_THROW(bytes_saved_per_second(0.5, 100.0), PreconditionError);
}

TEST(Params, BytesSavedMonotoneInBothFactors) {
  EXPECT_GT(bytes_saved_per_second(3.0, 100.0),
            bytes_saved_per_second(2.0, 100.0));
  EXPECT_GT(bytes_saved_per_second(2.0, 200.0),
            bytes_saved_per_second(2.0, 100.0));
}

TEST(Params, BackupWindowTransferBound) {
  // DT huge -> window set by transfer: DS/(DR*NT).
  const double w = backup_window_seconds(1000000, 1e12, 2.0, 500000.0);
  EXPECT_DOUBLE_EQ(w, 1000000.0 / (2.0 * 500000.0));
}

TEST(Params, BackupWindowComputeBound) {
  // NT huge -> window set by dedup throughput: DS/DT.
  const double w = backup_window_seconds(1000000, 250000.0, 2.0, 1e12);
  EXPECT_DOUBLE_EQ(w, 4.0);
}

TEST(Params, BackupWindowCrossover) {
  // At DT == DR*NT both stages take equal time.
  const double w = backup_window_seconds(1000, 1000.0, 2.0, 500.0);
  EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Energy, JoulesCombineIdleAndActive) {
  EnergyModel model{10.0, 20.0};
  // 100 s window, 30 s CPU: 10*100 + 20*30 = 1600 J.
  EXPECT_DOUBLE_EQ(model.energy_joules(100.0, 30.0), 1600.0);
}

TEST(Energy, AverageWatts) {
  EnergyModel model{10.0, 20.0};
  EXPECT_DOUBLE_EQ(model.average_watts(100.0, 30.0), 16.0);
  EXPECT_THROW(model.average_watts(0.0, 0.0), PreconditionError);
}

TEST(Energy, MoreCpuMeansMoreEnergy) {
  EnergyModel model;
  EXPECT_GT(model.energy_joules(10.0, 9.0), model.energy_joules(10.0, 1.0));
}

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter table({"scheme", "DR", "DE"});
  table.add_row({"AA-Dedupe", "3.21", "123"});
  table.add_row({"Avamar", "3.5", "17"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("AA-Dedupe"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableWriter, RejectsMismatchedRow) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(TableWriter, Formatters) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::integer(1234567), "1234567");
  EXPECT_EQ(TableWriter::percent(0.125, 1), "12.5%");
}

}  // namespace
}  // namespace aadedupe::metrics
