// Synthetic-dataset tests: determinism, distributional properties from the
// paper (Fig. 1/2 size skew, Observation 2 cross-type independence,
// Table I redundancy ordering) and the weekly churn model.
#include "dataset/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "chunk/static_chunker.hpp"
#include "dataset/content.hpp"
#include "hash/sha1.hpp"

namespace aadedupe::dataset {
namespace {

DatasetConfig small_config() {
  DatasetConfig config;
  config.seed = 7;
  config.session_bytes = 8ull * 1024 * 1024;
  config.max_file_bytes = 1024 * 1024;
  return config;
}

TEST(Content, MaterializeMatchesRecipeSize) {
  ContentRecipe recipe;
  recipe.kind = FileKind::kTxt;
  recipe.segments = {
      Segment{Segment::Type::kUnique, 1, 1000},
      Segment{Segment::Type::kPool, 0, 3 * kContentBlock},
      Segment{Segment::Type::kZero, 0, 500},
  };
  const ByteBuffer bytes = materialize(recipe);
  EXPECT_EQ(bytes.size(), recipe.size());
  // Zero segment is actually zero.
  for (std::size_t i = bytes.size() - 500; i < bytes.size(); ++i) {
    ASSERT_EQ(bytes[i], std::byte{0});
  }
}

TEST(Content, MaterializationIsDeterministic) {
  ContentRecipe recipe;
  recipe.kind = FileKind::kDoc;
  recipe.segments = {Segment{Segment::Type::kUnique, 42, 5000},
                     Segment{Segment::Type::kPool, 3, 2 * kContentBlock}};
  EXPECT_EQ(materialize(recipe), materialize(recipe));
}

TEST(Content, PoolBlocksDifferByIndexAndKind) {
  ByteBuffer a, b, c;
  pool_block_bytes(FileKind::kDoc, 0, a);
  pool_block_bytes(FileKind::kDoc, 1, b);
  pool_block_bytes(FileKind::kTxt, 0, c);
  EXPECT_NE(a, b);  // different block index
  EXPECT_NE(a, c);  // different kind -> different pool (Observation 2)
}

TEST(Content, PoolSegmentsShareBytesAcrossRecipes) {
  ContentRecipe r1, r2;
  r1.kind = r2.kind = FileKind::kPdf;
  r1.segments = {Segment{Segment::Type::kPool, 5, 2 * kContentBlock}};
  r2.segments = {Segment{Segment::Type::kUnique, 9, 128},
                 Segment{Segment::Type::kPool, 5, 2 * kContentBlock}};
  const ByteBuffer b1 = materialize(r1);
  const ByteBuffer b2 = materialize(r2);
  EXPECT_TRUE(std::equal(b1.begin(), b1.end(), b2.begin() + 128, b2.end()));
}

TEST(Generator, SnapshotsAreDeterministicInSeed) {
  DatasetGenerator g1(small_config());
  DatasetGenerator g2(small_config());
  const auto s1 = g1.sessions(3);
  const auto s2 = g2.sessions(3);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t s = 0; s < s1.size(); ++s) {
    ASSERT_EQ(s1[s].files.size(), s2[s].files.size());
    for (std::size_t f = 0; f < s1[s].files.size(); ++f) {
      EXPECT_EQ(s1[s].files[f].path, s2[s].files[f].path);
      EXPECT_EQ(s1[s].files[f].content, s2[s].files[f].content);
      EXPECT_EQ(s1[s].files[f].version, s2[s].files[f].version);
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  DatasetConfig a = small_config(), b = small_config();
  b.seed = 8;
  const auto sa = DatasetGenerator(a).initial();
  const auto sb = DatasetGenerator(b).initial();
  // Same structure-generation logic but different content seeds.
  ASSERT_FALSE(sa.files.empty());
  ASSERT_FALSE(sb.files.empty());
  EXPECT_NE(sa.files[0].content, sb.files[0].content);
}

TEST(Generator, InitialSnapshotRoughlyHitsTargetBytes) {
  const auto snapshot = DatasetGenerator(small_config()).initial();
  const double actual = static_cast<double>(snapshot.total_bytes());
  const double target = 8.0 * 1024 * 1024;
  EXPECT_GT(actual, target * 0.5);
  EXPECT_LT(actual, target * 2.0);
}

TEST(Generator, TinyFilesDominateCountNotBytes) {
  // Fig. 1/2: ~61% of files are tiny but hold a tiny fraction of bytes.
  const auto snapshot = DatasetGenerator(small_config()).initial();
  std::uint64_t tiny_count = 0, tiny_bytes = 0;
  for (const FileEntry& f : snapshot.files) {
    if (f.size() < 10 * 1024) {
      ++tiny_count;
      tiny_bytes += f.size();
    }
  }
  const double count_fraction =
      static_cast<double>(tiny_count) /
      static_cast<double>(snapshot.files.size());
  const double byte_fraction = static_cast<double>(tiny_bytes) /
                               static_cast<double>(snapshot.total_bytes());
  EXPECT_NEAR(count_fraction, 0.61, 0.08);
  EXPECT_LT(byte_fraction, 0.05);
}

TEST(Generator, AllTwelveKindsPresent) {
  const auto snapshot = DatasetGenerator(small_config()).initial();
  std::set<FileKind> kinds;
  for (const FileEntry& f : snapshot.files) kinds.insert(f.kind);
  EXPECT_EQ(kinds.size(), kFileKindCount);
}

TEST(Generator, PathsAreUniqueAcrossSessions) {
  DatasetGenerator gen(small_config());
  const auto sessions = gen.sessions(3);
  for (const Snapshot& s : sessions) {
    std::set<std::string> paths;
    for (const FileEntry& f : s.files) {
      EXPECT_TRUE(paths.insert(f.path).second) << "dup path " << f.path;
    }
  }
}

TEST(Generator, ChurnKeepsMostFilesIdentical) {
  DatasetGenerator gen(small_config());
  const Snapshot s0 = gen.initial();
  const Snapshot s1 = gen.next(s0);

  std::map<std::string, const FileEntry*> prev;
  for (const FileEntry& f : s0.files) prev.emplace(f.path, &f);

  std::size_t unchanged = 0, carried = 0;
  for (const FileEntry& f : s1.files) {
    const auto it = prev.find(f.path);
    if (it == prev.end()) continue;
    ++carried;
    if (f.version == it->second->version &&
        f.content == it->second->content) {
      ++unchanged;
    }
  }
  // Most files survive a week, and most survivors are untouched — the
  // redundancy every backup scheme exploits.
  EXPECT_GT(carried, s0.files.size() * 9 / 10);
  EXPECT_GT(unchanged, carried * 6 / 10);
}

TEST(Generator, SessionsAreNumberedSequentially) {
  DatasetGenerator gen(small_config());
  const auto sessions = gen.sessions(4);
  for (std::uint32_t s = 0; s < sessions.size(); ++s) {
    EXPECT_EQ(sessions[s].session, s);
  }
}

TEST(Generator, CrossKindChunkSharingIsNegligible) {
  // Observation 2: compare 8 KB static-chunk digests across application
  // types; the overlap must be (near) zero.
  const auto snapshot = DatasetGenerator(small_config()).initial();
  chunk::StaticChunker sc;
  std::map<FileKind, std::set<std::string>> per_kind;
  ByteBuffer content;
  for (const FileEntry& f : snapshot.files) {
    if (f.size() < 10 * 1024) continue;
    materialize_into(f.content, content);
    for (const chunk::ChunkRef& ref : sc.split(content)) {
      per_kind[f.kind].insert(
          hash::Sha1::hash(
              ConstByteSpan{content}.subspan(ref.offset, ref.length))
              .hex());
    }
  }
  std::size_t cross_shared = 0;
  for (auto it = per_kind.begin(); it != per_kind.end(); ++it) {
    for (auto jt = std::next(it); jt != per_kind.end(); ++jt) {
      for (const auto& d : it->second) cross_shared += jt->second.count(d);
    }
  }
  EXPECT_EQ(cross_shared, 0u);
}

TEST(Generator, StatsOnlyModeUsesPaperSizes) {
  DatasetConfig config;
  config.seed = 3;
  config.stats_only = true;
  config.session_bytes = 4ull * 1024 * 1024 * 1024;  // sizes are metadata
  const auto snapshot = DatasetGenerator(config).initial();
  // With Table I means, some files must exceed the bench cap by far.
  std::uint64_t largest = 0;
  for (const FileEntry& f : snapshot.files) {
    largest = std::max(largest, f.size());
  }
  EXPECT_GT(largest, 100ull * 1024 * 1024);
}

TEST(Generator, HistogramCoversAllFilesOnce) {
  const auto snapshot = DatasetGenerator(small_config()).initial();
  const auto bins = size_histogram(snapshot);
  std::uint64_t files = 0, bytes = 0;
  for (const SizeBin& b : bins) {
    files += b.file_count;
    bytes += b.total_bytes;
  }
  EXPECT_EQ(files, snapshot.files.size());
  EXPECT_EQ(bytes, snapshot.total_bytes());
}

TEST(Generator, CompressedKindsHaveLowIntraRedundancy) {
  // Table I ordering smoke test at small scale: a compressed kind (RAR)
  // must show far less duplicate chunk mass than a dynamic kind (PPT).
  DatasetGenerator gen(small_config());
  Snapshot snapshot = gen.kind_corpus(FileKind::kRar, 8ull << 20);
  const Snapshot ppt = gen.kind_corpus(FileKind::kPpt, 8ull << 20);
  snapshot.files.insert(snapshot.files.end(), ppt.files.begin(),
                        ppt.files.end());
  chunk::StaticChunker sc;

  auto duplicate_fraction = [&](FileKind kind) {
    // Match the paper's Table I methodology: file-level dedup first, then
    // measure chunk-level duplicate mass among the surviving files.
    std::set<std::string> seen_files;
    std::map<std::string, int> counts;
    std::uint64_t total = 0, dup = 0;
    ByteBuffer content;
    for (const FileEntry& f : snapshot.files) {
      if (f.kind != kind || f.size() < 10 * 1024) continue;
      materialize_into(f.content, content);
      if (!seen_files.insert(hash::Sha1::hash(content).hex()).second) {
        continue;  // whole-file duplicate, removed by file-level dedup
      }
      for (const chunk::ChunkRef& ref : sc.split(content)) {
        const auto hex =
            hash::Sha1::hash(
                ConstByteSpan{content}.subspan(ref.offset, ref.length))
                .hex();
        total += ref.length;
        if (counts[hex]++ > 0) dup += ref.length;
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(dup) / static_cast<double>(total);
  };

  EXPECT_LT(duplicate_fraction(FileKind::kRar), 0.08);
  EXPECT_GT(duplicate_fraction(FileKind::kPpt), 0.10);
}

}  // namespace
}  // namespace aadedupe::dataset
