// Container-manager tests: sealing at capacity, early-flush padding,
// location validity and stats.
#include "container/container_manager.hpp"

#include <gtest/gtest.h>

#include <map>

#include "container/container.hpp"
#include "hash/md5.hpp"
#include "util/rng.hpp"

namespace aadedupe::container {
namespace {

ByteBuffer random_bytes(std::size_t n, std::uint64_t seed) {
  ByteBuffer data(n);
  Xoshiro256 rng(seed);
  rng.fill(data);
  return data;
}

struct Captured {
  std::map<std::uint64_t, ByteBuffer> shipped;

  ContainerSink sink() {
    return [this](std::uint64_t id, ByteBuffer bytes) {
      shipped.emplace(id, std::move(bytes));
    };
  }
};

TEST(ContainerManager, NothingShippedUntilCapacity) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink(), 64 * 1024);
  mgr.store(hash::Md5::hash(as_bytes("a")), random_bytes(1000, 1));
  EXPECT_TRUE(captured.shipped.empty());
  EXPECT_EQ(mgr.containers_shipped(), 0u);
}

TEST(ContainerManager, SealsWhenFull) {
  Captured captured;
  ContainerIdAllocator ids;
  constexpr std::size_t kCapacity = 16 * 1024;
  ContainerManager mgr(ids, captured.sink(), kCapacity);
  for (int i = 0; i < 5; ++i) {
    mgr.store(hash::Md5::hash(as_bytes(std::to_string(i))),
              random_bytes(4 * 1024, static_cast<std::uint64_t>(i)));
  }
  // 5 x 4K chunks = 20K > one 16K container: at least one shipped.
  EXPECT_GE(captured.shipped.size(), 1u);
}

TEST(ContainerManager, FlushShipsPaddedContainerWhenConfigured) {
  Captured captured;
  ContainerIdAllocator ids;
  constexpr std::size_t kCapacity = 16 * 1024;
  ContainerManager mgr(ids, captured.sink(), kCapacity,
                       /*pad_on_flush=*/true);
  mgr.store(hash::Md5::hash(as_bytes("x")), random_bytes(100, 2));
  mgr.flush();
  ASSERT_EQ(captured.shipped.size(), 1u);
  // Padded: object size >= capacity (header + capacity-padded payload).
  EXPECT_GE(captured.shipped.begin()->second.size(), kCapacity);
  EXPECT_EQ(mgr.padding_bytes(), kCapacity - 100);
}

TEST(ContainerManager, FlushShipsUnpaddedByDefault) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink(), 16 * 1024);
  mgr.store(hash::Md5::hash(as_bytes("x")), random_bytes(100, 2));
  mgr.flush();
  ASSERT_EQ(captured.shipped.size(), 1u);
  EXPECT_LT(captured.shipped.begin()->second.size(), 1024u);
  EXPECT_EQ(mgr.padding_bytes(), 0u);
}

TEST(ContainerManager, FlushOnEmptyIsNoop) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink());
  mgr.flush();
  EXPECT_TRUE(captured.shipped.empty());
}

TEST(ContainerManager, LocationsResolveThroughReaders) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink(), 16 * 1024);

  std::vector<std::pair<index::ChunkLocation, ByteBuffer>> stored;
  for (int i = 0; i < 40; ++i) {
    ByteBuffer chunk = random_bytes(2000, 100 + static_cast<std::uint64_t>(i));
    const auto loc = mgr.store(hash::Md5::hash(chunk), chunk);
    stored.emplace_back(loc, std::move(chunk));
  }
  mgr.flush();

  std::map<std::uint64_t, ContainerReader> readers;
  for (auto& [id, bytes] : captured.shipped) {
    readers.emplace(id, ContainerReader(std::move(bytes)));
  }
  for (const auto& [loc, chunk] : stored) {
    const auto it = readers.find(loc.container_id);
    ASSERT_NE(it, readers.end());
    const ConstByteSpan payload = it->second.chunk_at(loc.offset, loc.length);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), chunk.begin(),
                           chunk.end()));
  }
}

TEST(ContainerManager, OversizedChunkGetsOwnContainer) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink(), 16 * 1024);
  mgr.store(hash::Md5::hash(as_bytes("small")), random_bytes(1000, 3));
  const ByteBuffer big = random_bytes(100 * 1024, 4);
  const auto loc = mgr.store(hash::Md5::hash(big), big);
  mgr.flush();

  // The big chunk's container holds exactly one descriptor.
  ASSERT_TRUE(captured.shipped.contains(loc.container_id));
  ContainerReader reader(std::move(captured.shipped.at(loc.container_id)));
  ASSERT_EQ(reader.descriptors().size(), 1u);
  EXPECT_EQ(reader.descriptors()[0].length, 100u * 1024u);
}

TEST(ContainerManager, IdsAreUniqueAcrossManagers) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager a(ids, captured.sink(), 16 * 1024);
  ContainerManager b(ids, captured.sink(), 16 * 1024);
  a.store(hash::Md5::hash(as_bytes("1")), random_bytes(100, 5));
  b.store(hash::Md5::hash(as_bytes("2")), random_bytes(100, 6));
  a.flush();
  b.flush();
  EXPECT_EQ(captured.shipped.size(), 2u);  // distinct ids -> distinct keys
}

TEST(ContainerManager, StatsTrackShippedBytes) {
  Captured captured;
  ContainerIdAllocator ids;
  ContainerManager mgr(ids, captured.sink(), 16 * 1024);
  mgr.store(hash::Md5::hash(as_bytes("x")), random_bytes(5000, 7));
  mgr.flush();
  std::uint64_t total = 0;
  for (const auto& [id, bytes] : captured.shipped) total += bytes.size();
  EXPECT_EQ(mgr.bytes_stored(), total);
  EXPECT_EQ(mgr.containers_shipped(), captured.shipped.size());
}

}  // namespace
}  // namespace aadedupe::container
