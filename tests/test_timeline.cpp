// Timeline tests: snapshot interval arithmetic on an injected (sim)
// clock, forced samples, columnar JSON with union-of-names zero fill,
// histogram exclusion, the bounded-memory thinning rule (including the
// exactly-at-cap boundary), and sampling racing concurrent readers
// (fill_json + a HealthMonitor driven from the sample hook) — the last
// is what TSan runs watch.
#include "telemetry/timeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "telemetry/health.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

TEST(Timeline, IntervalArithmeticGatesSampling) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  EXPECT_TRUE(timeline.maybe_sample(0.0));   // first sample always lands
  EXPECT_FALSE(timeline.maybe_sample(0.25));
  EXPECT_FALSE(timeline.maybe_sample(0.999));
  EXPECT_TRUE(timeline.maybe_sample(1.0));   // exactly one interval later
  EXPECT_FALSE(timeline.maybe_sample(1.5));
  EXPECT_TRUE(timeline.maybe_sample(7.25));  // gaps are fine, one point
  EXPECT_EQ(timeline.sample_count(), 3u);

  // Time moving backwards (a rebased clock) never samples.
  EXPECT_FALSE(timeline.maybe_sample(2.0));
  EXPECT_EQ(timeline.sample_count(), 3u);
}

TEST(Timeline, SetIntervalRejectsNonPositive) {
  Timeline timeline;
  EXPECT_THROW(timeline.set_interval(0.0), PreconditionError);
  EXPECT_THROW(timeline.set_interval(-1.0), PreconditionError);
  timeline.set_interval(0.5);
  EXPECT_DOUBLE_EQ(timeline.interval(), 0.5);
}

TEST(Timeline, ForceSampleIgnoresTheInterval) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(100.0);
  EXPECT_TRUE(timeline.maybe_sample(0.0));
  EXPECT_FALSE(timeline.maybe_sample(1.0));
  timeline.force_sample(1.0);  // session end wants the final point
  EXPECT_EQ(timeline.sample_count(), 2u);
}

TEST(Timeline, UnboundTimelineRecordsNothing) {
  Timeline timeline;
  EXPECT_TRUE(timeline.maybe_sample(0.0));  // gate passes, sample is a no-op
  EXPECT_EQ(timeline.sample_count(), 0u);
  EXPECT_TRUE(timeline.empty());
}

TEST(Timeline, ColumnarJsonZeroFillsLateMetrics) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  const Counter bytes = metrics.counter("container.bytes");
  metrics.histogram("pipeline.item_bytes").observe(512);  // must be skipped

  bytes.add(10);
  EXPECT_TRUE(timeline.maybe_sample(0.0));

  // A gauge registered after the first sample: earlier points read 0.
  const Gauge depth = metrics.gauge("pipeline.queue_depth");
  depth.set(3);
  bytes.add(30);
  EXPECT_TRUE(timeline.maybe_sample(1.0));

  JsonValue doc;
  timeline.fill_json(doc);
  EXPECT_DOUBLE_EQ(doc.find("interval_s")->as_double(), 1.0);

  const auto& times = doc.find("t_s")->array_items();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(times[1].as_double(), 1.0);

  const JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("pipeline.item_bytes"), nullptr);  // histogram

  const auto& byte_column = series->find("container.bytes")->array_items();
  ASSERT_EQ(byte_column.size(), 2u);
  EXPECT_EQ(byte_column[0].as_uint(), 10u);
  EXPECT_EQ(byte_column[1].as_uint(), 40u);

  const auto& depth_column =
      series->find("pipeline.queue_depth")->array_items();
  ASSERT_EQ(depth_column.size(), 2u);
  EXPECT_EQ(depth_column[0].as_uint(), 0u);  // predates registration
  EXPECT_EQ(depth_column[1].as_uint(), 3u);
}

TEST(Timeline, ThinningBoundsMemoryAndDoublesTheInterval) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  // One past the cap triggers a thin: keep every other point, double the
  // interval, and keep accepting samples on the wider grid.
  const auto cap = static_cast<double>(Timeline::kMaxSamples);
  for (double t = 0.0; t <= cap; t += 1.0) {
    EXPECT_TRUE(timeline.maybe_sample(t));
  }
  EXPECT_EQ(timeline.sample_count(), Timeline::kMaxSamples / 2 + 1);
  EXPECT_DOUBLE_EQ(timeline.interval(), 2.0);

  // The surviving points are the even-indexed ones — coverage stays even.
  JsonValue doc;
  timeline.fill_json(doc);
  const auto& times = doc.find("t_s")->array_items();
  EXPECT_DOUBLE_EQ(times[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(times[1].as_double(), 2.0);
  EXPECT_DOUBLE_EQ(times.back().as_double(), cap);

  // The next sample must respect the doubled interval.
  EXPECT_FALSE(timeline.maybe_sample(cap + 1.0));
  EXPECT_TRUE(timeline.maybe_sample(cap + 2.0));
}

TEST(Timeline, ExactlyAtTheCapDoesNotThin) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  // Exactly kMaxSamples points: the thinning rule is strictly
  // greater-than, so the cap itself must survive untouched.
  for (double t = 0.0;
       t < static_cast<double>(Timeline::kMaxSamples); t += 1.0) {
    EXPECT_TRUE(timeline.maybe_sample(t));
  }
  EXPECT_EQ(timeline.sample_count(), Timeline::kMaxSamples);
  EXPECT_DOUBLE_EQ(timeline.interval(), 1.0);

  // The 1025th point tips it over: half the points, doubled interval.
  EXPECT_TRUE(
      timeline.maybe_sample(static_cast<double>(Timeline::kMaxSamples)));
  EXPECT_EQ(timeline.sample_count(), Timeline::kMaxSamples / 2 + 1);
  EXPECT_DOUBLE_EQ(timeline.interval(), 2.0);
}

/// Sampling (with the hook driving a HealthMonitor tick, exactly as
/// bench::Observability wires it) racing a reader that snapshots both
/// the timeline JSON and the health verdict. No assertions beyond "the
/// numbers add up" — the point is that a TSan build sees the
/// interleaving and must stay silent.
TEST(Timeline, SamplingRacesJsonSnapshotAndHealthReader) {
  double base = 0.0;
  std::atomic<double> now{0.0};
  Telemetry telemetry([&now] { return now.load(std::memory_order_relaxed); });
  HealthMonitor health(telemetry);
  const Counter ticks = telemetry.metrics.counter("race.ticks");
  telemetry.timeline.set_interval(0.001);
  telemetry.timeline.set_sample_hook(
      [&health](double t_s) { health.tick(t_s); });

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      JsonValue timeline_doc, healthz_doc, tracez_doc;
      telemetry.timeline.fill_json(timeline_doc);
      health.fill_healthz_json(healthz_doc);
      health.fill_tracez_json(tracez_doc);
      (void)health.verdict();
    }
  });
  std::thread late_reader([&] {
    // The "late" HealthMonitor reader: starts against a timeline that is
    // already thinning and keeps reading until the writer is done.
    while (!stop.load(std::memory_order_acquire)) {
      (void)health.any_stage_stalled();
      (void)telemetry.timeline.sample_count();
    }
  });

  for (int i = 0; i < 4000; ++i) {
    base += 0.001;
    now.store(base, std::memory_order_relaxed);
    ticks.add(1);
    {
      TraceSpan span(&telemetry.trace, Stage::kChunk, "race");
    }
    telemetry.timeline.maybe_sample(base);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  late_reader.join();

  telemetry.timeline.set_sample_hook(nullptr);
  EXPECT_GT(telemetry.timeline.sample_count(), 0u);
  JsonValue doc;
  telemetry.timeline.fill_json(doc);
  EXPECT_NE(doc.find("t_s"), nullptr);
}

}  // namespace
}  // namespace aadedupe::telemetry
