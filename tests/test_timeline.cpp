// Timeline tests: snapshot interval arithmetic on an injected (sim)
// clock, forced samples, columnar JSON with union-of-names zero fill,
// histogram exclusion, and the bounded-memory thinning rule.
#include "telemetry/timeline.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"

namespace aadedupe::telemetry {
namespace {

TEST(Timeline, IntervalArithmeticGatesSampling) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  EXPECT_TRUE(timeline.maybe_sample(0.0));   // first sample always lands
  EXPECT_FALSE(timeline.maybe_sample(0.25));
  EXPECT_FALSE(timeline.maybe_sample(0.999));
  EXPECT_TRUE(timeline.maybe_sample(1.0));   // exactly one interval later
  EXPECT_FALSE(timeline.maybe_sample(1.5));
  EXPECT_TRUE(timeline.maybe_sample(7.25));  // gaps are fine, one point
  EXPECT_EQ(timeline.sample_count(), 3u);

  // Time moving backwards (a rebased clock) never samples.
  EXPECT_FALSE(timeline.maybe_sample(2.0));
  EXPECT_EQ(timeline.sample_count(), 3u);
}

TEST(Timeline, SetIntervalRejectsNonPositive) {
  Timeline timeline;
  EXPECT_THROW(timeline.set_interval(0.0), PreconditionError);
  EXPECT_THROW(timeline.set_interval(-1.0), PreconditionError);
  timeline.set_interval(0.5);
  EXPECT_DOUBLE_EQ(timeline.interval(), 0.5);
}

TEST(Timeline, ForceSampleIgnoresTheInterval) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(100.0);
  EXPECT_TRUE(timeline.maybe_sample(0.0));
  EXPECT_FALSE(timeline.maybe_sample(1.0));
  timeline.force_sample(1.0);  // session end wants the final point
  EXPECT_EQ(timeline.sample_count(), 2u);
}

TEST(Timeline, UnboundTimelineRecordsNothing) {
  Timeline timeline;
  EXPECT_TRUE(timeline.maybe_sample(0.0));  // gate passes, sample is a no-op
  EXPECT_EQ(timeline.sample_count(), 0u);
  EXPECT_TRUE(timeline.empty());
}

TEST(Timeline, ColumnarJsonZeroFillsLateMetrics) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  const Counter bytes = metrics.counter("container.bytes");
  metrics.histogram("pipeline.item_bytes").observe(512);  // must be skipped

  bytes.add(10);
  EXPECT_TRUE(timeline.maybe_sample(0.0));

  // A gauge registered after the first sample: earlier points read 0.
  const Gauge depth = metrics.gauge("pipeline.queue_depth");
  depth.set(3);
  bytes.add(30);
  EXPECT_TRUE(timeline.maybe_sample(1.0));

  JsonValue doc;
  timeline.fill_json(doc);
  EXPECT_DOUBLE_EQ(doc.find("interval_s")->as_double(), 1.0);

  const auto& times = doc.find("t_s")->array_items();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(times[1].as_double(), 1.0);

  const JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("pipeline.item_bytes"), nullptr);  // histogram

  const auto& byte_column = series->find("container.bytes")->array_items();
  ASSERT_EQ(byte_column.size(), 2u);
  EXPECT_EQ(byte_column[0].as_uint(), 10u);
  EXPECT_EQ(byte_column[1].as_uint(), 40u);

  const auto& depth_column =
      series->find("pipeline.queue_depth")->array_items();
  ASSERT_EQ(depth_column.size(), 2u);
  EXPECT_EQ(depth_column[0].as_uint(), 0u);  // predates registration
  EXPECT_EQ(depth_column[1].as_uint(), 3u);
}

TEST(Timeline, ThinningBoundsMemoryAndDoublesTheInterval) {
  MetricsRegistry metrics;
  Timeline timeline(&metrics);
  timeline.set_interval(1.0);

  // One past the cap triggers a thin: keep every other point, double the
  // interval, and keep accepting samples on the wider grid.
  const auto cap = static_cast<double>(Timeline::kMaxSamples);
  for (double t = 0.0; t <= cap; t += 1.0) {
    EXPECT_TRUE(timeline.maybe_sample(t));
  }
  EXPECT_EQ(timeline.sample_count(), Timeline::kMaxSamples / 2 + 1);
  EXPECT_DOUBLE_EQ(timeline.interval(), 2.0);

  // The surviving points are the even-indexed ones — coverage stays even.
  JsonValue doc;
  timeline.fill_json(doc);
  const auto& times = doc.find("t_s")->array_items();
  EXPECT_DOUBLE_EQ(times[0].as_double(), 0.0);
  EXPECT_DOUBLE_EQ(times[1].as_double(), 2.0);
  EXPECT_DOUBLE_EQ(times.back().as_double(), cap);

  // The next sample must respect the doubled interval.
  EXPECT_FALSE(timeline.maybe_sample(cap + 1.0));
  EXPECT_TRUE(timeline.maybe_sample(cap + 2.0));
}

}  // namespace
}  // namespace aadedupe::telemetry
