// Unit tests for the deterministic random generators.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace aadedupe {
namespace {

TEST(SplitMix64, DeterministicAndMixing) {
  SplitMix64 a(1), b(1), c(2);
  const std::uint64_t first = a.next();
  EXPECT_EQ(first, b.next());
  EXPECT_NE(first, c.next());
  EXPECT_NE(first, a.next());  // successive values differ
}

TEST(DeriveSeed, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(7, 13), derive_seed(7, 13));
  EXPECT_NE(derive_seed(7, 13), derive_seed(8, 13));
}

TEST(Xoshiro256, DeterministicSequence) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.between(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng(4);
  double sum = 0, sum_sq = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(Xoshiro256, LognormalMeanMatchesFormula) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  Xoshiro256 rng(5);
  const double mu = std::log(1000.0) - 0.5 * 0.5 / 2.0;
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.lognormal(mu, 0.5);
  EXPECT_NEAR(sum / kSamples, 1000.0, 30.0);
}

TEST(Xoshiro256, FillDeterministicAndCoversTail) {
  ByteBuffer a(37), b(37);
  Xoshiro256 r1(9), r2(9);
  r1.fill(a);
  r2.fill(b);
  EXPECT_EQ(a, b);
  // Non-multiple-of-8 tails are actually written (not left zero).
  ByteBuffer c(37, std::byte{0});
  Xoshiro256 r3(10);
  r3.fill(c);
  bool tail_nonzero = false;
  for (std::size_t i = 32; i < c.size(); ++i) {
    tail_nonzero |= (c[i] != std::byte{0});
  }
  EXPECT_TRUE(tail_nonzero);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace aadedupe
