// Garbage-collection / retention tests for AA-Dedupe — the background
// deletion process the paper defers to future work (Section III.F).
#include <gtest/gtest.h>

#include <set>

#include "backup/keys.hpp"
#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "index/partitioned_index.hpp"

namespace aadedupe::core {
namespace {

dataset::DatasetConfig gc_config(std::uint64_t seed = 17) {
  dataset::DatasetConfig config;
  config.seed = seed;
  config.session_bytes = 5ull << 20;
  config.max_file_bytes = 1 << 20;
  return config;
}

TEST(GarbageCollection, NoopWithoutHistory) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  const GcReport report = scheme.collect_garbage(2);
  EXPECT_EQ(report.sessions_retained, 0u);
  EXPECT_EQ(report.containers_scanned, 0u);
}

TEST(GarbageCollection, RejectsZeroRetention) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  EXPECT_THROW(scheme.collect_garbage(0), PreconditionError);
}

TEST(GarbageCollection, RetentionWithinWindowKeepsEverything) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config());
  const auto sessions = gen.sessions(2);
  for (const auto& s : sessions) scheme.backup(s);

  const std::uint64_t stored_before = target.store().stored_bytes();
  const GcReport report = scheme.collect_garbage(5);
  EXPECT_EQ(report.sessions_retained, 2u);
  EXPECT_EQ(report.sessions_expired, 0u);
  EXPECT_EQ(report.containers_deleted, 0u);
  // Everything referenced by retained sessions survives untouched.
  EXPECT_EQ(target.store().stored_bytes(), stored_before);
}

TEST(GarbageCollection, ExpiredSessionMetadataRemoved) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config());
  const auto sessions = gen.sessions(3);
  for (const auto& s : sessions) scheme.backup(s);

  const GcReport report = scheme.collect_garbage(1);
  EXPECT_EQ(report.sessions_expired, 2u);
  EXPECT_FALSE(target.store().exists(
      backup::keys::session_meta("AA-Dedupe", 0, "recipes")));
  EXPECT_FALSE(target.store().exists(
      backup::keys::session_meta("AA-Dedupe", 1, "recipes")));
  EXPECT_TRUE(target.store().exists(
      backup::keys::session_meta("AA-Dedupe", 2, "recipes")));
}

TEST(GarbageCollection, ReclaimsSpaceAfterChurn) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(23));
  const auto sessions = gen.sessions(5);
  for (const auto& s : sessions) scheme.backup(s);

  const std::uint64_t stored_before = target.store().stored_bytes();
  const GcReport report = scheme.collect_garbage(1);
  // Five sessions of churn leave dead versions behind; retaining only the
  // last one must free something.
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_LT(target.store().stored_bytes(), stored_before);
  EXPECT_GT(report.containers_scanned, 0u);
}

TEST(GarbageCollection, LatestSessionRestoresByteExactAfterGc) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(29));
  const auto sessions = gen.sessions(4);
  for (const auto& s : sessions) scheme.backup(s);

  GcOptions aggressive;
  aggressive.rewrite_threshold = 0.95;  // force rewrites of most containers
  scheme.collect_garbage(1, aggressive);

  const dataset::Snapshot& last = sessions.back();
  for (std::size_t i = 0; i < last.files.size();
       i += (i + 5 < last.files.size() ? std::size_t{5} : std::size_t{1})) {
    const auto& file = last.files[i];
    const ByteBuffer expected = dataset::materialize(file.content);
    const ByteBuffer restored = scheme.restore_file(file.path);
    ASSERT_EQ(restored, expected) << file.path;
  }
}

TEST(GarbageCollection, AllRetainedSessionsRestoreAfterGc) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(31));
  const auto sessions = gen.sessions(3);
  for (const auto& s : sessions) scheme.backup(s);

  scheme.collect_garbage(2);  // keep sessions 1 and 2

  // The retained-but-not-latest session's recipes were re-uploaded and
  // must reference only containers that still exist.
  const auto image = target.store().get(
      backup::keys::session_meta("AA-Dedupe", 1, "recipes"));
  ASSERT_TRUE(image.has_value());
  const auto recipes = container::RecipeStore::deserialize(*image);
  for (const std::string& path : recipes.paths()) {
    for (const auto& entry : recipes.find(path)->entries) {
      EXPECT_TRUE(target.store().exists(
          backup::keys::container_object(entry.location.container_id)))
          << path;
    }
  }
}

TEST(GarbageCollection, IndexRebuiltWithoutDeadChunks) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(37));
  const auto sessions = gen.sessions(4);
  for (const auto& s : sessions) scheme.backup(s);

  const std::uint64_t index_before = scheme.aa_index().total_size();
  scheme.collect_garbage(1);
  const std::uint64_t index_after = scheme.aa_index().total_size();
  // Dead fingerprints (chunks only referenced by expired sessions) must
  // leave the index.
  EXPECT_LT(index_after, index_before);
  EXPECT_GT(index_after, 0u);
}

TEST(GarbageCollection, BackupAfterGcStaysConsistent) {
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(41));
  auto snapshot = gen.initial();
  scheme.backup(snapshot);
  for (int round = 0; round < 3; ++round) {
    snapshot = gen.next(snapshot);
    scheme.backup(snapshot);
    GcOptions opts;
    opts.rewrite_threshold = 0.9;
    scheme.collect_garbage(1, opts);
  }
  // After interleaved backup/GC rounds, the latest snapshot must restore.
  for (std::size_t i = 0; i < snapshot.files.size();
       i += (i + 9 < snapshot.files.size() ? std::size_t{9} : std::size_t{1})) {
    const auto& file = snapshot.files[i];
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

TEST(GarbageCollection, RewritePreservesChunkBytes) {
  // Targeted check of the rewrite path: force rewrite of everything and
  // verify relocated chunk payloads via full-file restores of a doc-heavy
  // workload (CDC chunks, many per container).
  cloud::CloudTarget target;
  AaDedupeScheme scheme(target);
  dataset::DatasetGenerator gen(gc_config(43));
  const auto corpus = gen.kind_corpus(dataset::FileKind::kDoc, 3ull << 20);
  dataset::Snapshot snapshot;
  snapshot.session = 0;
  snapshot.files = corpus.files;
  scheme.backup(snapshot);

  // Drop half the files in "session 1" so containers become half-live.
  dataset::Snapshot pruned;
  pruned.session = 1;
  for (std::size_t i = 0; i < snapshot.files.size(); i += 2) {
    pruned.files.push_back(snapshot.files[i]);
  }
  scheme.backup(pruned);

  GcOptions opts;
  opts.rewrite_threshold = 1.0;  // rewrite anything not fully live
  const GcReport report = scheme.collect_garbage(1, opts);
  EXPECT_GT(report.chunks_relocated, 0u);

  for (const auto& file : pruned.files) {
    ASSERT_EQ(scheme.restore_file(file.path),
              dataset::materialize(file.content))
        << file.path;
  }
}

}  // namespace
}  // namespace aadedupe::core
