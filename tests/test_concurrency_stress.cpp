// Concurrency stress tests — written to give ThreadSanitizer something to
// chew on (build with the `tsan` preset / AAD_SANITIZE=thread). Each test
// drives a shared-state hot path hard enough that an unlocked access, a
// missed notify, or an ordering bug has a real chance to manifest, and TSan
// turns "a chance" into a deterministic report.
//
// The suites also run (smaller) in the plain and ASan builds, where they
// assert the functional invariants: no lost items, no double-visits, no
// deadlocks, parallel == serial dedup results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/aa_dedupe.hpp"
#include "dataset/generator.hpp"
#include "util/bounded_queue.hpp"
#include "util/thread_pool.hpp"

namespace aadedupe {
namespace {

// TSan instrumentation costs ~5-15x; keep wall-clock comparable by scaling
// the storm sizes down (the interleaving coverage matters, not the volume).
#ifdef AAD_TSAN
constexpr std::size_t kScale = 1;
#else
constexpr std::size_t kScale = 8;
#endif

// ---- ThreadPool: contended parallel_for ------------------------------------

TEST(StressThreadPool, ContendedGrainsVisitEveryIndexOnce) {
  // Repeated parallel_for rounds with every grain shape over one pool: the
  // work-stealing counter, the futures, and the queue mutex all stay hot.
  ThreadPool pool(8);
  const std::size_t n = 2000 * kScale;
  std::vector<std::atomic<std::uint8_t>> hits(n);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{64}}) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.parallel_for(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " grain " << grain;
    }
  }
}

TEST(StressThreadPool, ConcurrentParallelForCallersShareOnePool) {
  // Several external threads each run their own parallel_for on the same
  // pool. Their chunk tasks interleave in the shared deque; each caller's
  // atomic cursor and error slot must stay isolated.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  const std::size_t n = 1500 * kScale;
  std::vector<std::vector<std::atomic<std::uint8_t>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<std::uint8_t>>(n);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(
          n, [&, c](std::size_t i) { hits[c][i].fetch_add(1); },
          /*grain=*/1 + c % 3);
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1u) << "caller " << c << " index " << i;
    }
  }
}

TEST(StressThreadPool, SubmitStormFromManyThreads) {
  // Producers race submit() against workers draining; the final count
  // proves no task was dropped between the lock release and notify.
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 6;
  const std::size_t per_producer = 400 * kScale;
  std::atomic<std::size_t> ran{0};
  std::vector<std::future<void>> futures[kProducers];
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (auto& f : futures) f.reserve(per_producer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        futures[p].push_back(pool.submit([&ran] { ++ran; }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(ran.load(), kProducers * per_producer);
}

// ---- BoundedQueue: producer/consumer storms --------------------------------

TEST(StressBoundedQueue, ManyProducersManyConsumersLoseNothing) {
  // Tight capacity (4) maximizes blocking on both conditions: producers
  // park on not_full_, consumers on not_empty_, and every push/pop pair
  // crosses the mutex. Token sum proves exactly-once delivery.
  BoundedQueue<std::uint64_t> queue(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  const std::uint64_t per_producer = 2000 * kScale;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(queue.push(p * per_producer + i));
      }
    });
  }

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      // Mix blocking pop with opportunistic try_pop to cover both paths.
      for (;;) {
        std::optional<std::uint64_t> item = queue.try_pop();
        if (!item) item = queue.pop();
        if (!item) return;  // closed and drained
        sum.fetch_add(*item);
        count.fetch_add(1);
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  const std::uint64_t total = kProducers * per_producer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(StressBoundedQueue, CloseMidStormUnblocksEverybody) {
  // close() fires while producers are blocked on a full queue and consumers
  // are mid-drain; every thread must return (no lost wakeup), pushes after
  // close must report false, and items delivered never exceed items pushed.
  for (int round = 0; round < static_cast<int>(4 * kScale); ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<std::size_t> pushed{0};
    std::atomic<std::size_t> popped{0};
    std::vector<std::thread> threads;
    threads.reserve(5);
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10000; ++i) {
          if (!queue.push(i)) return;  // closed under us
          pushed.fetch_add(1);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&] {
        while (queue.pop()) popped.fetch_add(1);
      });
    }
    threads.emplace_back([&] { queue.close(); });
    for (auto& t : threads) t.join();
    EXPECT_LE(popped.load(), pushed.load() + 2);  // <= pushed + capacity slack
    EXPECT_FALSE(queue.push(-1));
  }
}

// ---- Parallel backup session over a synthetic dataset ----------------------

TEST(StressSession, ParallelFrontEndMatchesSerialUnderLoad) {
  // A multi-session parallel backup (two-phase file-granularity front end,
  // 8 workers, deliberately tiny batch budget so the batch loop and the
  // per-stream commit spans cycle many times) against the same dataset run
  // serially. Under TSan this is the main course: chunking workers racing
  // the shared pool, per-stream shards committing concurrently, the
  // key-store mutex, and the upload pipeline all live here.
  dataset::DatasetConfig config;
  config.seed = 20260807;
  config.session_bytes = (1ull << 20) * kScale;
  config.max_file_bytes = 256u << 10;

  dataset::DatasetGenerator gen_parallel(config);
  dataset::DatasetGenerator gen_serial(config);

  cloud::CloudTarget target_p, target_s;
  core::AaDedupeOptions par_opts;
  par_opts.parallel = true;
  par_opts.granularity = core::ParallelGranularity::kFile;
  par_opts.front_end_batch_bytes = 256u << 10;
  par_opts.worker_threads = 8;
  core::AaDedupeOptions ser_opts;
  ser_opts.parallel = false;

  core::AaDedupeScheme parallel_scheme(target_p, par_opts);
  core::AaDedupeScheme serial_scheme(target_s, ser_opts);

  dataset::Snapshot snap_p, snap_s;
  for (int session = 0; session < 3; ++session) {
    snap_p = session == 0 ? gen_parallel.initial() : gen_parallel.next(snap_p);
    snap_s = session == 0 ? gen_serial.initial() : gen_serial.next(snap_s);
    const auto report_p = parallel_scheme.backup(snap_p);
    const auto report_s = serial_scheme.backup(snap_s);
    // Identical dedup decisions, not just identical bytes: the paper's
    // equivalence claim (§IV) is about effectiveness, so compare the
    // metrics that define it.
    EXPECT_EQ(report_p.dataset_bytes, report_s.dataset_bytes);
    EXPECT_EQ(report_p.transferred_bytes, report_s.transferred_bytes);
    EXPECT_EQ(report_p.upload_requests, report_s.upload_requests);
  }

  EXPECT_EQ(parallel_scheme.aa_index().total_size(),
            serial_scheme.aa_index().total_size());
  for (std::size_t i = 0; i < snap_p.files.size();
       i += (i + 11 < snap_p.files.size() ? std::size_t{11} : std::size_t{1})) {
    ASSERT_EQ(parallel_scheme.restore_file(snap_p.files[i].path),
              serial_scheme.restore_file(snap_s.files[i].path))
        << snap_p.files[i].path;
  }
}

TEST(StressSession, ConcurrentIndependentSchemesDoNotInterfere) {
  // Two full backup stacks on two OS threads: everything is supposed to be
  // instance-confined, so TSan must stay silent and the results must match
  // a reference run byte-for-byte.
  dataset::DatasetConfig config;
  config.seed = 7;
  config.session_bytes = 1ull << 20;
  config.max_file_bytes = 128u << 10;

  auto run_backup = [&config]() -> std::size_t {
    dataset::DatasetGenerator gen(config);
    cloud::CloudTarget target;
    core::AaDedupeOptions opts;
    opts.parallel = true;
    opts.granularity = core::ParallelGranularity::kFile;
    opts.worker_threads = 4;
    core::AaDedupeScheme scheme(target, opts);
    scheme.backup(gen.initial());
    return scheme.aa_index().total_size();
  };

  std::size_t size_a = 0, size_b = 0;
  std::thread a([&] { size_a = run_backup(); });
  std::thread b([&] { size_b = run_backup(); });
  a.join();
  b.join();
  EXPECT_EQ(size_a, size_b);
  EXPECT_GT(size_a, 0u);
}

}  // namespace
}  // namespace aadedupe
